//! The property bundle produced by the analysis.

use std::collections::BTreeSet;
use std::fmt;

/// A local field of one UDF input: `(input index, field index)`.
pub type InField = (u8, usize);

/// Emit-cardinality bounds per UDF invocation (Definition 5 feeds on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitBounds {
    /// Minimum records emitted per invocation.
    pub min: u64,
    /// Maximum records emitted per invocation; `None` = unbounded (an
    /// `emit` lies on a control-flow cycle).
    pub max: Option<u64>,
}

impl EmitBounds {
    /// Exactly-one semantics: `|f(r)| = 1` on every path (KGP case 1 for
    /// record-at-a-time UDFs).
    pub fn exactly_one(&self) -> bool {
        self.min == 1 && self.max == Some(1)
    }

    /// At-most-one semantics: `|f(r)| ≤ 1` (filter shape; KGP case 2 needs
    /// this plus a control-read condition).
    pub fn at_most_one(&self) -> bool {
        self.max == Some(1) || self.max == Some(0)
    }
}

impl fmt::Display for EmitBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "[{}, {}]", self.min, m),
            None => write!(f, "[{}, ∞)", self.min),
        }
    }
}

/// Conservative, *local* (pre-binding) properties of one UDF, in terms of
/// local field indices. The dataflow layer maps these onto global-record
/// attributes through the redirection maps α.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalProps {
    /// Fields read and used (the read set of Definition 3, conservatively).
    pub reads: BTreeSet<InField>,
    /// Fields whose values may influence branch decisions (and thereby the
    /// emit decision) — the basis of the KGP filter condition.
    pub control_reads: BTreeSet<InField>,
    /// Inputs accessed with a **dynamic** field index: every field of the
    /// input must be assumed read (and control-read if the value reaches a
    /// branch).
    pub dynamic_read_inputs: BTreeSet<u8>,
    /// Inputs whose dynamically-read values reach a branch condition: every
    /// field of the input must be assumed a control read.
    pub dynamic_control_inputs: BTreeSet<u8>,
    /// Output fields `< Σ#I` possibly changed by some emitted record
    /// (explicit modifications, explicit projections, copies from the wrong
    /// position, or implicit projection).
    pub written_base: BTreeSet<usize>,
    /// Bitmask of inputs implicitly copied by **every** emit path (via
    /// copy/concat constructors). Attributes outside the UDF's local schema
    /// that flow through input `i` are preserved iff bit `i` is set.
    pub copied_inputs: u8,
    /// Some `setField` used a dynamic index: every output field must be
    /// assumed written.
    pub dynamic_write: bool,
    /// Output fields `≥ Σ#I` that are set: new global attributes
    /// (Definition 2, case 1).
    pub added: BTreeSet<usize>,
    /// Emit-cardinality bounds per invocation.
    pub emits: EmitBounds,
}

impl LocalProps {
    /// `true` iff input `i` is implicitly copied on every emit path.
    pub fn copies_input(&self, i: u8) -> bool {
        self.copied_inputs & (1 << i) != 0
    }

    /// `true` when the UDF provably changes no pass-through attribute
    /// (its write set is limited to `added` fields).
    pub fn preserves_all_base(&self) -> bool {
        self.written_base.is_empty() && !self.dynamic_write
    }
}

impl fmt::Display for LocalProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reads:          {:?}", self.reads)?;
        writeln!(f, "control reads:  {:?}", self.control_reads)?;
        if !self.dynamic_read_inputs.is_empty() {
            writeln!(f, "dynamic reads:  inputs {:?}", self.dynamic_read_inputs)?;
        }
        writeln!(f, "written (base): {:?}", self.written_base)?;
        writeln!(f, "copied inputs:  {:#04b}", self.copied_inputs)?;
        if self.dynamic_write {
            writeln!(f, "dynamic write:  yes")?;
        }
        writeln!(f, "added fields:   {:?}", self.added)?;
        write!(f, "emit bounds:    {}", self.emits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_bounds_predicates() {
        assert!(EmitBounds {
            min: 1,
            max: Some(1)
        }
        .exactly_one());
        assert!(!EmitBounds {
            min: 0,
            max: Some(1)
        }
        .exactly_one());
        assert!(EmitBounds {
            min: 0,
            max: Some(1)
        }
        .at_most_one());
        assert!(EmitBounds {
            min: 0,
            max: Some(0)
        }
        .at_most_one());
        assert!(!EmitBounds { min: 0, max: None }.at_most_one());
        assert!(!EmitBounds {
            min: 0,
            max: Some(2)
        }
        .at_most_one());
    }

    #[test]
    fn emit_bounds_display() {
        assert_eq!(
            format!(
                "{}",
                EmitBounds {
                    min: 1,
                    max: Some(3)
                }
            ),
            "[1, 3]"
        );
        assert_eq!(format!("{}", EmitBounds { min: 0, max: None }), "[0, ∞)");
    }

    #[test]
    fn copies_input_mask() {
        let p = LocalProps {
            reads: BTreeSet::new(),
            control_reads: BTreeSet::new(),
            dynamic_read_inputs: BTreeSet::new(),
            dynamic_control_inputs: BTreeSet::new(),
            written_base: BTreeSet::new(),
            copied_inputs: 0b01,
            dynamic_write: false,
            added: BTreeSet::new(),
            emits: EmitBounds {
                min: 1,
                max: Some(1),
            },
        };
        assert!(p.copies_input(0));
        assert!(!p.copies_input(1));
        assert!(p.preserves_all_base());
    }
}
