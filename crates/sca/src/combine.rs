//! Combinability analysis: proving a Reduce UDF **decomposable**.
//!
//! The classic optimization a black-box optimizer must forgo — and opening
//! the box unlocks — is the *combiner*: partial aggregation before the
//! repartitioning ship of a grouped aggregate, legal only when the reduce
//! UDF `f` satisfies `f(S) = f(f(S₁) ⊎ f(S₂))` for every split of the
//! group `S`. This module derives that property by static pattern proof
//! over the three-address code, the same way the rest of `strato-sca`
//! derives read/write sets: conservatively, rejecting anything it cannot
//! prove.
//!
//! ## The accepted shape
//!
//! A UDF is classified combinable iff its *entire* reachable body is an
//! **in-place algebraic fold**:
//!
//! 1. accumulator initializations (`$acc := const`),
//! 2. one or more canonical fold loops — `head: $r := next($it) else goto
//!    after; $t := getField($r, F); $acc := $acc ⊕ $t; goto head` — whose
//!    operator ⊕ is associative and commutative over the dynamic value
//!    domain ([`BinOp::is_assoc_comm`]),
//! 3. a tail that copies one group record and overwrites each folded field
//!    **at the position it was read from** (`or := copy(first);
//!    setField(or, F, $acc); emit(or)`),
//! 4. a final `return` — nothing else.
//!
//! Why this implies decomposability: the emitted record's fields are
//! either *folded* (field `F` holds `init ⊕ fold of every group member's
//! F`) or *passed through* from an arbitrary group record. Re-running `f`
//! over partial results re-folds the partial folds — associativity and
//! commutativity make `init ⊕ (p₁ ⊕ … ⊕ pₖ)` equal the undivided fold
//! (the constant init participates exactly once, in the final invocation,
//! because partials are produced by the *pure* record-value fold) — while
//! pass-through fields are only deterministic when every group member
//! agrees on them. The analysis therefore reports the pass-through set and
//! leaves the final legality test to the binding layer: a combiner is
//! legal only where every pass-through attribute is a grouping key (and
//! every attribute the operator's input can carry is a key or a fold —
//! see `Plan::combinable_reduce` in `strato-dataflow`).
//!
//! Emitting exactly one record per (non-empty) group is enforced by the
//! shape itself plus the emit-bound analysis (`max = 1` rules out emits on
//! cycles; the only emit-skipping path is the empty-group guard, and
//! groups are never empty).
//!
//! Like every analysis in this crate, the proof is *exact* only over the
//! exactly-associative value domain (integers wrap, `Min`/`Max` use the
//! total order, `Null` is absorbing); float folds re-associate with IEEE
//! rounding, the standard combiner caveat.

use crate::emits::emit_bounds;
use std::collections::{BTreeMap, BTreeSet};
use strato_ir::{BinOp, Cfg, Function, Inst, Reg, UdfKind, VReg};

/// The combiner-relevant structure of a decomposable reduce UDF, in local
/// field indices. Produced by [`combinable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombineSummary {
    /// Folded fields: local input field → the associative-commutative
    /// operator folded over it (the result lands in the same field).
    pub folds: BTreeMap<usize, BinOp>,
    /// Base fields *not* folded: copied verbatim from one group record.
    /// A combiner is only legal when every pass-through field is a
    /// grouping key (checked at binding, where keys are known).
    pub passthrough: BTreeSet<usize>,
}

/// One proven fold accumulator.
struct Fold {
    acc: VReg,
    op: BinOp,
    field: usize,
    /// Instruction index of the accumulator update (`$acc := $acc ⊕ $t`).
    update: usize,
}

/// Proves a Group UDF is an in-place algebraic fold (see module docs), or
/// returns `None` when any part of the body falls outside the accepted
/// shape. Conservative: `Some` is a proof, `None` is merely "unproven".
pub fn combinable(f: &Function) -> Option<CombineSummary> {
    if f.kind() != UdfKind::Group || f.added_fields() != 0 {
        return None;
    }
    let insts = f.insts();
    let cfg = Cfg::build(f);
    // No emit may sit on a control-flow cycle.
    if emit_bounds(f, &cfg).max != Some(1) {
        return None;
    }
    // Every reachable instruction must be claimed by one of the matched
    // constructs; unreachable code is ignored.
    let mut matched: Vec<bool> = (0..insts.len()).map(|i| !cfg.reachable(i)).collect();

    // ---- Tail: IterOpen, IterNext, CopyRecord, SetField*, Emit. ----
    let mut emit_sites = insts
        .iter()
        .enumerate()
        .filter(|&(i, inst)| cfg.reachable(i) && matches!(inst, Inst::Emit { .. }));
    let e = match (emit_sites.next(), emit_sites.next()) {
        (Some((e, _)), None) => e,
        _ => return None,
    };
    let Inst::Emit { rec: out_reg } = insts[e] else {
        unreachable!("filtered on Emit");
    };
    // Walk back over the straight-line SetFields to the copy constructor.
    let mut sets: Vec<(usize, VReg)> = Vec::new();
    let mut i = e;
    let copy_site = loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match &insts[i] {
            Inst::SetField { rec, field, src } if *rec == out_reg => sets.push((*field, *src)),
            Inst::CopyRecord { dst, .. } if *dst == out_reg => break i,
            _ => return None,
        }
    };
    let Inst::CopyRecord { src: first_reg, .. } = insts[copy_site] else {
        unreachable!("loop breaks on CopyRecord");
    };
    if copy_site < 2 {
        return None;
    }
    // The copied record must be fetched from input 0 right here, with the
    // empty-group guard jumping just past the emit.
    let Inst::IterNext {
        dst,
        iter,
        exhausted,
    } = insts[copy_site - 1]
    else {
        return None;
    };
    if dst != first_reg || exhausted.0 as usize != e + 1 {
        return None;
    }
    match insts[copy_site - 2] {
        Inst::IterOpen { dst, input: 0 } if dst == iter => {}
        _ => return None,
    }
    for m in &mut matched[copy_site - 2..=e] {
        *m = true;
    }

    // ---- Fold loops: head: next / getField / acc updates / jump head. ----
    let mut fold_list: Vec<Fold> = Vec::new();
    for h in 0..insts.len() {
        if matched[h] {
            continue;
        }
        let Inst::IterNext {
            dst: r,
            iter,
            exhausted,
        } = insts[h]
        else {
            continue;
        };
        if h == 0 {
            return None;
        }
        match insts[h - 1] {
            Inst::IterOpen { dst, input: 0 } if dst == iter => {}
            _ => return None,
        }
        // Loop body: only reads of the current record and accumulator
        // updates, closed by the back-jump. Any branch, call, count or
        // other effect in the body defeats the proof.
        let mut fields: BTreeMap<VReg, usize> = BTreeMap::new();
        let mut j = h + 1;
        let jump_site = loop {
            if j >= insts.len() {
                return None;
            }
            match &insts[j] {
                Inst::GetField { dst, rec, field } if *rec == r => {
                    if fields.insert(*dst, *field).is_some() {
                        return None;
                    }
                }
                Inst::Bin { dst, op, a, b } => {
                    if !op.is_assoc_comm() {
                        return None;
                    }
                    let operand = match (a == dst, b == dst) {
                        (true, false) => b,
                        (false, true) => a,
                        _ => return None,
                    };
                    let &field = fields.get(operand)?;
                    if fields.contains_key(dst) {
                        return None;
                    }
                    fold_list.push(Fold {
                        acc: *dst,
                        op: *op,
                        field,
                        update: j,
                    });
                }
                Inst::Jump { target } if target.0 as usize == h => break j,
                _ => return None,
            }
            j += 1;
        };
        if exhausted.0 as usize != jump_site + 1 {
            return None;
        }
        for m in &mut matched[h - 1..=jump_site] {
            *m = true;
        }
    }

    // ---- Accumulator discipline: each acc is defined exactly by one
    // constant init plus its single in-loop update (this also rejects any
    // register aliasing that would defeat the straight-line reasoning). ----
    for fold in &fold_list {
        let mut init: Option<usize> = None;
        for (i, inst) in insts.iter().enumerate() {
            if !cfg.reachable(i) || i == fold.update {
                continue;
            }
            if !inst.defs().contains(&Reg::Val(fold.acc)) {
                continue;
            }
            match inst {
                Inst::Const { .. } if init.is_none() && !matched[i] => init = Some(i),
                _ => return None,
            }
        }
        matched[init?] = true;
    }

    // ---- Output mapping: each SetField stores one fold's accumulator
    // back into the very field it was folded from; every fold is used. ----
    let base = f.base_output_width();
    let mut folds: BTreeMap<usize, BinOp> = BTreeMap::new();
    let mut used_accs: BTreeSet<VReg> = BTreeSet::new();
    for (field, src) in sets {
        if field >= base {
            return None;
        }
        let fold = fold_list.iter().find(|fo| fo.acc == src)?;
        if fold.field != field || folds.insert(field, fold.op).is_some() {
            return None;
        }
        used_accs.insert(src);
    }
    if used_accs.len() != fold_list.len() {
        return None;
    }

    // ---- Whole-body whitelist: whatever remains must be `return`. ----
    for (i, inst) in insts.iter().enumerate() {
        if !matched[i] && !matches!(inst, Inst::Return) {
            return None;
        }
    }

    let passthrough = (0..base).filter(|fl| !folds.contains_key(fl)).collect();
    Some(CombineSummary { folds, passthrough })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::interp::{Interp, Invocation, Layout};
    use strato_ir::FuncBuilder;
    use strato_record::{Record, Value};

    /// The canonical in-place aggregate: fold `op` over `field`, write the
    /// result back into `field`, pass the rest through.
    fn fold_inplace(w: usize, field: usize, op: BinOp, init: i64) -> Function {
        let mut b = FuncBuilder::new("fold", UdfKind::Group, vec![w]);
        let acc = b.konst(init);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(acc, op, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, field, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    /// Append-style sum (`sum_group` of the workloads): result goes to a
    /// NEW field, so re-running the UDF over partials would re-read the
    /// untouched input field — not self-decomposable.
    fn sum_appended(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![w]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, w, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn in_place_sum_is_combinable() {
        let cs = combinable(&fold_inplace(2, 1, BinOp::Add, 0)).expect("combinable");
        assert_eq!(cs.folds, BTreeMap::from([(1, BinOp::Add)]));
        assert_eq!(cs.passthrough, BTreeSet::from([0]));
    }

    #[test]
    fn all_assoc_comm_ops_accepted() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max] {
            assert!(combinable(&fold_inplace(2, 1, op, 7)).is_some(), "{op:?}");
        }
    }

    #[test]
    fn non_associative_fold_rejected() {
        for op in [BinOp::Sub, BinOp::Div] {
            assert!(combinable(&fold_inplace(2, 1, op, 0)).is_none(), "{op:?}");
        }
    }

    #[test]
    fn appended_aggregate_rejected() {
        assert!(combinable(&sum_appended(2, 1)).is_none());
    }

    #[test]
    fn multi_field_fold_in_one_loop() {
        // min(f1) and sum(f2) folded in a single pass.
        let mut b = FuncBuilder::new("mm", UdfKind::Group, vec![3]);
        let lo = b.konst(i64::MAX);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v1 = b.get(r, 1);
        b.bin_into(lo, BinOp::Min, lo, v1);
        let v2 = b.get(r, 2);
        b.bin_into(sum, BinOp::Add, sum, v2);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, 1, lo);
        b.set(or, 2, sum);
        b.emit(or);
        b.place(nil);
        b.ret();
        let cs = combinable(&b.finish().unwrap()).expect("combinable");
        assert_eq!(cs.folds, BTreeMap::from([(1, BinOp::Min), (2, BinOp::Add)]));
        assert_eq!(cs.passthrough, BTreeSet::from([0]));
    }

    #[test]
    fn fold_written_to_wrong_field_rejected() {
        // Reads field 1 but stores the sum into field 0: re-application
        // would fold the wrong column.
        let mut b = FuncBuilder::new("x", UdfKind::Group, vec![2]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, 0, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        assert!(combinable(&b.finish().unwrap()).is_none());
    }

    #[test]
    fn conditional_fold_rejected() {
        // A guard inside the loop body (sum of positives) falls outside
        // the proven shape.
        let mut b = FuncBuilder::new("c", UdfKind::Group, vec![2]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        let z = b.konst(0i64);
        let neg = b.bin(BinOp::Lt, v, z);
        b.branch(neg, head);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, 1, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        assert!(combinable(&b.finish().unwrap()).is_none());
    }

    #[test]
    fn group_count_and_emit_all_shapes_rejected() {
        // count(*): group size is not recoverable from partials.
        let mut b = FuncBuilder::new("n", UdfKind::Group, vec![2]);
        let n = b.group_count(0);
        let it = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it, nil);
        let or = b.copy(first);
        b.set(or, 1, n);
        b.emit(or);
        b.place(nil);
        b.ret();
        assert!(combinable(&b.finish().unwrap()).is_none());

        // emit-per-record (group filter flavour): more than one emit per
        // invocation.
        let mut b = FuncBuilder::new("all", UdfKind::Group, vec![1]);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let or = b.copy(r);
        b.emit(or);
        b.jump(head);
        b.place(done);
        b.ret();
        assert!(combinable(&b.finish().unwrap()).is_none());
    }

    #[test]
    fn pure_first_of_group_has_no_folds() {
        // Distinct-style reduce: copy one record, no folds. Combinable
        // structurally; legality then demands every field be a key.
        let mut b = FuncBuilder::new("first", UdfKind::Group, vec![2]);
        let it = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it, nil);
        let or = b.copy(first);
        b.emit(or);
        b.place(nil);
        b.ret();
        let cs = combinable(&b.finish().unwrap()).expect("structurally combinable");
        assert!(cs.folds.is_empty());
        assert_eq!(cs.passthrough, BTreeSet::from([0, 1]));
    }

    #[test]
    fn decomposability_holds_semantically() {
        // f(S) == f(f(S1) ⊎ f(S2)) on concrete groups, for each op — the
        // property the static proof claims.
        for (op, init) in [
            (BinOp::Add, 0i64),
            (BinOp::Mul, 1),
            (BinOp::Min, i64::MAX),
            (BinOp::Max, i64::MIN),
            // Any constant init is sound: the pure fold of partials
            // applies it exactly once, in the final invocation.
            (BinOp::Add, 41),
            (BinOp::Min, 5),
        ] {
            let f = fold_inplace(2, 1, op, init);
            assert!(combinable(&f).is_some());
            let layout = Layout::local(&f);
            let interp = Interp::default();
            let rec = |k: i64, v: i64| Record::from_values([Value::Int(k), Value::Int(v)]);
            let group = vec![rec(3, 9), rec(3, -4), rec(3, 7), rec(3, 2)];
            let run = |g: &[Record]| -> Vec<Record> {
                let mut out = Vec::new();
                interp
                    .run(&f, Invocation::Group(g), &layout, &mut out)
                    .unwrap();
                out
            };
            let whole = run(&group);
            // The combiner folds record values directly — *without* the
            // UDF's init, which is why any constant init is sound: it
            // participates exactly once, in the final invocation. Model
            // that pure fold and feed the partials back through the UDF.
            let pure_fold = |g: &[Record]| -> Record {
                let mut p = g[0].clone();
                for r in &g[1..] {
                    let v = strato_ir::interp::eval_bin(op, p.field(1), r.field(1));
                    p.set_field(1, v);
                }
                p
            };
            let partials = vec![pure_fold(&group[..1]), pure_fold(&group[1..])];
            let recombined = run(&partials);
            assert_eq!(whole, recombined, "{op:?} init {init}");
        }
    }
}
