//! Value-taint analysis: which input fields can influence branch decisions.
//!
//! The KGP condition (Definition 5, case 2) lets a filter-shaped UDF cross a
//! key-at-a-time operator when the emit decision depends only on attributes
//! of the key. "Depends on" is approximated conservatively:
//!
//! * **data taint** — each value register carries the set of input fields
//!   its value was computed from, propagated to a fixpoint through moves,
//!   arithmetic, intrinsic calls and reads-back from constructed records;
//! * **ambient control taint** — a branch taints every instruction it can
//!   reach, so values assigned under a condition inherit that condition's
//!   taint (implicit flows).
//!
//! The union of taints of all branch conditions is the UDF's *control read
//! set*. Over-approximation merely forfeits reorderings; it never produces
//! an unsound plan.

use crate::props::InField;
use std::collections::BTreeSet;
use strato_ir::cfg::Cfg;
use strato_ir::dataflow::ReachingDefs;
use strato_ir::func::{Function, RecOrigin};
use strato_ir::{Inst, Reg};

/// Result of the taint analysis.
#[derive(Debug, Clone, Default)]
pub struct Taint {
    /// Fields that may influence some branch condition.
    pub control_reads: BTreeSet<InField>,
    /// Inputs read through a dynamic index whose value reaches a branch.
    pub dynamic_control_inputs: BTreeSet<u8>,
    /// Per-definition-site data taints (exposed for the write-set analysis:
    /// the taint of a `setField` source reveals copy vs. modification).
    pub def_taints: Vec<BTreeSet<InField>>,
    /// Definition sites whose value depends on a dynamically indexed read.
    pub def_dynamic: Vec<BTreeSet<u8>>,
}

/// Runs the taint analysis.
pub fn analyze_taint(f: &Function, cfg: &Cfg, rd: &ReachingDefs) -> Taint {
    let insts = f.insts();
    let n = insts.len();
    let mut def_taints: Vec<BTreeSet<InField>> = vec![BTreeSet::new(); n];
    let mut def_dynamic: Vec<BTreeSet<u8>> = vec![BTreeSet::new(); n];

    // Taint of all input reads in the whole function — the conservative
    // stand-in for reads from constructed records (reading back own writes).
    let mut all_reads: BTreeSet<InField> = BTreeSet::new();
    let mut all_dyn: BTreeSet<u8> = BTreeSet::new();
    for (i, inst) in insts.iter().enumerate() {
        if !cfg.reachable(i) {
            continue;
        }
        match inst {
            Inst::GetField { rec, field, .. } => {
                if let Ok(Some(RecOrigin::Input(inp))) = f.record_origin(rd, i, *rec) {
                    all_reads.insert((inp, *field));
                }
            }
            Inst::GetFieldDyn { rec, .. } => {
                if let Ok(Some(RecOrigin::Input(inp))) = f.record_origin(rd, i, *rec) {
                    all_dyn.insert(inp);
                }
            }
            _ => {}
        }
    }

    // Fixpoint over data-flow edges.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !cfg.reachable(i) {
                continue;
            }
            let (mut t, mut dy): (BTreeSet<InField>, BTreeSet<u8>) =
                (BTreeSet::new(), BTreeSet::new());
            match &insts[i] {
                Inst::GetField { rec, field, .. } => {
                    match f.record_origin(rd, i, *rec) {
                        Ok(Some(RecOrigin::Input(inp))) => {
                            t.insert((inp, *field));
                        }
                        Ok(Some(RecOrigin::Constructed)) => {
                            // Reading back own writes: conservative union of
                            // everything the function reads anywhere.
                            t.extend(all_reads.iter().copied());
                            dy.extend(all_dyn.iter().copied());
                        }
                        _ => {}
                    }
                }
                Inst::GetFieldDyn { rec, idx, .. } => {
                    match f.record_origin(rd, i, *rec) {
                        Ok(Some(RecOrigin::Input(inp))) => {
                            dy.insert(inp);
                        }
                        Ok(Some(RecOrigin::Constructed)) => {
                            t.extend(all_reads.iter().copied());
                            dy.extend(all_dyn.iter().copied());
                        }
                        _ => {}
                    }
                    // The index value's taint flows into the result too.
                    for d in rd.use_def(i, Reg::Val(*idx)) {
                        t.extend(def_taints[d].iter().copied());
                        dy.extend(def_dynamic[d].iter().copied());
                    }
                }
                Inst::Move { src, .. } => {
                    for d in rd.use_def(i, Reg::Val(*src)) {
                        t.extend(def_taints[d].iter().copied());
                        dy.extend(def_dynamic[d].iter().copied());
                    }
                }
                Inst::Bin { a, b, .. } => {
                    for r in [a, b] {
                        for d in rd.use_def(i, Reg::Val(*r)) {
                            t.extend(def_taints[d].iter().copied());
                            dy.extend(def_dynamic[d].iter().copied());
                        }
                    }
                }
                Inst::Un { a, .. } => {
                    for d in rd.use_def(i, Reg::Val(*a)) {
                        t.extend(def_taints[d].iter().copied());
                        dy.extend(def_dynamic[d].iter().copied());
                    }
                }
                Inst::Call { args, .. } => {
                    for r in args {
                        for d in rd.use_def(i, Reg::Val(*r)) {
                            t.extend(def_taints[d].iter().copied());
                            dy.extend(def_dynamic[d].iter().copied());
                        }
                    }
                }
                // GroupCount: cardinality, not attribute values — untainted.
                _ => continue,
            }
            if !t.is_subset(&def_taints[i]) || !dy.is_subset(&def_dynamic[i]) {
                def_taints[i].extend(t);
                def_dynamic[i].extend(dy);
                changed = true;
            }
        }
    }

    // Control reads: union of branch-condition taints, closed under ambient
    // control influence (a branch taints all branches it can reach).
    let mut control: BTreeSet<InField> = BTreeSet::new();
    let mut dyn_control: BTreeSet<u8> = BTreeSet::new();
    // Reachability between branches: branch b's taint applies to any branch
    // b' reachable from b (implicit flow through assigned-under-condition
    // values). Computed transitively by one pass over reachable pairs: we
    // simply union all branch taints — any branch after another in some path
    // is reachable from it; the only loss is ordering precision, which is
    // acceptable for a conservative analysis when multiple branches exist.
    for (i, inst) in insts.iter().enumerate() {
        if !cfg.reachable(i) {
            continue;
        }
        if let Inst::Branch { cond, .. } = inst {
            for d in rd.use_def(i, Reg::Val(*cond)) {
                control.extend(def_taints[d].iter().copied());
                dyn_control.extend(def_dynamic[d].iter().copied());
            }
        }
    }

    Taint {
        control_reads: control,
        dynamic_control_inputs: dyn_control,
        def_taints,
        def_dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::{BinOp, FuncBuilder, UdfKind};

    fn taint_of(f: &Function) -> Taint {
        let cfg = Cfg::build(f);
        let rd = ReachingDefs::compute(f, &cfg);
        analyze_taint(f, &cfg, &rd)
    }

    #[test]
    fn branch_on_field_is_control_read() {
        let mut b = FuncBuilder::new("f", UdfKind::Map, vec![3]);
        let a = b.get_input(0, 1);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, a, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert_eq!(t.control_reads, BTreeSet::from([(0, 1)]));
    }

    #[test]
    fn unbranched_reads_are_not_control_reads() {
        let mut b = FuncBuilder::new("f", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let or = b.copy_input(0);
        b.set(or, 1, a);
        b.emit(or);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert!(t.control_reads.is_empty());
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let mut b = FuncBuilder::new("f", UdfKind::Map, vec![3]);
        let x = b.get_input(0, 0);
        let y = b.get_input(0, 2);
        let s = b.bin(BinOp::Add, x, y);
        let one = b.konst(1i64);
        let c = b.bin(BinOp::Gt, s, one);
        let end = b.new_label();
        b.branch(c, end);
        b.place(end);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert_eq!(t.control_reads, BTreeSet::from([(0, 0), (0, 2)]));
    }

    #[test]
    fn dynamic_read_reaching_branch_flags_input() {
        let mut b = FuncBuilder::new("f", UdfKind::Map, vec![3]);
        let i = b.konst(2i64);
        let rec = b.input(0);
        let v = b.get_dyn(rec, i);
        let end = b.new_label();
        b.branch(v, end);
        b.place(end);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert!(t.dynamic_control_inputs.contains(&0));
    }

    #[test]
    fn move_carries_taint() {
        let mut b = FuncBuilder::new("f", UdfKind::Map, vec![2]);
        let x = b.get_input(0, 1);
        let y = b.konst(0i64);
        b.mov(y, x);
        let end = b.new_label();
        b.branch(y, end);
        b.place(end);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert_eq!(t.control_reads, BTreeSet::from([(0, 1)]));
    }

    #[test]
    fn pair_inputs_tracked_separately() {
        let mut b = FuncBuilder::new("f", UdfKind::Pair, vec![2, 2]);
        let l = b.get_input(0, 0);
        let r = b.get_input(1, 1);
        let c = b.bin(BinOp::Eq, l, r);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.concat_inputs();
        b.emit(or);
        b.place(end);
        b.ret();
        let t = taint_of(&b.finish().unwrap());
        assert_eq!(t.control_reads, BTreeSet::from([(0, 0), (1, 1)]));
    }
}
