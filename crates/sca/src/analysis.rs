//! The main static-code-analysis pass (Section 5 of the paper).

use crate::emits::emit_bounds;
use crate::props::{InField, LocalProps};
use crate::taint::analyze_taint;
use std::collections::BTreeSet;
use strato_ir::cfg::Cfg;
use strato_ir::dataflow::ReachingDefs;
use strato_ir::func::{Function, RecOrigin};
use strato_ir::{Inst, Reg};

/// Per-emit-site classification of the emitted record's construction.
#[derive(Debug, Clone, Default)]
struct EmitClass {
    /// Inputs implicitly copied into the record (copy/concat constructors).
    mask: u8,
    /// Base output fields explicitly modified or projected on the chain.
    written: BTreeSet<usize>,
    /// Base output fields explicitly copied from their identity position.
    copied: BTreeSet<usize>,
    /// A dynamic `setField` appears on the chain.
    dyn_write: bool,
    /// Saw a `NewRecord` constructor (implicit projection).
    saw_projection: bool,
}

/// Runs the full analysis over one UDF.
///
/// The result is conservative: derived read/write sets are supersets of the
/// semantic sets of Definitions 2 and 3, emit bounds enclose every real emit
/// count, and control reads cover every field that can influence the emit
/// decision. See [`crate::probe`] for the semantic probing used to test
/// this guarantee.
pub fn analyze(f: &Function) -> LocalProps {
    let cfg = Cfg::build(f);
    let rd = ReachingDefs::compute(f, &cfg);
    let taint = analyze_taint(f, &cfg, &rd);
    let insts = f.insts();
    let base = f.base_output_width();

    // ---- Read set: getField statements whose destination is used. ----
    let mut reads: BTreeSet<InField> = BTreeSet::new();
    let mut dynamic_read_inputs: BTreeSet<u8> = BTreeSet::new();
    for (i, inst) in insts.iter().enumerate() {
        if !cfg.reachable(i) {
            continue;
        }
        match inst {
            Inst::GetField { rec, field, .. } => {
                if let Ok(Some(RecOrigin::Input(inp))) = f.record_origin(&rd, i, *rec) {
                    if !rd.def_use(i).is_empty() {
                        reads.insert((inp, *field));
                    }
                }
            }
            Inst::GetFieldDyn { rec, .. } => {
                if let Ok(Some(RecOrigin::Input(inp))) = f.record_origin(&rd, i, *rec) {
                    if !rd.def_use(i).is_empty() {
                        dynamic_read_inputs.insert(inp);
                    }
                }
            }
            _ => {}
        }
    }

    // ---- Write set: classify every emit chain. ----
    let mut classes: Vec<EmitClass> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if !cfg.reachable(i) {
            continue;
        }
        if let Inst::Emit { rec } = inst {
            classes.push(classify_emit(f, &rd, i, *rec, base));
        }
    }
    let mut written_base: BTreeSet<usize> = BTreeSet::new();
    // No emits ⇒ nothing is ever changed; constructors weaken from "copies
    // everything" downward.
    let mut copied_inputs: u8 = 0b11;
    let mut dynamic_write = false;
    for c in &classes {
        dynamic_write |= c.dyn_write;
        copied_inputs &= c.mask;
        written_base.extend(c.written.iter().copied());
        // Fields of inputs not implicitly copied are projected (written)
        // unless explicitly copied on this chain.
        let mut offset = 0usize;
        for (inp, &w) in f.input_widths().iter().enumerate() {
            let copied_implicitly = c.mask & (1 << inp) != 0;
            if !copied_implicitly {
                for n in offset..offset + w {
                    if !c.copied.contains(&n) {
                        written_base.insert(n);
                    }
                }
            }
            offset += w;
        }
        let _ = c.saw_projection;
    }

    // ---- Added fields: the declared extension of the output schema. ----
    let added: BTreeSet<usize> = (base..f.output_width()).collect();

    // ---- Control reads (taint) and emit bounds. ----
    let mut control_reads = taint.control_reads;
    // Control reads are reads.
    reads.extend(control_reads.iter().copied());
    for &inp in &taint.dynamic_control_inputs {
        dynamic_read_inputs.insert(inp);
    }
    // A dynamic read that feeds control makes every field of that input a
    // potential control read; expand here so downstream code need not track
    // the flag separately for static fields.
    for &inp in &taint.dynamic_control_inputs {
        for field in 0..f.input_widths()[inp as usize] {
            control_reads.insert((inp, field));
        }
    }

    LocalProps {
        reads,
        control_reads,
        dynamic_read_inputs,
        dynamic_control_inputs: taint.dynamic_control_inputs,
        written_base,
        copied_inputs,
        dynamic_write,
        added,
        emits: emit_bounds(f, &cfg),
    }
}

/// Chases the definition chain of an emitted record register, collecting
/// constructors and `setField` statements (the paper's "track the origin of
/// `$or`" step).
fn classify_emit(
    f: &Function,
    rd: &ReachingDefs,
    emit_site: usize,
    reg: strato_ir::RReg,
    base: usize,
) -> EmitClass {
    let insts = f.insts();
    let mut class = EmitClass {
        // Start from "copies everything"; constructors weaken this.
        mask: 0b11,
        ..EmitClass::default()
    };
    let mut saw_constructor = false;
    let mut stack: Vec<usize> = rd.use_def(emit_site, Reg::Rec(reg));
    let mut seen = vec![false; insts.len()];
    while let Some(d) = stack.pop() {
        if std::mem::replace(&mut seen[d], true) {
            continue;
        }
        match &insts[d] {
            Inst::NewRecord { .. } => {
                class.mask = 0;
                class.saw_projection = true;
                saw_constructor = true;
            }
            Inst::CopyRecord { dst: _, src } => {
                match f.record_origin(rd, d, *src) {
                    Ok(Some(RecOrigin::Input(inp))) => {
                        class.mask &= 1 << inp;
                        saw_constructor = true;
                    }
                    Ok(Some(RecOrigin::Constructed)) => {
                        // Copy of a constructed record: inherit its chain.
                        stack.extend(rd.use_def(d, Reg::Rec(*src)));
                    }
                    _ => {
                        class.mask = 0;
                        saw_constructor = true;
                    }
                }
            }
            Inst::ConcatRecords { a, b, .. } => {
                let mut m = 0u8;
                for r in [a, b] {
                    match f.record_origin(rd, d, *r) {
                        Ok(Some(RecOrigin::Input(inp))) => m |= 1 << inp,
                        Ok(Some(RecOrigin::Constructed)) => {
                            stack.extend(rd.use_def(d, Reg::Rec(*r)));
                        }
                        _ => {}
                    }
                }
                class.mask &= m;
                saw_constructor = true;
            }
            Inst::SetField { rec, field, src } => {
                if *field < base {
                    if is_identity_copy(f, rd, d, *src, *field) {
                        class.copied.insert(*field);
                    } else {
                        class.written.insert(*field);
                    }
                }
                stack.extend(rd.use_def(d, Reg::Rec(*rec)));
            }
            Inst::SetNull { rec, field } => {
                if *field < base {
                    // Explicit projection: the attribute's value changes.
                    class.written.insert(*field);
                }
                stack.extend(rd.use_def(d, Reg::Rec(*rec)));
            }
            Inst::SetFieldDyn { rec, .. } => {
                class.dyn_write = true;
                stack.extend(rd.use_def(d, Reg::Rec(*rec)));
            }
            // Emitting input records is rejected by the verifier; any other
            // def is a no-op for classification.
            _ => {}
        }
    }
    if !saw_constructor {
        // Should not happen for verified functions; be safe.
        class.mask = 0;
    }
    // Fields both copied and written on different paths are written.
    class.copied = class.copied.difference(&class.written).copied().collect();
    class
}

/// `setField(or, n, $t)` is an **explicit copy** iff every reaching
/// definition of `$t` is `getField(ir_i, m)` where `m` sits at output
/// position `n` (identity position through the concatenated input schemas).
fn is_identity_copy(
    f: &Function,
    rd: &ReachingDefs,
    site: usize,
    src: strato_ir::VReg,
    out_field: usize,
) -> bool {
    let defs = rd.use_def(site, Reg::Val(src));
    if defs.is_empty() {
        return false;
    }
    defs.iter().all(|&d| match &f.insts()[d] {
        Inst::GetField { rec, field, .. } => match f.record_origin(rd, d, *rec) {
            Ok(Some(RecOrigin::Input(inp))) => {
                let offset: usize = f.input_widths()[..inp as usize].iter().sum();
                offset + field == out_field
            }
            _ => false,
        },
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::{BinOp, FuncBuilder, UdfKind, UnOp};

    /// f1 of Section 3: replace field 1 with |field 1|.
    fn paper_f1() -> Function {
        let mut b = FuncBuilder::new("f1", UdfKind::Map, vec![2]);
        let bv = b.get_input(0, 1);
        let or = b.copy_input(0);
        let zero = b.konst(0i64);
        let nonneg = b.bin(BinOp::Ge, bv, zero);
        let done = b.new_label();
        b.branch(nonneg, done);
        let abs = b.un(UnOp::Abs, bv);
        b.set(or, 1, abs);
        b.place(done);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    /// f2 of Section 3: filter on field 0 ≥ 0.
    fn paper_f2() -> Function {
        let mut b = FuncBuilder::new("f2", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let zero = b.konst(0i64);
        let neg = b.bin(BinOp::Lt, a, zero);
        let end = b.new_label();
        b.branch(neg, end);
        let out = b.copy_input(0);
        b.emit(out);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    /// f3 of Section 3: field 0 := field 0 + field 1.
    fn paper_f3() -> Function {
        let mut b = FuncBuilder::new("f3", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let bb = b.get_input(0, 1);
        let sum = b.bin(BinOp::Add, a, bb);
        let or = b.copy_input(0);
        b.set(or, 0, sum);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn section3_f1_properties() {
        // R_f1 = {B}, W_f1 = {B} (field 1).
        let p = analyze(&paper_f1());
        assert_eq!(p.reads, BTreeSet::from([(0, 1)]));
        assert_eq!(p.written_base, BTreeSet::from([1]));
        assert_eq!(p.control_reads, BTreeSet::from([(0, 1)]));
        assert!(p.copies_input(0));
        assert!(p.emits.exactly_one());
    }

    #[test]
    fn section3_f2_properties() {
        // R_f2 = {A}, W_f2 = ∅.
        let p = analyze(&paper_f2());
        assert_eq!(p.reads, BTreeSet::from([(0, 0)]));
        assert!(p.written_base.is_empty());
        assert_eq!(p.control_reads, BTreeSet::from([(0, 0)]));
        assert!(p.emits.at_most_one());
        assert!(!p.emits.exactly_one());
    }

    #[test]
    fn section3_f3_properties() {
        // R_f3 = {A, B}, W_f3 = {A}.
        let p = analyze(&paper_f3());
        assert_eq!(p.reads, BTreeSet::from([(0, 0), (0, 1)]));
        assert_eq!(p.written_base, BTreeSet::from([0]));
        assert!(p.control_reads.is_empty());
        assert!(p.emits.exactly_one());
    }

    #[test]
    fn unused_get_field_is_not_a_read() {
        let mut b = FuncBuilder::new("u", UdfKind::Map, vec![2]);
        let _dead = b.get_input(0, 1); // never used
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert!(p.reads.is_empty());
    }

    #[test]
    fn identity_copy_via_set_field_is_preserved() {
        // new OutputRecord(); or[0] := getField(ir, 0) → field 0 copied,
        // field 1 projected (written).
        let mut b = FuncBuilder::new("c", UdfKind::Map, vec![2]);
        let v = b.get_input(0, 0);
        let or = b.new_rec();
        b.set(or, 0, v);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.written_base, BTreeSet::from([1]));
        assert_eq!(p.copied_inputs, 0);
        assert_eq!(p.reads, BTreeSet::from([(0, 0)]));
    }

    #[test]
    fn non_identity_copy_counts_as_modification() {
        // or[1] := getField(ir, 0): moves a value — field 1 written.
        let mut b = FuncBuilder::new("m", UdfKind::Map, vec![2]);
        let v = b.get_input(0, 0);
        let or = b.copy_input(0);
        b.set(or, 1, v);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.written_base, BTreeSet::from([1]));
    }

    #[test]
    fn explicit_projection_is_a_write() {
        let mut b = FuncBuilder::new("p", UdfKind::Map, vec![3]);
        let or = b.copy_input(0);
        b.set_null(or, 2);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.written_base, BTreeSet::from([2]));
        assert!(p.copies_input(0));
    }

    #[test]
    fn added_field_detected() {
        let mut b = FuncBuilder::new("a", UdfKind::Map, vec![2]);
        let or = b.copy_input(0);
        let v = b.konst(1i64);
        b.set(or, 2, v);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.added, BTreeSet::from([2]));
        assert!(p.written_base.is_empty());
    }

    #[test]
    fn both_constructors_mean_projection_conservatively() {
        // if c { or := copy(ir) } else { or := new() }; emit(or)
        // The paper: "If both constructors are used in different code paths,
        // implicit projection is the safe choice."
        let mut b = FuncBuilder::new("b", UdfKind::Map, vec![2]);
        let c = b.get_input(0, 0);
        let els = b.new_label();
        let end = b.new_label();
        let or0 = b.copy_input(0); // pre-assign for definite assignment
        b.branch_not(c, els);
        let or1 = b.copy(or0);
        b.emit(or1);
        b.jump(end);
        b.place(els);
        let or2 = b.new_rec();
        b.emit(or2);
        b.place(end);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        // One emit is projection ⇒ all base fields written overall.
        assert_eq!(p.written_base, BTreeSet::from([0, 1]));
        assert_eq!(p.copied_inputs, 0);
    }

    #[test]
    fn dynamic_read_flags_input() {
        let mut b = FuncBuilder::new("d", UdfKind::Map, vec![3]);
        let i = b.get_input(0, 0);
        let rec = b.input(0);
        let v = b.get_dyn(rec, i);
        let or = b.copy_input(0);
        b.set(or, 1, v);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert!(p.dynamic_read_inputs.contains(&0));
        assert_eq!(p.written_base, BTreeSet::from([1]));
    }

    #[test]
    fn dynamic_write_flags_everything() {
        let mut b = FuncBuilder::new("dw", UdfKind::Map, vec![2]);
        let i = b.get_input(0, 0);
        let v = b.konst(9i64);
        let or = b.copy_input(0);
        b.set_dyn(or, i, v);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert!(p.dynamic_write);
    }

    #[test]
    fn pair_concat_copies_both_inputs() {
        let mut b = FuncBuilder::new("j", UdfKind::Pair, vec![2, 3]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.copied_inputs, 0b11);
        assert!(p.written_base.is_empty());
    }

    #[test]
    fn pair_copy_of_one_input_projects_the_other() {
        let mut b = FuncBuilder::new("half", UdfKind::Pair, vec![2, 3]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert_eq!(p.copied_inputs, 0b01);
        // Input 1's fields (output positions 2..5) are dropped ⇒ written.
        assert_eq!(p.written_base, BTreeSet::from([2, 3, 4]));
    }

    #[test]
    fn kat_group_reads_resolved_through_iterators() {
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![2]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, 2, sum);
        b.emit(or);
        b.place(nil);
        b.ret();
        let p = analyze(&b.finish().unwrap());
        assert!(p.reads.contains(&(0, 1)));
        assert_eq!(p.added, BTreeSet::from([2]));
        assert!(p.written_base.is_empty());
        assert!(p.copies_input(0));
    }

    #[test]
    fn conditional_set_field_is_still_a_write() {
        // f1-style conditional modification must land in the write set even
        // though some path leaves the field untouched.
        let p = analyze(&paper_f1());
        assert!(p.written_base.contains(&1));
    }
}
