//! Semantic probing of black-box UDFs.
//!
//! Definitions 2 and 3 of the paper define read and write sets
//! *semantically* (over all possible inputs). The static analysis must
//! over-approximate them. This module estimates the semantic sets by
//! black-box probing — run the UDF on sampled records, flip one field at a
//! time, observe output differences — producing **under**-approximations of
//! the true sets. The conservatism law every UDF must satisfy is then
//! machine-checkable:
//!
//! ```text
//! probe_read_set(f) ⊆ sca::analyze(f).reads
//! probe_write_set(f) ⊆ sca::analyze(f).written_base ∪ added
//! ```
//!
//! The property-test suites run this check over every workload UDF and over
//! randomly generated UDFs.

use crate::props::InField;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;
use strato_ir::func::Function;
use strato_ir::interp::{Interp, Invocation, Layout};
use strato_ir::UdfKind;
use strato_record::{Record, Value};

/// Sampling configuration for probing.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Number of base records sampled.
    pub samples: usize,
    /// Values drawn uniformly when synthesizing records and when flipping a
    /// field. Should cover the UDF's expected domain.
    pub pool: Vec<Value>,
    /// RNG seed (probing is deterministic given the seed).
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            samples: 64,
            pool: vec![
                Value::Int(-2),
                Value::Int(-1),
                Value::Int(0),
                Value::Int(1),
                Value::Int(2),
                Value::Int(7),
                Value::Int(1000),
            ],
            seed: 0x5eed,
        }
    }
}

/// Builds an input record for input `i` in the *local layout* of `f`: the
/// input's fields sit at their global positions (input 1 follows input 0),
/// everything else is null.
fn random_input_record(
    rng: &mut StdRng,
    f: &Function,
    input: usize,
    global_width: usize,
    pool: &[Value],
) -> Record {
    let offset: usize = f.input_widths()[..input].iter().sum();
    let w = f.input_widths()[input];
    let mut r = Record::nulls(global_width);
    for n in 0..w {
        r.set_field(offset + n, pool.choose(rng).cloned().unwrap_or(Value::Null));
    }
    r
}

fn run(f: &Function, layout: &Layout, inv: Invocation<'_>) -> Vec<Record> {
    let mut out = Vec::new();
    // Probing ignores runaway UDFs (step-limited); an error yields no output,
    // which only makes the probe *under*-approximate further — still sound
    // for the conservatism check.
    let _ = Interp::with_max_steps(200_000).run(f, inv, layout, &mut out);
    out
}

/// Estimates the semantic **read set** of a Map or Pair UDF by Definition 3:
/// field `(i, n)` is read if changing only that field changes the output
/// cardinality or any output field other than `n`'s identity position.
pub fn probe_read_set(f: &Function, cfg: &ProbeConfig) -> BTreeSet<InField> {
    let layout = Layout::local(f);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut found = BTreeSet::new();
    let widths: Vec<usize> = f.input_widths().to_vec();
    for _ in 0..cfg.samples {
        let recs: Vec<Record> = (0..widths.len())
            .map(|i| random_input_record(&mut rng, f, i, layout.width, &cfg.pool))
            .collect();
        let base_out = invoke(f, &layout, &recs);
        for (i, &w) in widths.iter().enumerate() {
            let offset: usize = widths[..i].iter().sum();
            for n in 0..w {
                if found.contains(&(i as u8, n)) {
                    continue;
                }
                let global_pos = offset + n;
                let mut alt = recs.clone();
                let old = alt[i].field(global_pos).clone();
                let new = cfg
                    .pool
                    .iter()
                    .find(|v| **v != old)
                    .cloned()
                    .unwrap_or(Value::Null);
                alt[i].set_field(global_pos, new);
                let alt_out = invoke(f, &layout, &alt);
                if differs_besides(&base_out, &alt_out, global_pos) {
                    found.insert((i as u8, n));
                }
            }
        }
    }
    found
}

/// Estimates the semantic **write set** of a Map or Pair UDF by
/// Definition 2 (case 2): output position `n` is written if some emitted
/// record's value at `n` differs from the input's.
pub fn probe_write_set(f: &Function, cfg: &ProbeConfig) -> BTreeSet<usize> {
    let layout = Layout::local(f);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
    let mut found = BTreeSet::new();
    let widths: Vec<usize> = f.input_widths().to_vec();
    let base_w = f.base_output_width();
    let _ = &widths;
    for _ in 0..cfg.samples {
        let recs: Vec<Record> = (0..widths.len())
            .map(|i| random_input_record(&mut rng, f, i, layout.width, &cfg.pool))
            .collect();
        // The merged input view in output coordinates.
        let mut merged = recs[0].clone();
        for r in &recs[1..] {
            merged.merge_absent(r);
        }
        for o in invoke(f, &layout, &recs) {
            for n in 0..base_w {
                if o.field(n) != merged.field(n) {
                    found.insert(n);
                }
            }
        }
    }
    found
}

/// Estimates the semantic emit-count range observed over samples.
pub fn probe_emit_counts(f: &Function, cfg: &ProbeConfig) -> (u64, u64) {
    let layout = Layout::local(f);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xabcdef);
    let widths: Vec<usize> = f.input_widths().to_vec();
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for _ in 0..cfg.samples {
        let recs: Vec<Record> = (0..widths.len())
            .map(|i| random_input_record(&mut rng, f, i, layout.width, &cfg.pool))
            .collect();
        let n = invoke(f, &layout, &recs).len() as u64;
        lo = lo.min(n);
        hi = hi.max(n);
    }
    (if lo == u64::MAX { 0 } else { lo }, hi)
}

fn invoke(f: &Function, layout: &Layout, recs: &[Record]) -> Vec<Record> {
    match f.kind() {
        UdfKind::Map => run(f, layout, Invocation::Record(&recs[0])),
        UdfKind::Pair => run(f, layout, Invocation::Pair(&recs[0], &recs[1])),
        UdfKind::Group => {
            let g = vec![recs[0].clone()];
            run(f, layout, Invocation::Group(&g))
        }
        UdfKind::CoGroup => {
            let g = vec![recs[0].clone()];
            let h = vec![recs[1].clone()];
            run(f, layout, Invocation::CoGroup(&g, &h))
        }
    }
}

/// Output bags differ in cardinality or in some position other than
/// `ignore` (Definition 3's "k ≠ n").
fn differs_besides(a: &[Record], b: &[Record], ignore: usize) -> bool {
    if a.len() != b.len() {
        return true;
    }
    let strip = |rs: &[Record]| -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = rs
            .iter()
            .map(|r| {
                r.fields()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ignore)
                    .map(|(_, x)| x.clone())
                    .collect()
            })
            .collect();
        v.sort();
        v
    };
    strip(a) != strip(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use strato_ir::{BinOp, FuncBuilder, UnOp};

    fn paper_f1() -> Function {
        let mut b = FuncBuilder::new("f1", UdfKind::Map, vec![2]);
        let bv = b.get_input(0, 1);
        let or = b.copy_input(0);
        let zero = b.konst(0i64);
        let nonneg = b.bin(BinOp::Ge, bv, zero);
        let done = b.new_label();
        b.branch(nonneg, done);
        let abs = b.un(UnOp::Abs, bv);
        b.set(or, 1, abs);
        b.place(done);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn paper_f2() -> Function {
        let mut b = FuncBuilder::new("f2", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let zero = b.konst(0i64);
        let neg = b.bin(BinOp::Lt, a, zero);
        let end = b.new_label();
        b.branch(neg, end);
        let out = b.copy_input(0);
        b.emit(out);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn probe_finds_filter_read() {
        let reads = probe_read_set(&paper_f2(), &ProbeConfig::default());
        assert!(reads.contains(&(0, 0)));
        assert!(!reads.contains(&(0, 1)));
    }

    #[test]
    fn probe_finds_abs_write() {
        let writes = probe_write_set(&paper_f1(), &ProbeConfig::default());
        assert!(writes.contains(&1));
        assert!(!writes.contains(&0));
    }

    #[test]
    fn probed_sets_are_subsets_of_sca_sets() {
        for f in [paper_f1(), paper_f2()] {
            let props = analyze(&f);
            let cfg = ProbeConfig::default();
            for r in probe_read_set(&f, &cfg) {
                assert!(
                    props.reads.contains(&r),
                    "{}: probe read {r:?} missed",
                    f.name()
                );
            }
            for w in probe_write_set(&f, &cfg) {
                assert!(
                    props.written_base.contains(&w) || props.added.contains(&w),
                    "{}: probe write {w} missed",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn probe_emit_counts_within_sca_bounds() {
        for f in [paper_f1(), paper_f2()] {
            let props = analyze(&f);
            let (lo, hi) = probe_emit_counts(&f, &ProbeConfig::default());
            assert!(lo >= props.emits.min);
            if let Some(max) = props.emits.max {
                assert!(hi <= max);
            }
        }
    }

    #[test]
    fn probe_handles_pair_udfs() {
        // Join-style filter: emit concat iff field0(left) == field0(right).
        let mut b = FuncBuilder::new("jf", UdfKind::Pair, vec![2, 2]);
        let l = b.get_input(0, 0);
        let r = b.get_input(1, 0);
        let eq = b.bin(BinOp::Eq, l, r);
        let end = b.new_label();
        b.branch_not(eq, end);
        let or = b.concat_inputs();
        b.emit(or);
        b.place(end);
        b.ret();
        let f = b.finish().unwrap();
        let reads = probe_read_set(&f, &ProbeConfig::default());
        assert!(reads.contains(&(0, 0)));
        assert!(reads.contains(&(1, 0)));
        let writes = probe_write_set(&f, &ProbeConfig::default());
        assert!(writes.is_empty());
    }
}
