//! Emit-cardinality bounds.
//!
//! "We omit the details for emit cardinalities, which can be estimated by
//! traversing the control flow graph of a UDF" (Section 5). This module
//! supplies those details: min/max `emit` counts over all control-flow
//! paths, computed by dynamic programming over the condensation (SCC DAG)
//! of the CFG. An `emit` inside a cycle makes the maximum unbounded; cyclic
//! regions contribute a conservative minimum of zero.

use crate::props::EmitBounds;
use strato_ir::cfg::Cfg;
use strato_ir::func::Function;
use strato_ir::Inst;

/// Computes emit bounds for a function.
pub fn emit_bounds(f: &Function, cfg: &Cfg) -> EmitBounds {
    let insts = f.insts();
    let n = insts.len();
    let comp = scc_ids(cfg, n);
    let n_comp = comp.iter().copied().max().map_or(0, |m| m + 1);

    // Component metadata.
    let mut cyclic = vec![false; n_comp];
    let mut emits_in = vec![0u64; n_comp];
    let mut has_terminal = vec![false; n_comp];
    let mut members = vec![0usize; n_comp];
    for i in 0..n {
        if !cfg.reachable(i) {
            continue;
        }
        let c = comp[i];
        members[c] += 1;
        if cfg.in_cycle(i) {
            cyclic[c] = true;
        }
        if matches!(insts[i], Inst::Emit { .. }) {
            emits_in[c] += 1;
        }
        // A terminal: Return, or an instruction with no successors.
        if matches!(insts[i], Inst::Return) || cfg.succs(i).next().is_none() {
            has_terminal[c] = true;
        }
    }

    // Condensation edges.
    let mut comp_succs: Vec<Vec<usize>> = vec![vec![]; n_comp];
    for i in 0..n {
        if !cfg.reachable(i) {
            continue;
        }
        for s in cfg.succs(i) {
            if comp[i] != comp[s] && !comp_succs[comp[i]].contains(&comp[s]) {
                comp_succs[comp[i]].push(comp[s]);
            }
        }
    }

    // Per-component weight: (min emits, max emits or None).
    let weight = |c: usize| -> (u64, Option<u64>) {
        if cyclic[c] {
            if emits_in[c] > 0 {
                (0, None)
            } else {
                (0, Some(0))
            }
        } else {
            (emits_in[c], Some(emits_in[c]))
        }
    };

    // Topological order of the condensation via DFS post-order from the
    // entry component.
    let entry = comp[0];
    let order = topo_from(entry, &comp_succs);

    // DP over paths: in-bounds per component.
    let mut min_in = vec![u64::MAX; n_comp];
    let mut max_in: Vec<Option<Option<u64>>> = vec![None; n_comp]; // outer None = unreached
    min_in[entry] = 0;
    max_in[entry] = Some(Some(0));
    for &c in &order {
        if min_in[c] == u64::MAX {
            continue;
        }
        let (wmin, wmax) = weight(c);
        let out_min = min_in[c].saturating_add(wmin);
        let out_max = match (max_in[c].unwrap(), wmax) {
            (Some(a), Some(b)) => Some(a.saturating_add(b)),
            _ => None,
        };
        for &s in &comp_succs[c] {
            min_in[s] = min_in[s].min(out_min);
            max_in[s] = Some(match max_in[s] {
                None => out_max,
                Some(prev) => match (prev, out_max) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                },
            });
        }
    }

    // Aggregate over terminal components.
    let mut total_min = u64::MAX;
    let mut total_max: Option<u64> = Some(0);
    let mut any_terminal = false;
    for c in 0..n_comp {
        if !has_terminal[c] || min_in[c] == u64::MAX {
            continue;
        }
        any_terminal = true;
        let (wmin, wmax) = weight(c);
        total_min = total_min.min(min_in[c].saturating_add(wmin));
        let t_max = match (max_in[c].unwrap(), wmax) {
            (Some(a), Some(b)) => Some(a.saturating_add(b)),
            _ => None,
        };
        total_max = match (total_max, t_max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }
    if !any_terminal {
        // Degenerate: no reachable terminal (pure infinite loop). Bound by
        // the loop contents.
        let unbounded = (0..n)
            .any(|i| cfg.reachable(i) && cfg.in_cycle(i) && matches!(insts[i], Inst::Emit { .. }));
        return EmitBounds {
            min: 0,
            max: if unbounded { None } else { Some(0) },
        };
    }
    EmitBounds {
        min: total_min,
        max: total_max,
    }
}

/// Tarjan SCC producing a component id per instruction (unreachable
/// instructions keep id 0 but are never consulted).
fn scc_ids(cfg: &Cfg, n: usize) -> Vec<usize> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![0usize; n];
    let mut counter = 0usize;
    let mut n_comp = 0usize;

    enum Frame {
        Enter(usize),
        Post(usize, usize),
    }
    for start in 0..n {
        if !cfg.reachable(start) || index[start] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(start)];
        while let Some(fr) = call.pop() {
            match fr {
                Frame::Enter(v) => {
                    if index[v] != usize::MAX {
                        continue;
                    }
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Post(v, usize::MAX));
                    for w in cfg.succs(v) {
                        if index[w] == usize::MAX {
                            call.push(Frame::Post(v, w));
                            call.push(Frame::Enter(w));
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                }
                Frame::Post(v, w) => {
                    if w != usize::MAX {
                        low[v] = low[v].min(low[w]);
                        continue;
                    }
                    if low[v] == index[v] {
                        while let Some(x) = stack.pop() {
                            on_stack[x] = false;
                            comp[x] = n_comp;
                            if x == v {
                                break;
                            }
                        }
                        n_comp += 1;
                    }
                }
            }
        }
    }
    comp
}

/// DFS post-order reversed = topological order of the (acyclic)
/// condensation, restricted to components reachable from `entry`.
fn topo_from(entry: usize, succs: &[Vec<usize>]) -> Vec<usize> {
    let n = succs.len();
    let mut seen = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    if n == 0 {
        return post;
    }
    seen[entry] = true;
    while let Some((v, mut i)) = stack.pop() {
        let mut descended = false;
        while i < succs[v].len() {
            let w = succs[v][i];
            i += 1;
            if !seen[w] {
                seen[w] = true;
                stack.push((v, i));
                stack.push((w, 0));
                descended = true;
                break;
            }
        }
        if !descended && i >= succs[v].len() {
            post.push(v);
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::{BinOp, FuncBuilder, UdfKind};

    fn bounds(f: &Function) -> EmitBounds {
        emit_bounds(f, &Cfg::build(f))
    }

    #[test]
    fn identity_map_emits_exactly_one() {
        let mut b = FuncBuilder::new("id", UdfKind::Map, vec![1]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        let e = bounds(&b.finish().unwrap());
        assert_eq!(
            e,
            EmitBounds {
                min: 1,
                max: Some(1)
            }
        );
        assert!(e.exactly_one());
    }

    #[test]
    fn filter_emits_zero_or_one() {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![1]);
        let v = b.get_input(0, 0);
        let end = b.new_label();
        b.branch_not(v, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        let e = bounds(&b.finish().unwrap());
        assert_eq!(
            e,
            EmitBounds {
                min: 0,
                max: Some(1)
            }
        );
        assert!(e.at_most_one());
        assert!(!e.exactly_one());
    }

    #[test]
    fn two_unconditional_emits() {
        let mut b = FuncBuilder::new("dup", UdfKind::Map, vec![1]);
        let or = b.copy_input(0);
        b.emit(or);
        b.emit(or);
        b.ret();
        assert_eq!(
            bounds(&b.finish().unwrap()),
            EmitBounds {
                min: 2,
                max: Some(2)
            }
        );
    }

    #[test]
    fn emit_in_loop_is_unbounded() {
        // KAT UDF emitting every group record.
        let mut b = FuncBuilder::new("all", UdfKind::Group, vec![1]);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let or = b.copy(r);
        b.emit(or);
        b.jump(head);
        b.place(done);
        b.ret();
        let e = bounds(&b.finish().unwrap());
        assert_eq!(e.max, None);
        assert_eq!(e.min, 0);
    }

    #[test]
    fn loop_without_emit_stays_bounded() {
        let mut b = FuncBuilder::new("scan", UdfKind::Group, vec![1]);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let _r = b.iter_next(it, done);
        b.jump(head);
        b.place(done);
        let or = b.new_rec();
        b.emit(or);
        b.ret();
        assert_eq!(
            bounds(&b.finish().unwrap()),
            EmitBounds {
                min: 1,
                max: Some(1)
            }
        );
    }

    #[test]
    fn branchy_emit_counts() {
        // if c { emit; emit } else { emit } → [1, 2]
        let mut b = FuncBuilder::new("b", UdfKind::Map, vec![1]);
        let c = b.get_input(0, 0);
        let or = b.copy_input(0);
        let els = b.new_label();
        let end = b.new_label();
        b.branch_not(c, els);
        b.emit(or);
        b.emit(or);
        b.jump(end);
        b.place(els);
        b.emit(or);
        b.place(end);
        b.ret();
        assert_eq!(
            bounds(&b.finish().unwrap()),
            EmitBounds {
                min: 1,
                max: Some(2)
            }
        );
    }

    #[test]
    fn early_return_path_counts() {
        // if c { return } ; emit → [0, 1]
        let mut b = FuncBuilder::new("er", UdfKind::Map, vec![1]);
        let c = b.get_input(0, 0);
        let cont = b.new_label();
        b.branch_not(c, cont);
        b.ret();
        b.place(cont);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        assert_eq!(
            bounds(&b.finish().unwrap()),
            EmitBounds {
                min: 0,
                max: Some(1)
            }
        );
    }

    #[test]
    fn no_emit_at_all() {
        let mut b = FuncBuilder::new("drop", UdfKind::Map, vec![1]);
        b.ret();
        let e = bounds(&b.finish().unwrap());
        assert_eq!(
            e,
            EmitBounds {
                min: 0,
                max: Some(0)
            }
        );
    }

    #[test]
    fn bounded_counting_loop_is_conservatively_unbounded() {
        // Loop bounded by a counter still reports max = ∞ — conservatism.
        let mut b = FuncBuilder::new("cl", UdfKind::Map, vec![1]);
        let i = b.konst(0i64);
        let one = b.konst(1i64);
        let three = b.konst(3i64);
        let or = b.copy_input(0);
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let lt = b.bin(BinOp::Ge, i, three);
        b.branch(lt, done);
        b.emit(or);
        b.bin_into(i, BinOp::Add, i, one);
        b.jump(head);
        b.place(done);
        b.ret();
        let e = bounds(&b.finish().unwrap());
        assert_eq!(e.max, None);
    }
}
