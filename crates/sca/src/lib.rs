//! # strato-sca — static code analysis of black-box UDFs
//!
//! Implementation of Section 5 of *"Opening the Black Boxes in Data Flow
//! Optimization"*: a static pass over the three-address code of a UDF that
//! conservatively derives the properties the optimizer needs to reorder
//! operators without knowing their semantics:
//!
//! * the **read set** — fields whose `getField` results are actually used
//!   (found through `DEF-USE` chains),
//! * the **write set** — derived by classifying every emitted record's
//!   construction: implicit copy (copy/concat constructor) vs. implicit
//!   projection (default constructor), refined by explicit copies
//!   (`setField(or, n, $t)` where `$t` provably came from `getField(ir, n)`
//!   at the *same* position), explicit projections (`setField(or, n, null)`),
//!   explicit modifications, and added fields (`n ≥ #I`),
//! * **emit cardinality bounds** per invocation (min/max over all control
//!   flow paths; `emit` on a cycle ⇒ unbounded max),
//! * **control reads** — fields whose values influence branch decisions,
//!   used for the key-group-preservation (KGP) condition,
//! * **dynamic access flags** — `getField`/`setField` with non-literal
//!   indices force worst-case assumptions, mirroring the paper's restriction
//!   of its prototype to "field accesses with literals and final variables",
//! * **combinability** — a structural proof that a reduce UDF is an
//!   in-place algebraic fold and therefore *decomposable*, which unlocks
//!   pre-shuffle combiners and streaming aggregation ([`combine`]).
//!
//! Safety through conservatism: every derived set is a superset of the true
//! set for every possible input, so enumerated reorderings are a subset of
//! the truly valid ones (Section 5, "safety"). The [`probe`] module offers
//! *semantic* read/write-set estimation by black-box probing, which the test
//! suite uses to validate conservatism on every workload UDF.

#![warn(missing_docs)]

pub mod analysis;
pub mod combine;
pub mod emits;
pub mod probe;
pub mod props;
pub mod taint;

pub use analysis::analyze;
pub use combine::{combinable, CombineSummary};
pub use props::{EmitBounds, LocalProps};
