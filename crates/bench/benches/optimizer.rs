//! End-to-end optimizer benchmarks: property derivation + enumeration +
//! physical costing for each evaluation workload.

use criterion::{criterion_group, criterion_main, Criterion};
use strato_core::{cost::CostWeights, physical::best_physical, Optimizer, PropTable};
use strato_dataflow::PropertyMode;
use strato_workloads::{clickstream, textmining, tpch};

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);

    let q15 = tpch::q15_plan(tpch::TpchScale::small());
    g.bench_function("optimize_q15", |b| {
        let opt = Optimizer::new(PropertyMode::Sca);
        b.iter(|| opt.optimize(&q15).n_enumerated)
    });

    let cs = clickstream::plan(clickstream::ClickScale::small());
    g.bench_function("optimize_clickstream", |b| {
        let opt = Optimizer::new(PropertyMode::Manual);
        b.iter(|| opt.optimize(&cs).n_enumerated)
    });

    let tm = textmining::plan(textmining::TextScale::small());
    g.bench_function("optimize_textmining", |b| {
        let opt = Optimizer::new(PropertyMode::Sca);
        b.iter(|| opt.optimize(&tm).n_enumerated)
    });

    // Physical optimization of one logical order (the inner loop of the
    // full optimization; Q7 runs it 2860 times).
    let q7 = tpch::q7_plan(tpch::TpchScale::small());
    let props = PropTable::build(&q7, PropertyMode::Sca);
    g.bench_function("physical_q7_single_order", |b| {
        b.iter(|| best_physical(&q7, &props, &CostWeights::default(), 8).total_cost)
    });

    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
