//! Static-code-analysis benchmarks — the paper's claim that "the overhead
//! of performing the static code analysis is virtually zero" (Section 7.3).
//!
//! `analyze_*` times one SCA pass over a single black-box UDF;
//! `derive_properties_*` times lifting all of a plan's operators onto the
//! global record (what the optimizer actually pays per optimization run).

use criterion::{criterion_group, criterion_main, Criterion};
use strato_core::PropTable;
use strato_dataflow::PropertyMode;
use strato_sca::analyze;
use strato_workloads::udfs;
use strato_workloads::{clickstream, textmining, tpch};

fn bench_sca(c: &mut Criterion) {
    let mut g = c.benchmark_group("sca");

    // Individual UDF shapes.
    let filter = udfs::filter_range(17, 4, 10, 20);
    g.bench_function("analyze_filter_map", |b| b.iter(|| analyze(&filter)));

    let join = udfs::join_concat(15, 2);
    g.bench_function("analyze_join_udf", |b| b.iter(|| analyze(&join)));

    let agg = udfs::revenue_sum_group(17, 2, 3);
    g.bench_function("analyze_group_udf", |b| b.iter(|| analyze(&agg)));

    let extractor = udfs::tag_if_contains("gene", 9, 1, "GENE_", 100);
    g.bench_function("analyze_extractor", |b| b.iter(|| analyze(&extractor)));

    // Whole-plan property derivation (SCA already cached in the bound plan;
    // this measures the lift onto global attributes).
    let q7 = tpch::q7_plan(tpch::TpchScale::small());
    g.bench_function("derive_properties_q7", |b| {
        b.iter(|| PropTable::build(&q7, PropertyMode::Sca))
    });
    let cs = clickstream::plan(clickstream::ClickScale::small());
    g.bench_function("derive_properties_clickstream", |b| {
        b.iter(|| PropTable::build(&cs, PropertyMode::Sca))
    });
    let tm = textmining::plan(textmining::TextScale::small());
    g.bench_function("derive_properties_textmining", |b| {
        b.iter(|| PropTable::build(&tm, PropertyMode::Sca))
    });

    g.finish();
}

criterion_group!(benches, bench_sca);
criterion_main!(benches);
