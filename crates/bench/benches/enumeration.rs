//! Plan-enumeration benchmarks — the paper's "Enumeration Time" claim
//! (Section 7.3): *"For all queries presented so far … plan enumeration
//! took less than 1654 ms using our naive implementation."*
//!
//! Each benchmark enumerates the full valid-reordering space of one
//! workload (Table 1's plan counts) from already-derived properties.

use criterion::{criterion_group, criterion_main, Criterion};
use strato_core::{enumerate_algorithm1, enumerate_all, PropTable};
use strato_dataflow::PropertyMode;
use strato_workloads::{clickstream, textmining, tpch};

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumeration");
    g.sample_size(10);

    let q7 = tpch::q7_plan(tpch::TpchScale::small());
    let q7_props = PropTable::build(&q7, PropertyMode::Sca);
    g.bench_function("q7_full_space", |b| {
        b.iter(|| enumerate_all(&q7, &q7_props, 100_000).len())
    });

    let q15 = tpch::q15_plan(tpch::TpchScale::small());
    let q15_props = PropTable::build(&q15, PropertyMode::Sca);
    g.bench_function("q15", |b| {
        b.iter(|| enumerate_all(&q15, &q15_props, 1_000).len())
    });

    let cs = clickstream::plan(clickstream::ClickScale::small());
    let cs_props = PropTable::build(&cs, PropertyMode::Manual);
    g.bench_function("clickstream", |b| {
        b.iter(|| enumerate_all(&cs, &cs_props, 1_000).len())
    });

    let tm = textmining::plan(textmining::TextScale::small());
    let tm_props = PropTable::build(&tm, PropertyMode::Sca);
    g.bench_function("textmining_closure", |b| {
        b.iter(|| enumerate_all(&tm, &tm_props, 1_000).len())
    });
    g.bench_function("textmining_algorithm1", |b| {
        b.iter(|| enumerate_algorithm1(&tm, &tm_props).unwrap().len())
    });

    g.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
