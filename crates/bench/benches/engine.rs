//! Execution-engine benchmarks: record wire encoding, hash partitioning
//! primitives, interpreter throughput and end-to-end plan execution.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use strato_exec::{execute_logical, Inputs};
use strato_ir::interp::{Interp, Invocation, Layout};
use strato_record::hash::fx_hash;
use strato_record::{wire, Record, Value};
use strato_workloads::{tpch, udfs};

fn sample_record() -> Record {
    Record::from_values([
        Value::Int(42),
        Value::str("GENE_0042 binding assay"),
        Value::Float(3.25),
        Value::Null,
        Value::Bool(true),
        Value::Int(19_950_101),
    ])
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    let rec = sample_record();
    g.bench_function("wire_encode", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            wire::encode_record(&rec, &mut buf)
        })
    });
    g.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let bytes = wire::encode_to_bytes(&rec);
            wire::decode_record(&mut bytes.clone()).unwrap()
        })
    });
    g.bench_function("fx_hash_key", |b| {
        let key = vec![Value::Int(7), Value::str("FRANCE")];
        b.iter(|| fx_hash(&key))
    });

    // Interpreter throughput on a filter UDF.
    let filter = udfs::filter_range(6, 4, 19_950_101, 19_951_231);
    let layout = Layout::local(&filter);
    let interp = Interp::default();
    g.bench_function("interp_filter_call", |b| {
        let r = Record::from_values([
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4),
            Value::Int(19_950_615),
            Value::Int(5),
        ]);
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            interp.run(&filter, Invocation::Record(&r), &layout, &mut out)
        })
    });

    // End-to-end logical execution of Q15.
    let scale = tpch::TpchScale::tiny();
    let plan = tpch::q15_plan(scale);
    let inputs: Inputs = tpch::generate(scale, 3).into_iter().collect();
    let mut g2 = {
        g.finish();
        c.benchmark_group("engine_e2e")
    };
    g2.sample_size(10);
    g2.bench_function("q15_logical_tiny", |b| {
        b.iter(|| execute_logical(&plan, &inputs).unwrap().0.len())
    });
    g2.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
