//! Execution-engine benchmarks: record wire encoding, hash partitioning
//! primitives, interpreter throughput, end-to-end plan execution, and
//! multi-query throughput on the shared engine runtime.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hash::Hasher;
use std::time::Instant;
use strato_core::{cost::CostWeights, physical::best_physical, PropTable};
use strato_dataflow::{CostHints, Plan, ProgramBuilder, PropertyMode, SourceDef};
use strato_exec::{execute, execute_logical, EngineRuntime, Inputs, RuntimeOptions};
use strato_ir::interp::{Interp, Invocation, Layout};
use strato_ir::{FuncBuilder, UdfKind};
use strato_record::hash::{fx_hash, FxHasher};
use strato_record::{wire, BatchBuilder, DataSet, Record, Value};
use strato_workloads::{tpch, udfs};

/// A grouped-aggregate workload with heavy key duplication: `rows`
/// two-int records over `keys` distinct keys into an **in-place sum** —
/// the combinable aggregate. The optimizer inserts the pre-ship combiner,
/// so only one partial per key per partition crosses the Partition ship
/// and the final reduce streams over partials instead of buffering.
fn grouped_agg_workload(rows: usize, keys: usize) -> (Plan, Inputs) {
    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "v"], rows as u64).with_bytes_per_row(22));
    let r = p.reduce(
        "sum",
        &[0],
        udfs::sum_group_inplace(2, 1),
        CostHints::default().with_distinct_keys(keys as u64),
        s,
    );
    let plan = p.finish(r).unwrap().bind().unwrap();

    let ds: DataSet = (0..rows)
        .map(|i| Record::from_values([Value::Int((i % keys) as i64), Value::Int(i as i64)]))
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);
    (plan, inputs)
}

/// A shuffle-bound workload: `rows` two-field records (int key with
/// `keys` distinct values, ~32-byte string payload) into a first-of-group
/// reduce. The reduce forces a hash repartition of the full input.
fn shuffle_workload(rows: usize, keys: usize) -> (Plan, Inputs) {
    let mut b = FuncBuilder::new("first", UdfKind::Group, vec![2]);
    let it = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it, nil);
    let or = b.copy(first);
    b.emit(or);
    b.place(nil);
    b.ret();
    let udf = b.finish().unwrap();

    let mut p = ProgramBuilder::new();
    let s = p.source(SourceDef::new("s", &["k", "payload"], rows as u64).with_bytes_per_row(45));
    let r = p.reduce(
        "first",
        &[0],
        udf,
        CostHints::default().with_distinct_keys(keys as u64),
        s,
    );
    let plan = p.finish(r).unwrap().bind().unwrap();

    let ds: DataSet = (0..rows)
        .map(|i| {
            Record::from_values([
                Value::Int((i % keys) as i64),
                Value::str(format!("payload-{:027}", i)),
            ])
        })
        .collect();
    let mut inputs = Inputs::new();
    inputs.insert("s".into(), ds);
    (plan, inputs)
}

fn sample_record() -> Record {
    Record::from_values([
        Value::Int(42),
        Value::str("GENE_0042 binding assay"),
        Value::Float(3.25),
        Value::Null,
        Value::Bool(true),
        Value::Int(19_950_101),
    ])
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    let rec = sample_record();
    g.bench_function("wire_encode", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            wire::encode_record(&rec, &mut buf)
        })
    });
    g.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let bytes = wire::encode_to_bytes(&rec);
            wire::decode_record(&mut bytes.clone()).unwrap()
        })
    });
    g.bench_function("fx_hash_key", |b| {
        let key = vec![Value::Int(7), Value::str("FRANCE")];
        b.iter(|| fx_hash(&key))
    });

    // Interpreter throughput on a filter UDF.
    let filter = udfs::filter_range(6, 4, 19_950_101, 19_951_231);
    let layout = Layout::local(&filter);
    let interp = Interp::default();
    g.bench_function("interp_filter_call", |b| {
        let r = Record::from_values([
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4),
            Value::Int(19_950_615),
            Value::Int(5),
        ]);
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            interp.run(&filter, Invocation::Record(&r), &layout, &mut out)
        })
    });

    // End-to-end logical execution of Q15.
    let scale = tpch::TpchScale::tiny();
    let plan = tpch::q15_plan(scale);
    let inputs: Inputs = tpch::generate(scale, 3).into_iter().collect();
    let mut g2 = {
        g.finish();
        c.benchmark_group("engine_e2e")
    };
    g2.sample_size(10);
    g2.bench_function("q15_logical_tiny", |b| {
        b.iter(|| execute_logical(&plan, &inputs).unwrap().0.len())
    });
    // Parallel physical execution: exercises the ship strategies
    // (repartition + broadcast) and the per-partition worker path.
    let props = PropTable::build(&plan, PropertyMode::Sca);
    let phys = best_physical(&plan, &props, &CostWeights::default(), 4);
    g2.bench_function("q15_physical_tiny_dop4", |b| {
        b.iter(|| execute(&plan, &phys, &inputs, 4).unwrap().0.len())
    });

    // Shuffle-bound execution: 50k wide-ish records hash-repartitioned into
    // a cheap reduce at dop 4. Dominated by the Partition ship path and
    // group formation, not UDF interpretation.
    let (sh_plan, sh_inputs) = shuffle_workload(50_000, 2_000);
    let sh_props = PropTable::build(&sh_plan, PropertyMode::Sca);
    let sh_phys = best_physical(&sh_plan, &sh_props, &CostWeights::default(), 4);
    g2.bench_function("shuffle_50k_dop4", |b| {
        b.iter(|| execute(&sh_plan, &sh_phys, &sh_inputs, 4).unwrap().0.len())
    });

    // Grouped-aggregate shuffle with high key duplication (50k rows, 64
    // keys): exercises the combiner path end-to-end — streaming pre-ship
    // partial aggregation plus the StreamAgg local strategy.
    let (ga_plan, ga_inputs) = grouped_agg_workload(50_000, 64);
    let ga_props = PropTable::build(&ga_plan, PropertyMode::Sca);
    let ga_phys = best_physical(&ga_plan, &ga_props, &CostWeights::default(), 4);
    assert!(ga_phys.root.combine, "combiner must be planned");
    g2.bench_function("grouped_agg_50k_dop4", |b| {
        b.iter(|| execute(&ga_plan, &ga_phys, &ga_inputs, 4).unwrap().0.len())
    });
    g2.finish();

    // Out-of-core execution: the same workloads starved to a budget far
    // below their working set, so every blocking operator spills sorted
    // runs and finishes through the loser-tree merge (and the combiner
    // flushes partials downstream). Measures the spill write/merge path
    // end-to-end against the in-memory numbers above.
    let mut g3 = c.benchmark_group("engine_ooc");
    g3.sample_size(10);
    let starved = |budget: u64| strato_exec::ExecOptions {
        mem_budget: Some(budget),
        ..strato_exec::ExecOptions::default()
    };
    // ~2.8 MB of shuffle state squeezed through 256 KiB: roughly a dozen
    // spill runs per partition on the first-of-group reduce.
    let ooc_opts = starved(256 * 1024);
    g3.bench_function("shuffle_50k_dop4_mem256k", |b| {
        b.iter(|| {
            let (out, stats) =
                strato_exec::execute_with(&sh_plan, &sh_phys, &sh_inputs, 4, &ooc_opts).unwrap();
            assert!(stats.spill_snapshot().2 > 0, "bench must actually spill");
            out.len()
        })
    });
    // The combinable aggregate under a 256-byte budget — below even one
    // partition's final partial table (~16 keys × 22 bytes), so the
    // StreamAgg deterministically spills its table to disk while the
    // pre-ship combiner flushes partials downstream: the
    // degenerate-memory path of the combiner subsystem.
    let ooc_agg_opts = starved(256);
    g3.bench_function("grouped_agg_50k_dop4_mem256b", |b| {
        b.iter(|| {
            let (out, stats) =
                strato_exec::execute_with(&ga_plan, &ga_phys, &ga_inputs, 4, &ooc_agg_opts)
                    .unwrap();
            assert!(stats.spill_snapshot().2 > 0, "bench must actually spill");
            out.len()
        })
    });
    g3.finish();

    // Tracing overhead A/B: the same shuffle workload untraced and with
    // a live recorder capturing every task/ship span. Pins the
    // `ExecOptions::trace` overhead contract — one `Option` check when
    // off, bounded lock-light recording when on — via bench-smoke's
    // regression gate on both sides of the pair.
    let mut g_tr = c.benchmark_group("engine_trace");
    g_tr.sample_size(10);
    g_tr.bench_function("shuffle_50k_dop4_untraced", |b| {
        b.iter(|| {
            let opts = strato_exec::ExecOptions::default();
            strato_exec::execute_with(&sh_plan, &sh_phys, &sh_inputs, 4, &opts)
                .unwrap()
                .0
                .len()
        })
    });
    g_tr.bench_function("shuffle_50k_dop4_traced", |b| {
        b.iter(|| {
            let recorder = strato_exec::TraceRecorder::new(1);
            let opts = strato_exec::ExecOptions {
                trace: Some(recorder.clone()),
                ..strato_exec::ExecOptions::default()
            };
            let (out, _) =
                strato_exec::execute_with(&sh_plan, &sh_phys, &sh_inputs, 4, &opts).unwrap();
            assert!(!recorder.spans().is_empty(), "bench must actually record");
            out.len()
        })
    });
    g_tr.finish();

    // Columnar kernels against the row-at-a-time reference, micro and
    // end-to-end. The micro pair isolates the vectorized key-hash kernel
    // on the shuffle workload's own 50k-row data; the e2e pair A/Bs the
    // `ExecOptions::layout` escape hatch on the full shuffle plan.
    let mut g4 = c.benchmark_group("engine_columnar");
    let src = sh_inputs["s"].records();
    let mut builder = BatchBuilder::new(2);
    for r in src {
        builder.push_record(r);
    }
    let cb = builder.finish();
    let keys = [0usize];
    g4.bench_function("key_hash_columnar_50k", |b| {
        let mut hashes = Vec::new();
        b.iter(|| {
            cb.key_hash_into(&keys, &mut hashes);
            hashes[0]
        })
    });
    g4.bench_function("key_hash_row_50k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in src {
                let mut h = FxHasher::default();
                std::hash::Hash::hash(r.field(0), &mut h);
                acc ^= h.finish();
            }
            acc
        })
    });
    g4.sample_size(10);
    let layout_opts = |layout| strato_exec::ExecOptions {
        layout,
        ..strato_exec::ExecOptions::default()
    };
    let row_opts = layout_opts(strato_exec::BatchLayout::RowView);
    g4.bench_function("shuffle_50k_dop4_rowview", |b| {
        b.iter(|| {
            strato_exec::execute_with(&sh_plan, &sh_phys, &sh_inputs, 4, &row_opts)
                .unwrap()
                .0
                .len()
        })
    });
    let col_opts = layout_opts(strato_exec::BatchLayout::ColumnarNative);
    g4.bench_function("shuffle_50k_dop4_columnar", |b| {
        b.iter(|| {
            strato_exec::execute_with(&sh_plan, &sh_phys, &sh_inputs, 4, &col_opts)
                .unwrap()
                .0
                .len()
        })
    });
    g4.finish();

    // Multi-query throughput: `c` identical grouped-aggregate queries
    // submitted simultaneously to ONE shared EngineRuntime (one worker
    // pool, one memory budget), swept over the concurrency levels the
    // admission gate actually sees. `isolated_c4` is the pre-runtime
    // baseline — four queries each spinning up a private worker pool —
    // so shared_c4 vs isolated_c4 measures what pooling buys under
    // oversubscription. Every query's result is asserted byte-identical
    // to a precomputed serial reference on every iteration.
    let mut g5 = c.benchmark_group("engine_throughput");
    g5.sample_size(10);
    let (tp_plan, tp_inputs) = grouped_agg_workload(30_000, 64);
    let tp_props = PropTable::build(&tp_plan, PropertyMode::Sca);
    let tp_phys = best_physical(&tp_plan, &tp_props, &CostWeights::default(), 2);
    let tp_ref = execute(&tp_plan, &tp_phys, &tp_inputs, 2).unwrap().0;
    let rt = EngineRuntime::new(RuntimeOptions::default());
    let run_shared = |conc: usize| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..conc)
                .map(|_| {
                    s.spawn(|| {
                        let out = rt.execute(&tp_plan, &tp_phys, &tp_inputs, 2).unwrap().0;
                        assert_eq!(out, tp_ref, "shared-pool result must be byte-identical");
                        out.len()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
    };
    let run_isolated = |conc: usize| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..conc)
                .map(|_| {
                    s.spawn(|| {
                        let out = execute(&tp_plan, &tp_phys, &tp_inputs, 2).unwrap().0;
                        assert_eq!(out, tp_ref);
                        out.len()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
    };
    for conc in [1usize, 2, 4, 8] {
        g5.bench_function(&format!("shared_c{conc}"), |b| b.iter(|| run_shared(conc)));
    }
    g5.bench_function("isolated_c4", |b| b.iter(|| run_isolated(4)));
    g5.finish();

    // Fixed-round capture of queries/sec and per-query latency
    // percentiles for the acceptance comparison (shared pooling must beat
    // per-query pools at c=4). Not a gated bench — the THROUGHPUT lines
    // are informational alongside the BENCH_JSON medians above.
    for (label, shared) in [("shared c=4", true), ("isolated c=4", false)] {
        const ROUNDS: usize = 15;
        const CONC: usize = 4;
        let mut lat_ns: Vec<u64> = Vec::with_capacity(ROUNDS * CONC);
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..CONC)
                    .map(|_| {
                        let rt = &rt;
                        let (tp_plan, tp_phys, tp_inputs) = (&tp_plan, &tp_phys, &tp_inputs);
                        s.spawn(move || {
                            let q0 = Instant::now();
                            let out = if shared {
                                rt.execute(tp_plan, tp_phys, tp_inputs, 2).unwrap().0
                            } else {
                                execute(tp_plan, tp_phys, tp_inputs, 2).unwrap().0
                            };
                            criterion::black_box(out.len());
                            q0.elapsed().as_nanos() as u64
                        })
                    })
                    .collect();
                for h in handles {
                    lat_ns.push(h.join().unwrap());
                }
            });
        }
        let wall = t0.elapsed().as_secs_f64();
        lat_ns.sort_unstable();
        let qps = (ROUNDS * CONC) as f64 / wall;
        let p50 = lat_ns[lat_ns.len() / 2] as f64 / 1e6;
        let p99 = lat_ns[(lat_ns.len() * 99 / 100).min(lat_ns.len() - 1)] as f64 / 1e6;
        println!("THROUGHPUT {label}: qps={qps:.1} p50_ms={p50:.2} p99_ms={p99:.2}");
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
