//! # strato-bench — experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation (Section 7). The `repro` binary drives it; Criterion benches
//! measure enumeration, SCA and engine micro-performance.
//!
//! The central routine is [`rank_sweep`], the experiment design behind
//! Figures 5–7: *"We sort the resulting plans in ascending order by their
//! estimated costs and assign a rank to each plan… We pick ten plans in
//! regular rank intervals from the list and execute them… we plot the cost
//! estimate of the optimizer and the actual runtime, both normalized by
//! the lowest estimated costs and averaged runtime respectively."*

#![warn(missing_docs)]

use std::time::{Duration, Instant};
use strato_core::{Optimizer, OptimizerReport};
use strato_dataflow::{Plan, PropertyMode};
use strato_exec::{execute, Inputs};

/// One executed point of a rank sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// 1-based rank in the cost-ordered plan list.
    pub rank: usize,
    /// Estimated cost (optimizer units).
    pub cost: f64,
    /// Cost normalized by the cheapest plan's cost.
    pub norm_cost: f64,
    /// Measured wall time (averaged over `repeats` runs).
    pub runtime: Duration,
    /// Runtime normalized by the fastest measured runtime of the sweep.
    pub norm_runtime: f64,
    /// Rendered logical plan.
    pub plan_text: String,
}

/// Result of a rank sweep over one workload.
#[derive(Debug)]
pub struct Sweep {
    /// Total number of enumerated plans (the plan space size).
    pub space: usize,
    /// The executed sample points, ascending by rank.
    pub points: Vec<SweepPoint>,
    /// The optimizer report (kept for plan-space statistics).
    pub report: OptimizerReport,
}

/// Enumerates and cost-ranks all plans of `plan`, picks `picks` plans at
/// regular rank intervals (always including rank 1 and the last rank),
/// executes each `repeats` times on `inputs` with `dop` partitions, and
/// returns normalized cost/runtime points.
pub fn rank_sweep(
    plan: &Plan,
    inputs: &Inputs,
    mode: PropertyMode,
    picks: usize,
    repeats: usize,
    dop: usize,
) -> Sweep {
    let opt = Optimizer::new(mode).with_dop(dop);
    let report = opt.optimize(plan);
    let n = report.ranked.len();
    let picks = picks.min(n).max(1);

    // Regularly spaced 1-based ranks, first and last included.
    let ranks: Vec<usize> = if picks == 1 {
        vec![1]
    } else {
        (0..picks)
            .map(|i| 1 + (i * (n - 1)) / (picks - 1))
            .collect()
    };

    let best_cost = report.ranked[0].cost;
    let mut points = Vec::new();
    for &rank in &ranks {
        let ranked = &report.ranked[rank - 1];
        let mut total = Duration::ZERO;
        let mut reference = None;
        // Untimed warmup run (allocator and cache state).
        let _ = execute(&ranked.plan, &ranked.phys, inputs, dop).expect("warmup");
        for _ in 0..repeats.max(1) {
            let t = Instant::now();
            let (out, _) =
                execute(&ranked.plan, &ranked.phys, inputs, dop).expect("plan execution");
            total += t.elapsed();
            // All executed plans of a sweep must agree — a live safety net
            // on top of the test suite.
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    r, &out,
                    "executions of rank {rank} disagree — nondeterminism bug"
                ),
            }
        }
        points.push(SweepPoint {
            rank,
            cost: ranked.cost,
            norm_cost: ranked.cost / best_cost,
            runtime: total / repeats.max(1) as u32,
            norm_runtime: 0.0, // filled below
            plan_text: ranked.plan.render(),
        });
    }
    let fastest = points
        .iter()
        .map(|p| p.runtime)
        .min()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    for p in &mut points {
        p.norm_runtime = p.runtime.as_secs_f64() / fastest.as_secs_f64();
    }
    Sweep {
        space: n,
        points,
        report,
    }
}

/// Formats a sweep as the text table printed by the `repro` binary.
pub fn render_sweep_table(title: &str, sweep: &Sweep) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{title}: {} plans enumerated; {} executed\n",
        sweep.space,
        sweep.points.len()
    ));
    s.push_str("rank      cost  norm-cost   runtime  norm-runtime\n");
    for p in &sweep.points {
        s.push_str(&format!(
            "{:>4} {:>9.3e} {:>10.2} {:>9.1?} {:>13.2}\n",
            p.rank, p.cost, p.norm_cost, p.runtime, p.norm_runtime
        ));
    }
    s
}

/// Formats a sweep as CSV (`rank,cost,norm_cost,runtime_ms,norm_runtime`).
pub fn render_sweep_csv(sweep: &Sweep) -> String {
    let mut s = String::from("rank,cost,norm_cost,runtime_ms,norm_runtime\n");
    for p in &sweep.points {
        s.push_str(&format!(
            "{},{},{},{},{}\n",
            p.rank,
            p.cost,
            p.norm_cost,
            p.runtime.as_secs_f64() * 1e3,
            p.norm_runtime
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_workloads::textmining;

    #[test]
    fn rank_sweep_on_textmining() {
        let scale = textmining::TextScale { docs: 80 };
        let plan = textmining::plan(scale);
        let inputs: Inputs = textmining::generate(scale, 3).into_iter().collect();
        let sweep = rank_sweep(&plan, &inputs, PropertyMode::Sca, 5, 1, 2);
        assert_eq!(sweep.space, 24);
        assert_eq!(sweep.points.len(), 5);
        assert_eq!(sweep.points[0].rank, 1);
        assert_eq!(sweep.points.last().unwrap().rank, 24);
        assert_eq!(sweep.points[0].norm_cost, 1.0);
        // Costs ascend with rank.
        for w in sweep.points.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        let table = render_sweep_table("tm", &sweep);
        assert!(table.contains("24 plans"), "{table}");
        let csv = render_sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn single_pick_sweep() {
        let scale = textmining::TextScale { docs: 40 };
        let plan = textmining::plan(scale);
        let inputs: Inputs = textmining::generate(scale, 3).into_iter().collect();
        let sweep = rank_sweep(&plan, &inputs, PropertyMode::Sca, 1, 1, 1);
        assert_eq!(sweep.points.len(), 1);
        assert_eq!(sweep.points[0].rank, 1);
    }
}
