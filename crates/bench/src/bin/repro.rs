//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p strato-bench --bin repro --release -- all
//! cargo run -p strato-bench --bin repro --release -- fig5 fig6 fig7 table1
//! ```
//!
//! Outputs aligned text tables on stdout and CSV files under `results/`.
//! Sub-commands: `fig2 fig3 fig4 fig5 fig6 fig7 table1 timing ablation all`.

use std::fs;
use std::path::Path;
use std::time::Instant;
use strato_bench::{rank_sweep, render_sweep_csv, render_sweep_table};
use strato_core::{enumerate_all, Optimizer, PropTable};
use strato_dataflow::{Plan, PropertyMode};
use strato_exec::Inputs;
use strato_workloads::{clickstream, textmining, tpch};

fn results_dir() -> &'static Path {
    let p = Path::new("results");
    fs::create_dir_all(p).expect("create results dir");
    p
}

fn save(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write result file");
    println!("  [saved {}]", path.display());
}

fn q7() -> (Plan, Inputs) {
    // Larger than the other workloads so that plan-dependent work dominates
    // fixed per-record engine overhead (Figure 5 needs the runtime spread).
    let scale = tpch::TpchScale { orders: 12_000 };
    (
        tpch::q7_plan(scale),
        tpch::generate(scale, 42).into_iter().collect(),
    )
}

fn q15() -> (Plan, Inputs) {
    let scale = tpch::TpchScale::small();
    (
        tpch::q15_plan(scale),
        tpch::generate(scale, 42).into_iter().collect(),
    )
}

fn clicks() -> (Plan, Inputs) {
    let scale = clickstream::ClickScale::small();
    (
        clickstream::plan(scale),
        clickstream::generate(scale, 42).into_iter().collect(),
    )
}

fn tm() -> (Plan, Inputs) {
    let scale = textmining::TextScale::small();
    (
        textmining::plan(scale),
        textmining::generate(scale, 42).into_iter().collect(),
    )
}

/// Figure 2: Q7 — implemented data flow vs. the 1st-ranked reordered flow.
fn fig2() {
    println!("== Figure 2: TPC-H Q7 data flows ==");
    let (plan, _) = q7();
    println!("(a) implemented data flow:\n{}", plan.render());
    let report = Optimizer::new(PropertyMode::Sca).optimize(&plan);
    let best = report.best();
    println!(
        "(b) 1st-ranked reordered data flow (cost {:.3e} vs implemented {:.3e}):\n{}",
        best.cost,
        report.ranked[report.rank_of(&plan.canonical()).unwrap()].cost,
        best.plan.render()
    );
    save(
        "fig2.txt",
        &format!("(a)\n{}\n(b)\n{}", plan.render(), best.plan.render()),
    );
}

/// Figure 3 + the Section 7.3 "Plan Enumeration Space" narrative: Q15's
/// two orders of Reduce and Match, with their physical strategies.
fn fig3() {
    println!("== Figure 3: TPC-H Q15 data flows and physical strategies ==");
    let (plan, _) = q15();
    let report = Optimizer::new(PropertyMode::Sca).optimize(&plan);
    println!(
        "{} alternatives enumerated (paper: 4)\n",
        report.n_enumerated
    );
    let mut text = String::new();
    for (i, r) in report.ranked.iter().enumerate() {
        let entry = format!(
            "rank {} cost {:.3e}\n{}physical:\n{}\n",
            i + 1,
            r.cost,
            r.plan.render(),
            r.phys.render(&r.plan)
        );
        println!("{entry}");
        text.push_str(&entry);
    }
    save("fig3.txt", &text);
}

/// Figure 4: clickstream — implemented vs. 1st-ranked flow.
fn fig4() {
    println!("== Figure 4: clickstream data flows ==");
    let (plan, _) = clicks();
    println!("(a) implemented data flow:\n{}", plan.render());
    let report = Optimizer::new(PropertyMode::Manual).optimize(&plan);
    let best = report.best();
    println!(
        "(b) 1st-ranked reordered data flow:\n{}",
        best.plan.render()
    );
    let impl_rank = report
        .rank_of(&plan.canonical())
        .map(|r| r + 1)
        .unwrap_or(0);
    println!(
        "implemented flow rank: {impl_rank} of {}",
        report.n_enumerated
    );
    save(
        "fig4.txt",
        &format!("(a)\n{}\n(b)\n{}", plan.render(), best.plan.render()),
    );
}

/// Figure 5: Q7 rank sweep — normalized cost estimates and runtimes for 10
/// regularly picked plans.
fn fig5() {
    println!("== Figure 5: Q7 cost estimates vs execution runtime ==");
    let (plan, inputs) = q7();
    let sweep = rank_sweep(&plan, &inputs, PropertyMode::Sca, 10, 3, 4);
    print!("{}", render_sweep_table("Q7", &sweep));
    save("fig5.csv", &render_sweep_csv(&sweep));
}

/// Figure 6: text mining rank sweep.
fn fig6() {
    println!("== Figure 6: text mining cost estimates vs execution runtime ==");
    let (plan, inputs) = tm();
    let sweep = rank_sweep(&plan, &inputs, PropertyMode::Sca, 10, 3, 4);
    print!("{}", render_sweep_table("text mining", &sweep));
    save("fig6.csv", &render_sweep_csv(&sweep));
}

/// Figure 7: clickstream — all four plans.
fn fig7() {
    println!("== Figure 7: clickstream cost estimates vs execution runtime ==");
    let (plan, inputs) = clicks();
    let sweep = rank_sweep(&plan, &inputs, PropertyMode::Manual, 4, 3, 4);
    print!("{}", render_sweep_table("clickstream", &sweep));
    // Where does the implemented flow rank (paper: rank 3, beaten 1.4×)?
    if let Some(r) = sweep.report.rank_of(&plan.canonical()) {
        println!(
            "implemented flow rank: {} of {} (cost ratio to best {:.2})",
            r + 1,
            sweep.space,
            sweep.report.ranked[r].cost / sweep.report.ranked[0].cost
        );
    }
    save("fig7.csv", &render_sweep_csv(&sweep));
}

/// Table 1: number of enumerated orders, manual annotations vs SCA.
fn table1() {
    println!("== Table 1: enumerated orders, manual annotations vs SCA ==");
    let workloads: Vec<(&str, Plan)> = vec![
        ("Clickstream", clicks().0),
        ("TPC-H Q7", q7().0),
        ("TPC-H Q15", q15().0),
        ("Text Mining", tm().0),
    ];
    let mut csv = String::from("task,manual,sca,recovered\n");
    println!(
        "{:<14} {:>8} {:>8} {:>10}",
        "PACT Task", "Manual", "SCA", "Recovered"
    );
    for (name, plan) in workloads {
        let manual = PropTable::build(&plan, PropertyMode::Manual);
        let sca = PropTable::build(&plan, PropertyMode::Sca);
        let m = enumerate_all(&plan, &manual, 100_000).len();
        let s = enumerate_all(&plan, &sca, 100_000).len();
        let pct = 100.0 * s as f64 / m as f64;
        println!("{name:<14} {m:>8} {s:>8} {pct:>9.0}%");
        csv.push_str(&format!("{name},{m},{s},{pct:.0}%\n"));
    }
    println!("(paper: Clickstream 4/3 = 75%, Q7 2518/2518, Q15 4/4, Text Mining 24/24)");
    save("table1.csv", &csv);
}

/// Section 7.3 "Enumeration Time": enumeration < 1654 ms, SCA overhead
/// "virtually zero".
fn timing() {
    println!("== Enumeration & SCA timing (paper: enumeration < 1654 ms) ==");
    let workloads: Vec<(&str, Plan)> = vec![
        ("Clickstream", clicks().0),
        ("TPC-H Q7", q7().0),
        ("TPC-H Q15", q15().0),
        ("Text Mining", tm().0),
    ];
    let mut csv = String::from("task,space,sca_us,enumeration_ms,physical_ms\n");
    println!(
        "{:<14} {:>7} {:>10} {:>16} {:>13}",
        "PACT Task", "Plans", "SCA (µs)", "Enumerate (ms)", "Physical (ms)"
    );
    for (name, plan) in workloads {
        // SCA pass (properties for every operator).
        let t = Instant::now();
        let _props = PropTable::build(&plan, PropertyMode::Sca);
        let sca_us = t.elapsed().as_micros();
        let report = Optimizer::new(PropertyMode::Sca).optimize(&plan);
        println!(
            "{:<14} {:>7} {:>10} {:>16.1} {:>13.1}",
            name,
            report.n_enumerated,
            sca_us,
            report.enumeration.as_secs_f64() * 1e3,
            report.physical.as_secs_f64() * 1e3,
        );
        csv.push_str(&format!(
            "{},{},{},{:.3},{:.3}\n",
            name,
            report.n_enumerated,
            sca_us,
            report.enumeration.as_secs_f64() * 1e3,
            report.physical.as_secs_f64() * 1e3
        ));
    }
    save("timing.csv", &csv);
}

/// Ablation: how much does each ingredient buy? For every workload,
/// execute the plan chosen under four optimizer configurations:
///
/// * `none` — no reordering: the implemented order, best physical plan,
/// * `default` — reordering with uninformative hints (selectivity 1, cpu 1),
/// * `curated` — reordering with the workload's hand-tuned hints (the
///   paper's user/compiler hint path),
/// * `profiled` — reordering with hints measured by the sampling profiler
///   (the paper's "runtime profiling" hint path; Section 9 future work:
///   black-box selectivity estimation).
fn ablation() {
    println!("== Ablation: hint sources and reordering ==");
    let cases: Vec<(&str, Plan, Inputs, PropertyMode)> = vec![
        {
            let (p, i) = q15();
            ("TPC-H Q15", p, i, PropertyMode::Sca)
        },
        {
            let (p, i) = clicks();
            ("Clickstream", p, i, PropertyMode::Manual)
        },
        {
            let (p, i) = tm();
            ("Text Mining", p, i, PropertyMode::Sca)
        },
    ];
    let mut csv = String::from(
        "task,config,cost_rank,runtime_ms
",
    );
    println!(
        "{:<13} {:>9} {:>10} {:>12}",
        "PACT Task", "config", "cost-rank", "runtime"
    );
    for (name, plan, inputs, mode) in cases {
        let opt = Optimizer::new(mode).with_dop(4);
        // Ground-truth ranking under curated hints.
        let truth = opt.optimize(&plan);

        let default_hints = vec![strato_dataflow::CostHints::default(); plan.ctx.ops.len()];
        let profiled_hints =
            strato_exec::profile_hints(&plan, &inputs, 10, 50.0).expect("profiling run");

        let candidates: Vec<(&str, Plan)> = vec![
            ("none", plan.clone()),
            ("default", opt.best(&plan.with_hints(default_hints)).plan),
            ("curated", truth.best().plan.clone()),
            ("profiled", opt.best(&plan.with_hints(profiled_hints)).plan),
        ];
        for (config, chosen) in candidates {
            // Execute the chosen ORDER with physical strategies from the
            // curated model (fair comparison of orders, not of physical
            // estimation).
            let rank = truth.rank_of(&chosen.canonical()).expect("same plan space");
            let phys = &truth.ranked[rank].phys;
            let _ = strato_exec::execute(&truth.ranked[rank].plan, phys, &inputs, 4).unwrap();
            let t = Instant::now();
            let _ = strato_exec::execute(&truth.ranked[rank].plan, phys, &inputs, 4).unwrap();
            let dt = t.elapsed();
            println!(
                "{:<13} {:>9} {:>7}/{:<3} {:>10.1?}",
                name,
                config,
                rank + 1,
                truth.n_enumerated,
                dt
            );
            csv.push_str(&format!(
                "{},{},{},{:.3}
",
                name,
                config,
                rank + 1,
                dt.as_secs_f64() * 1e3
            ));
        }
    }
    save("ablation.csv", &csv);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |k: &str| run_all || args.iter().any(|a| a == k);
    let t0 = Instant::now();
    if want("fig2") {
        fig2();
        println!();
    }
    if want("fig3") {
        fig3();
        println!();
    }
    if want("fig4") {
        fig4();
        println!();
    }
    if want("fig5") {
        fig5();
        println!();
    }
    if want("fig6") {
        fig6();
        println!();
    }
    if want("fig7") {
        fig7();
        println!();
    }
    if want("table1") {
        table1();
        println!();
    }
    if want("timing") {
        timing();
        println!();
    }
    if want("ablation") {
        ablation();
        println!();
    }
    println!("repro finished in {:?}", t0.elapsed());
}
