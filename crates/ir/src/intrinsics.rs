//! Pure intrinsic functions callable from IR.
//!
//! Intrinsics model the "third-party machine-learning or automaton-based
//! components" of the paper's text-mining UDFs (Section 7.2): the optimizer
//! treats them as opaque — an intrinsic call reads its arguments and
//! produces a value, nothing more is assumed. [`Intrinsic::Burn`] performs
//! deterministic busy-work so per-call CPU cost is physically real in
//! benchmarks, not just a hint.

use strato_record::Value;

/// A pure built-in function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `burn(units, seed) -> int`: deterministic CPU busy-work proportional
    /// to `units`; returns a checksum. Simulates an expensive NLP/ML
    /// component.
    Burn,
    /// `str_contains(haystack, needle) -> bool`.
    StrContains,
    /// `str_len(s) -> int`.
    StrLen,
    /// `concat(a, b) -> str` (both stringified).
    Concat,
    /// `hash(v) -> int`: 64-bit FxHash of the value, truncated to i64.
    Hash,
    /// `year(yyyymmdd) -> yyyy` for integer-encoded dates.
    Year,
    /// `to_int(v) -> int` (best effort; null on failure).
    ToInt,
    /// `abort_if(cond) -> 0`: **panics** when `cond` is truthy (a non-zero
    /// int or `true`). Deliberately not total — it models a buggy
    /// third-party component that crashes instead of erroring, which is
    /// exactly the failure the execution engine's worker pool must contain
    /// (a panicking UDF fails the query, not the process).
    AbortIf,
}

impl Intrinsic {
    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Burn | Intrinsic::StrContains | Intrinsic::Concat => 2,
            Intrinsic::StrLen
            | Intrinsic::Hash
            | Intrinsic::Year
            | Intrinsic::ToInt
            | Intrinsic::AbortIf => 1,
        }
    }

    /// Evaluates the intrinsic. Total — never panics, returns `Value::Null`
    /// on domain errors (black-box UDFs must not crash the engine) — with
    /// the sole, deliberate exception of [`Intrinsic::AbortIf`].
    pub fn eval(self, args: &[Value]) -> Value {
        match self {
            Intrinsic::Burn => {
                let units = args[0].as_int().unwrap_or(0).max(0) as u64;
                let seed = args[1].as_int().unwrap_or(1) as u64;
                Value::Int(burn(units, seed) as i64)
            }
            Intrinsic::StrContains => match (args[0].as_str(), args[1].as_str()) {
                (Some(h), Some(n)) => Value::Bool(h.contains(n)),
                _ => Value::Null,
            },
            Intrinsic::StrLen => match args[0].as_str() {
                Some(s) => Value::Int(s.len() as i64),
                None => Value::Null,
            },
            Intrinsic::Concat => {
                let a = stringify(&args[0]);
                let b = stringify(&args[1]);
                Value::str(format!("{a}{b}"))
            }
            Intrinsic::Hash => Value::Int(strato_record::hash::fx_hash(&args[0]) as i64),
            Intrinsic::Year => match args[0].as_int() {
                Some(d) => Value::Int(d / 10_000),
                None => Value::Null,
            },
            Intrinsic::ToInt => match &args[0] {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Int(*f as i64),
                Value::Bool(b) => Value::Int(*b as i64),
                Value::Str(s) => s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
                Value::Null => Value::Null,
            },
            Intrinsic::AbortIf => {
                let truthy = matches!(&args[0], Value::Bool(true))
                    || args[0].as_int().is_some_and(|i| i != 0);
                if truthy {
                    panic!("abort_if tripped on {}", args[0]);
                }
                Value::Int(0)
            }
        }
    }
}

fn stringify(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        Value::Null => String::new(),
        other => format!("{other}"),
    }
}

/// Deterministic busy-work: `units` rounds of a xorshift-like mix.
/// `#[inline(never)]` keeps the optimizer from folding the loop away so
/// benchmark CPU costs stay real.
#[inline(never)]
pub fn burn(units: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    // ~50 mixes per unit makes one unit ≈ a few tens of nanoseconds.
    for _ in 0..units.saturating_mul(50) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Intrinsic::Burn.arity(), 2);
        assert_eq!(Intrinsic::StrLen.arity(), 1);
    }

    #[test]
    fn burn_is_deterministic_and_nonzero() {
        assert_eq!(burn(10, 7), burn(10, 7));
        assert_ne!(burn(10, 7), burn(10, 8));
        assert_eq!(
            Intrinsic::Burn.eval(&[Value::Int(1), Value::Int(7)]),
            Intrinsic::Burn.eval(&[Value::Int(1), Value::Int(7)])
        );
    }

    #[test]
    fn str_contains() {
        assert_eq!(
            Intrinsic::StrContains.eval(&[Value::str("gene BRCA1 found"), Value::str("BRCA1")]),
            Value::Bool(true)
        );
        assert_eq!(
            Intrinsic::StrContains.eval(&[Value::str("x"), Value::str("y")]),
            Value::Bool(false)
        );
        assert_eq!(
            Intrinsic::StrContains.eval(&[Value::Int(1), Value::str("y")]),
            Value::Null
        );
    }

    #[test]
    fn str_len_and_concat() {
        assert_eq!(Intrinsic::StrLen.eval(&[Value::str("abc")]), Value::Int(3));
        assert_eq!(
            Intrinsic::Concat.eval(&[Value::str("a"), Value::Int(3)]),
            Value::str("a3")
        );
    }

    #[test]
    fn year_extraction() {
        assert_eq!(
            Intrinsic::Year.eval(&[Value::Int(19_980_321)]),
            Value::Int(1998)
        );
        assert_eq!(Intrinsic::Year.eval(&[Value::str("x")]), Value::Null);
    }

    #[test]
    fn to_int_conversions() {
        assert_eq!(Intrinsic::ToInt.eval(&[Value::str("42")]), Value::Int(42));
        assert_eq!(Intrinsic::ToInt.eval(&[Value::str("nope")]), Value::Null);
        assert_eq!(Intrinsic::ToInt.eval(&[Value::Float(2.9)]), Value::Int(2));
        assert_eq!(Intrinsic::ToInt.eval(&[Value::Bool(true)]), Value::Int(1));
    }

    #[test]
    fn abort_if_is_quiet_on_falsy_and_panics_on_truthy() {
        assert_eq!(Intrinsic::AbortIf.eval(&[Value::Int(0)]), Value::Int(0));
        assert_eq!(Intrinsic::AbortIf.eval(&[Value::Null]), Value::Int(0));
        assert_eq!(
            Intrinsic::AbortIf.eval(&[Value::Bool(false)]),
            Value::Int(0)
        );
        let caught = std::panic::catch_unwind(|| Intrinsic::AbortIf.eval(&[Value::Int(3)]));
        assert!(caught.is_err(), "truthy argument must panic");
    }

    #[test]
    fn hash_is_stable() {
        let a = Intrinsic::Hash.eval(&[Value::str("k")]);
        let b = Intrinsic::Hash.eval(&[Value::str("k")]);
        assert_eq!(a, b);
        assert!(matches!(a, Value::Int(_)));
    }
}
