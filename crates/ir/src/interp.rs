//! The IR interpreter.
//!
//! UDFs remain black boxes end to end: the engine *runs* the same
//! three-address code the optimizer *analyzes*. The interpreter executes one
//! UDF invocation (one record, pair, group or group pair) against tuples in
//! **global record layout**, translating every local field index through the
//! operator's redirection maps (α, Definition 1 of the paper). That
//! translation is what lets arbitrarily reordered plans run unchanged UDF
//! code.
//!
//! Semantics are *total*: arithmetic on mismatched types yields
//! [`Value::Null`], division by zero yields null, and runaway loops are cut
//! off by a configurable step limit so adversarial IR (e.g. from property
//! tests) cannot hang the engine.

use crate::func::{Function, UdfKind};
use crate::inst::{BinOp, Inst, UnOp};
use strato_record::{Record, Redirection, RowRef, Value};

/// One UDF invocation's input(s).
#[derive(Debug, Clone, Copy)]
pub enum Invocation<'a> {
    /// Map: a single record.
    Record(&'a Record),
    /// Map: a single row of a columnar batch. Field reads go straight
    /// to the column vectors; the row is only materialized if the UDF
    /// copies its input record.
    Row(RowRef<'a>),
    /// Cross/Match: a pair of records.
    Pair(&'a Record, &'a Record),
    /// Reduce: one key group.
    Group(&'a [Record]),
    /// CoGroup: two key groups.
    CoGroup(&'a [Record], &'a [Record]),
}

impl Invocation<'_> {
    /// Record `idx` of input `input`, if present. Columnar rows have no
    /// borrowed `Record`; their access paths short-circuit in
    /// `read_field`/`materialize` before reaching this.
    fn record(&self, input: u8, idx: usize) -> Option<&Record> {
        match (self, input) {
            (Invocation::Record(r), 0) if idx == 0 => Some(r),
            (Invocation::Pair(a, _), 0) if idx == 0 => Some(a),
            (Invocation::Pair(_, b), 1) if idx == 0 => Some(b),
            (Invocation::Group(g), 0) => g.get(idx),
            (Invocation::CoGroup(g, _), 0) => g.get(idx),
            (Invocation::CoGroup(_, h), 1) => h.get(idx),
            _ => None,
        }
    }

    fn group_len(&self, input: u8) -> usize {
        match (self, input) {
            (Invocation::Record(_), 0) => 1,
            (Invocation::Row(_), 0) => 1,
            (Invocation::Pair(..), 0 | 1) => 1,
            (Invocation::Group(g), 0) => g.len(),
            (Invocation::CoGroup(g, _), 0) => g.len(),
            (Invocation::CoGroup(_, h), 1) => h.len(),
            _ => 0,
        }
    }

    /// Whether the invocation shape matches the UDF kind.
    fn matches(&self, kind: UdfKind) -> bool {
        matches!(
            (self, kind),
            (Invocation::Record(_), UdfKind::Map)
                | (Invocation::Row(_), UdfKind::Map)
                | (Invocation::Pair(..), UdfKind::Pair)
                | (Invocation::Group(_), UdfKind::Group)
                | (Invocation::CoGroup(..), UdfKind::CoGroup)
        )
    }
}

/// Runtime binding of a UDF's local field indices to global attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Per input: local field index → global attribute (α of the input
    /// data set).
    pub inputs: Vec<Redirection>,
    /// Local output field index → global attribute (α of the output data
    /// set). Covers the concatenated input schemas plus added fields.
    pub output: Redirection,
    /// Global tuple width, `|A|`.
    pub width: usize,
}

impl Layout {
    /// A "local" identity layout: global attributes coincide with local
    /// indices (input 1, if any, follows input 0). Lets unit tests run UDFs
    /// directly on plain records without binding a data flow.
    pub fn local(f: &Function) -> Layout {
        use strato_record::AttrId;
        let mut next = 0u32;
        let mut inputs = Vec::new();
        for &w in f.input_widths() {
            let map: Vec<AttrId> = (0..w as u32).map(|i| AttrId(next + i)).collect();
            next += w as u32;
            inputs.push(Redirection::new(map));
        }
        let out_w = f.output_width() as u32;
        let output = Redirection::new((0..out_w).map(AttrId).collect());
        Layout {
            inputs,
            output,
            width: out_w as usize,
        }
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The invocation shape does not match the UDF kind.
    ShapeMismatch,
    /// The step budget was exhausted (runaway loop).
    StepLimit(u64),
    /// A local field index had no redirection entry — a binding bug.
    UnmappedField(usize),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::ShapeMismatch => write!(f, "invocation shape does not match UDF kind"),
            InterpError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            InterpError::UnmappedField(n) => write!(f, "local field {n} has no redirection"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics for one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed.
    pub steps: u64,
    /// Records emitted.
    pub emits: u64,
}

/// Value of a record register at runtime.
#[derive(Debug, Clone, Default)]
enum RecSlot {
    #[default]
    Unset,
    /// A (read-only) reference to input record `idx` of input `input`.
    Input { input: u8, idx: usize },
    /// An owned, constructed output record in global layout.
    Built(Record),
}

/// The IR interpreter. Cheap to construct; stateless across invocations.
#[derive(Debug, Clone, Copy)]
pub struct Interp {
    /// Maximum instructions per invocation.
    pub max_steps: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Interp {
            max_steps: 10_000_000,
        }
    }
}

impl Interp {
    /// Creates an interpreter with a custom step budget.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Interp { max_steps }
    }

    /// Runs one invocation, appending emitted records (global-layout tuples)
    /// to `out`.
    pub fn run(
        &self,
        f: &Function,
        inv: Invocation<'_>,
        layout: &Layout,
        out: &mut Vec<Record>,
    ) -> Result<RunStats, InterpError> {
        if !inv.matches(f.kind()) {
            return Err(InterpError::ShapeMismatch);
        }
        let insts = f.insts();
        let mut vals: Vec<Value> = Vec::new();
        let mut recs: Vec<RecSlot> = Vec::new();
        let mut iters: Vec<(u8, usize)> = Vec::new();
        let mut pc = 0usize;
        let mut stats = RunStats::default();

        macro_rules! val {
            ($r:expr) => {
                vals.get($r.0 as usize).cloned().unwrap_or(Value::Null)
            };
        }
        macro_rules! set_val {
            ($r:expr, $v:expr) => {{
                let i = $r.0 as usize;
                if i >= vals.len() {
                    vals.resize(i + 1, Value::Null);
                }
                vals[i] = $v;
            }};
        }
        macro_rules! set_rec {
            ($r:expr, $v:expr) => {{
                let i = $r.0 as usize;
                if i >= recs.len() {
                    recs.resize_with(i + 1, RecSlot::default);
                }
                recs[i] = $v;
            }};
        }

        while pc < insts.len() {
            stats.steps += 1;
            if stats.steps > self.max_steps {
                return Err(InterpError::StepLimit(self.max_steps));
            }
            match &insts[pc] {
                Inst::Const { dst, value } => set_val!(dst, value.clone()),
                Inst::Move { dst, src } => {
                    let v = val!(src);
                    set_val!(dst, v);
                }
                Inst::Bin { dst, op, a, b } => {
                    let v = eval_bin(*op, &val!(a), &val!(b));
                    set_val!(dst, v);
                }
                Inst::Un { dst, op, a } => {
                    let v = eval_un(*op, &val!(a));
                    set_val!(dst, v);
                }
                Inst::Call { dst, f: func, args } => {
                    let argv: Vec<Value> = args.iter().map(|a| val!(a)).collect();
                    set_val!(dst, func.eval(&argv));
                }
                Inst::LoadInput { dst, input } => {
                    set_rec!(
                        dst,
                        RecSlot::Input {
                            input: *input,
                            idx: 0
                        }
                    );
                }
                Inst::GetField { dst, rec, field } => {
                    let slot = recs.get(rec.0 as usize).cloned().unwrap_or_default();
                    let v = self.read_field(&slot, *field, inv, layout)?;
                    set_val!(dst, v);
                }
                Inst::GetFieldDyn { dst, rec, idx } => {
                    let slot = recs.get(rec.0 as usize).cloned().unwrap_or_default();
                    let v = match val!(idx).as_int() {
                        // Out-of-schema dynamic reads yield null (total).
                        Some(n) if n >= 0 => self
                            .read_field(&slot, n as usize, inv, layout)
                            .unwrap_or(Value::Null),
                        _ => Value::Null,
                    };
                    set_val!(dst, v);
                }
                Inst::SetFieldDyn { rec, idx, src } => {
                    if let Some(n) = val!(idx).as_int() {
                        if n >= 0 {
                            if let Some(attr) = layout.output.get(n as usize) {
                                let v = val!(src);
                                if let Some(RecSlot::Built(r)) = recs.get_mut(rec.0 as usize) {
                                    r.set_field(attr.index(), v);
                                }
                            }
                        }
                    }
                }
                Inst::SetField { rec, field, src } => {
                    let attr = layout
                        .output
                        .get(*field)
                        .ok_or(InterpError::UnmappedField(*field))?;
                    let v = val!(src);
                    if let Some(RecSlot::Built(r)) = recs.get_mut(rec.0 as usize) {
                        r.set_field(attr.index(), v);
                    }
                }
                Inst::SetNull { rec, field } => {
                    let attr = layout
                        .output
                        .get(*field)
                        .ok_or(InterpError::UnmappedField(*field))?;
                    if let Some(RecSlot::Built(r)) = recs.get_mut(rec.0 as usize) {
                        r.set_field(attr.index(), Value::Null);
                    }
                }
                Inst::NewRecord { dst } => {
                    set_rec!(dst, RecSlot::Built(Record::nulls(layout.width)));
                }
                Inst::CopyRecord { dst, src } => {
                    let slot = recs.get(src.0 as usize).cloned().unwrap_or_default();
                    let r = self.materialize(&slot, inv, layout);
                    set_rec!(dst, RecSlot::Built(r));
                }
                Inst::ConcatRecords { dst, a, b } => {
                    let sa = recs.get(a.0 as usize).cloned().unwrap_or_default();
                    let sb = recs.get(b.0 as usize).cloned().unwrap_or_default();
                    let mut r = self.materialize(&sa, inv, layout);
                    let rb = self.materialize(&sb, inv, layout);
                    r.merge_absent(&rb);
                    set_rec!(dst, RecSlot::Built(r));
                }
                Inst::Emit { rec } => {
                    if let Some(RecSlot::Built(r)) = recs.get(rec.0 as usize) {
                        out.push(r.clone());
                        stats.emits += 1;
                    }
                }
                Inst::Branch { cond, target } => {
                    if val!(cond).truthy() {
                        pc = target.0 as usize;
                        continue;
                    }
                }
                Inst::Jump { target } => {
                    pc = target.0 as usize;
                    continue;
                }
                Inst::Return => break,
                Inst::IterOpen { dst, input } => {
                    let i = dst.0 as usize;
                    if i >= iters.len() {
                        iters.resize(i + 1, (0, 0));
                    }
                    iters[i] = (*input, 0);
                }
                Inst::IterNext {
                    dst,
                    iter,
                    exhausted,
                } => {
                    let (input, pos) = iters[iter.0 as usize];
                    if pos < inv.group_len(input) {
                        iters[iter.0 as usize].1 += 1;
                        set_rec!(dst, RecSlot::Input { input, idx: pos });
                    } else {
                        pc = exhausted.0 as usize;
                        continue;
                    }
                }
                Inst::GroupCount { dst, input } => {
                    set_val!(dst, Value::Int(inv.group_len(*input) as i64));
                }
            }
            pc += 1;
        }
        Ok(stats)
    }

    /// Reads local `field` of a record slot, translating through α.
    fn read_field(
        &self,
        slot: &RecSlot,
        field: usize,
        inv: Invocation<'_>,
        layout: &Layout,
    ) -> Result<Value, InterpError> {
        match slot {
            RecSlot::Unset => Ok(Value::Null),
            RecSlot::Input { input, idx } => {
                let attr = layout
                    .inputs
                    .get(*input as usize)
                    .and_then(|r| r.get(field))
                    .ok_or(InterpError::UnmappedField(field))?;
                // Columnar row views read the column vector directly —
                // no materialized Record exists to borrow from.
                if let Invocation::Row(view) = inv {
                    return Ok(if *input == 0 && *idx == 0 {
                        view.value(attr.index())
                    } else {
                        Value::Null
                    });
                }
                Ok(inv
                    .record(*input, *idx)
                    .map(|r| r.field(attr.index()).clone())
                    .unwrap_or(Value::Null))
            }
            RecSlot::Built(r) => {
                let attr = layout
                    .output
                    .get(field)
                    .ok_or(InterpError::UnmappedField(field))?;
                Ok(r.field(attr.index()).clone())
            }
        }
    }

    /// Materializes a slot as an owned global-layout tuple.
    fn materialize(&self, slot: &RecSlot, inv: Invocation<'_>, layout: &Layout) -> Record {
        match slot {
            RecSlot::Unset => Record::nulls(layout.width),
            RecSlot::Input { input, idx } => {
                let mut r = if let Invocation::Row(view) = inv {
                    if *input == 0 && *idx == 0 {
                        view.to_record()
                    } else {
                        Record::nulls(layout.width)
                    }
                } else {
                    inv.record(*input, *idx)
                        .cloned()
                        .unwrap_or_else(|| Record::nulls(layout.width))
                };
                // Pad with nulls to global width if the source tuple is
                // narrower (only happens in local-layout unit tests).
                if r.arity() < layout.width {
                    r.set_field(layout.width - 1, Value::Null);
                }
                r
            }
            RecSlot::Built(r) => r.clone(),
        }
    }
}

/// Evaluates a binary operator with total, null-propagating semantics.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Value {
    use BinOp::*;
    match op {
        Eq => return Value::Bool(a == b),
        Ne => return Value::Bool(a != b),
        And => return Value::Bool(a.truthy() && b.truthy()),
        Or => return Value::Bool(a.truthy() || b.truthy()),
        _ => {}
    }
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    match op {
        Lt => return Value::Bool(a < b),
        Le => return Value::Bool(a <= b),
        Gt => return Value::Bool(a > b),
        Ge => return Value::Bool(a >= b),
        Min => return if a <= b { a.clone() } else { b.clone() },
        Max => return if a >= b { a.clone() } else { b.clone() },
        _ => {}
    }
    // Arithmetic.
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            Add => Value::Int(x.wrapping_add(*y)),
            Sub => Value::Int(x.wrapping_sub(*y)),
            Mul => Value::Int(x.wrapping_mul(*y)),
            Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_div(*y))
                }
            }
            Rem => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_rem(*y))
                }
            }
            _ => unreachable!("comparisons handled above"),
        },
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => Value::Float(x / y),
                Rem => Value::Float(x % y),
                _ => unreachable!("comparisons handled above"),
            },
            _ => Value::Null,
        },
    }
}

/// Evaluates a unary operator with total semantics.
pub fn eval_un(op: UnOp, a: &Value) -> Value {
    match op {
        UnOp::Not => Value::Bool(!a.truthy()),
        UnOp::IsNull => Value::Bool(a.is_null()),
        UnOp::Neg => match a {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
            _ => Value::Null,
        },
        UnOp::Abs => match a {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            Value::Float(f) => Value::Float(f.abs()),
            _ => Value::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    fn run_map(f: &Function, rec: Record) -> Vec<Record> {
        let layout = Layout::local(f);
        let mut out = Vec::new();
        Interp::default()
            .run(f, Invocation::Record(&rec), &layout, &mut out)
            .expect("run");
        out
    }

    /// f1 of Section 3: replace field 1 with its absolute value.
    fn paper_f1() -> Function {
        let mut b = FuncBuilder::new("f1", UdfKind::Map, vec![2]);
        let bv = b.get_input(0, 1);
        let or = b.copy_input(0);
        let zero = b.konst(0i64);
        let nonneg = b.bin(BinOp::Ge, bv, zero);
        let done = b.new_label();
        b.branch(nonneg, done);
        let abs = b.un(UnOp::Abs, bv);
        b.set(or, 1, abs);
        b.place(done);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    /// f2 of Section 3: emit records with field 0 ≥ 0.
    fn paper_f2() -> Function {
        let mut b = FuncBuilder::new("f2", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let zero = b.konst(0i64);
        let neg = b.bin(BinOp::Lt, a, zero);
        let end = b.new_label();
        b.branch(neg, end);
        let out = b.copy_input(0);
        b.emit(out);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    /// f3 of Section 3: replace field 0 with field0 + field1.
    fn paper_f3() -> Function {
        let mut b = FuncBuilder::new("f3", UdfKind::Map, vec![2]);
        let a = b.get_input(0, 0);
        let bb = b.get_input(0, 1);
        let sum = b.bin(BinOp::Add, a, bb);
        let or = b.copy_input(0);
        b.set(or, 0, sum);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn rec2(a: i64, b: i64) -> Record {
        Record::from_values([Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn section3_example_record_i() {
        // ⟨2,−3⟩ → f1 → ⟨2,3⟩ → f2 → ⟨2,3⟩ → f3 → ⟨5,3⟩
        let r1 = run_map(&paper_f1(), rec2(2, -3));
        assert_eq!(r1, vec![rec2(2, 3)]);
        let r2 = run_map(&paper_f2(), r1[0].clone());
        assert_eq!(r2, vec![rec2(2, 3)]);
        let r3 = run_map(&paper_f3(), r2[0].clone());
        assert_eq!(r3, vec![rec2(5, 3)]);
    }

    #[test]
    fn section3_example_record_i_prime() {
        // ⟨−2,−3⟩ → f1 → ⟨−2,3⟩ → f2 → ⊥
        let r1 = run_map(&paper_f1(), rec2(-2, -3));
        assert_eq!(r1, vec![rec2(-2, 3)]);
        let r2 = run_map(&paper_f2(), r1[0].clone());
        assert!(r2.is_empty());
    }

    #[test]
    fn group_sum_udf() {
        // Reduce UDF: emit one record with key (field 0) and sum(field 1)
        // appended as field 2.
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![2]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        // Copy the first record of the group for the key fields.
        let it2 = b.iter_open(0);
        let empty = b.new_label();
        let first = b.iter_next(it2, empty);
        let or = b.copy(first);
        b.set(or, 2, sum);
        b.emit(or);
        b.place(empty);
        b.ret();
        let f = b.finish().unwrap();

        let group = vec![rec2(1, 10), rec2(1, 20), rec2(1, 5)];
        let layout = Layout::local(&f);
        let mut out = Vec::new();
        let stats = Interp::default()
            .run(&f, Invocation::Group(&group), &layout, &mut out)
            .unwrap();
        assert_eq!(stats.emits, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].field(2), &Value::Int(35));
        assert_eq!(out[0].field(0), &Value::Int(1));
    }

    #[test]
    fn pair_concat_udf() {
        // Match-style UDF: concatenate both records.
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![2, 2]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        let f = b.finish().unwrap();
        let layout = Layout::local(&f);
        // Global layout: input0 = attrs 0,1; input1 = attrs 2,3.
        let left = Record::from_values([Value::Int(1), Value::Int(2), Value::Null, Value::Null]);
        let right = Record::from_values([Value::Null, Value::Null, Value::Int(3), Value::Int(4)]);
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Pair(&left, &right), &layout, &mut out)
            .unwrap();
        assert_eq!(
            out,
            vec![Record::from_values([
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
            ])]
        );
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = FuncBuilder::new("loop", UdfKind::Map, vec![1]);
        let head = b.new_label();
        b.place(head);
        b.jump(head);
        let f = b.finish().unwrap();
        let layout = Layout::local(&f);
        let r = Record::from_values([Value::Int(1)]);
        let mut out = Vec::new();
        let err = Interp::with_max_steps(1000)
            .run(&f, Invocation::Record(&r), &layout, &mut out)
            .unwrap_err();
        assert_eq!(err, InterpError::StepLimit(1000));
    }

    #[test]
    fn shape_mismatch_detected() {
        let f = paper_f1();
        let layout = Layout::local(&f);
        let g = vec![rec2(1, 2)];
        let mut out = Vec::new();
        let err = Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap_err();
        assert_eq!(err, InterpError::ShapeMismatch);
    }

    #[test]
    fn eval_bin_totality() {
        use BinOp::*;
        assert_eq!(eval_bin(Add, &Value::Int(1), &Value::Int(2)), Value::Int(3));
        assert_eq!(eval_bin(Div, &Value::Int(1), &Value::Int(0)), Value::Null);
        assert_eq!(eval_bin(Rem, &Value::Int(1), &Value::Int(0)), Value::Null);
        assert_eq!(eval_bin(Add, &Value::Null, &Value::Int(2)), Value::Null);
        assert_eq!(
            eval_bin(Add, &Value::Int(1), &Value::Float(0.5)),
            Value::Float(1.5)
        );
        assert_eq!(eval_bin(Add, &Value::str("a"), &Value::Int(1)), Value::Null);
        assert_eq!(eval_bin(Eq, &Value::Null, &Value::Null), Value::Bool(true));
        assert_eq!(eval_bin(Lt, &Value::Null, &Value::Int(1)), Value::Null);
        assert_eq!(eval_bin(Min, &Value::Int(3), &Value::Int(1)), Value::Int(1));
        assert_eq!(eval_bin(Max, &Value::Int(3), &Value::Int(1)), Value::Int(3));
        assert_eq!(
            eval_bin(And, &Value::Int(1), &Value::Int(0)),
            Value::Bool(false)
        );
        assert_eq!(
            eval_bin(Or, &Value::Null, &Value::Int(2)),
            Value::Bool(true)
        );
        // Overflow wraps rather than panicking.
        assert_eq!(
            eval_bin(Add, &Value::Int(i64::MAX), &Value::Int(1)),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn eval_un_totality() {
        assert_eq!(eval_un(UnOp::Neg, &Value::Int(3)), Value::Int(-3));
        assert_eq!(eval_un(UnOp::Neg, &Value::str("x")), Value::Null);
        assert_eq!(eval_un(UnOp::Abs, &Value::Int(-3)), Value::Int(3));
        assert_eq!(eval_un(UnOp::Abs, &Value::Float(-1.5)), Value::Float(1.5));
        assert_eq!(eval_un(UnOp::Not, &Value::Null), Value::Bool(true));
        assert_eq!(eval_un(UnOp::IsNull, &Value::Null), Value::Bool(true));
        assert_eq!(eval_un(UnOp::IsNull, &Value::Int(0)), Value::Bool(false));
        assert_eq!(
            eval_un(UnOp::Neg, &Value::Int(i64::MIN)),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn group_count_instruction() {
        let mut b = FuncBuilder::new("count", UdfKind::Group, vec![1]);
        let n = b.group_count(0);
        let or = b.new_rec();
        b.set(or, 1, n);
        b.emit(or);
        b.ret();
        let f = b.finish().unwrap();
        let layout = Layout::local(&f);
        let g = vec![
            Record::from_values([Value::Int(1)]),
            Record::from_values([Value::Int(1)]),
        ];
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap();
        assert_eq!(out[0].field(1), &Value::Int(2));
    }

    #[test]
    fn reopened_iterator_rescans_group() {
        // Count the group twice via two iterators.
        let mut b = FuncBuilder::new("twice", UdfKind::Group, vec![1]);
        let count = b.konst(0i64);
        let one = b.konst(1i64);
        for _ in 0..2 {
            let it = b.iter_open(0);
            let done = b.new_label();
            let head = b.new_label();
            b.place(head);
            let _r = b.iter_next(it, done);
            b.bin_into(count, BinOp::Add, count, one);
            b.jump(head);
            b.place(done);
        }
        let or = b.new_rec();
        b.set(or, 1, count);
        b.emit(or);
        b.ret();
        let f = b.finish().unwrap();
        let layout = Layout::local(&f);
        let g = vec![
            Record::from_values([Value::Int(1)]),
            Record::from_values([Value::Int(2)]),
            Record::from_values([Value::Int(3)]),
        ];
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap();
        assert_eq!(out[0].field(1), &Value::Int(6));
    }
}
