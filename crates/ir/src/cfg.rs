//! Control-flow graph over IR instructions.
//!
//! The SCA framework of the paper assumes "a control flow graph and two data
//! structures obtained by a data flow analysis" (Section 5). This module
//! provides the CFG at instruction granularity: successor/predecessor edges,
//! reachability from entry, and cycle membership (needed by the emit-
//! cardinality analysis: an `emit` on a cycle has unbounded maximum).

use crate::func::Function;
use crate::inst::Inst;

/// Instruction-granularity control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor edges per instruction. The `bool` marks the *exhausted*
    /// edge of an `IterNext` (on which its destination register is NOT
    /// defined).
    succs: Vec<Vec<(usize, bool)>>,
    preds: Vec<Vec<usize>>,
    reachable: Vec<bool>,
    in_cycle: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of a function body.
    pub fn build(f: &Function) -> Cfg {
        let insts = f.insts();
        let n = insts.len();
        let mut succs: Vec<Vec<(usize, bool)>> = vec![vec![]; n];
        for (i, inst) in insts.iter().enumerate() {
            match inst {
                Inst::Jump { target } => succs[i].push((target.0 as usize, false)),
                Inst::Return => {}
                Inst::Branch { target, .. } => {
                    succs[i].push((target.0 as usize, false));
                    if i + 1 < n {
                        succs[i].push((i + 1, false));
                    }
                }
                Inst::IterNext { exhausted, .. } => {
                    succs[i].push((exhausted.0 as usize, true));
                    if i + 1 < n {
                        succs[i].push((i + 1, false));
                    }
                }
                _ => {
                    if i + 1 < n {
                        succs[i].push((i + 1, false));
                    }
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![vec![]; n];
        for (i, ss) in succs.iter().enumerate() {
            for &(s, _) in ss {
                preds[s].push(i);
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            for &(s, _) in &succs[i] {
                if !reachable[s] {
                    stack.push(s);
                }
            }
        }
        let in_cycle = Self::cycles(&succs, &reachable);
        Cfg {
            succs,
            preds,
            reachable,
            in_cycle,
        }
    }

    /// Marks instructions lying on a cycle, via Tarjan SCCs: an instruction
    /// is cyclic iff its SCC has size > 1 or it has a self-edge.
    fn cycles(succs: &[Vec<(usize, bool)>], reachable: &[bool]) -> Vec<bool> {
        let n = succs.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut in_cycle = vec![false; n];
        let mut counter = 0usize;

        // Iterative Tarjan to avoid recursion depth issues.
        enum Frame {
            Enter(usize),
            Post(usize, usize),
        }
        for start in 0..n {
            if !reachable[start] || index[start] != usize::MAX {
                continue;
            }
            let mut call = vec![Frame::Enter(start)];
            while let Some(frame) = call.pop() {
                match frame {
                    Frame::Enter(v) => {
                        if index[v] != usize::MAX {
                            continue;
                        }
                        index[v] = counter;
                        low[v] = counter;
                        counter += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push(Frame::Post(v, usize::MAX));
                        for &(w, _) in &succs[v] {
                            if index[w] == usize::MAX {
                                call.push(Frame::Post(v, w));
                                call.push(Frame::Enter(w));
                            } else if on_stack[w] {
                                low[v] = low[v].min(index[w]);
                            }
                        }
                    }
                    Frame::Post(v, w) => {
                        if w != usize::MAX {
                            low[v] = low[v].min(low[w]);
                            continue;
                        }
                        if low[v] == index[v] {
                            // Root of an SCC: pop it.
                            let mut comp = Vec::new();
                            while let Some(x) = stack.pop() {
                                on_stack[x] = false;
                                comp.push(x);
                                if x == v {
                                    break;
                                }
                            }
                            let cyclic = comp.len() > 1 || succs[v].iter().any(|&(s, _)| s == v);
                            if cyclic {
                                for x in comp {
                                    in_cycle[x] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        in_cycle
    }

    /// Successor instruction indices of `i` (edge kind dropped).
    pub fn succs(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[i].iter().map(|&(s, _)| s)
    }

    /// Successor edges of `i`; the flag marks the exhausted edge of an
    /// `IterNext`.
    pub fn succ_edges(&self, i: usize) -> &[(usize, bool)] {
        &self.succs[i]
    }

    /// Predecessors of instruction `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// `true` iff instruction `i` is reachable from entry.
    pub fn reachable(&self, i: usize) -> bool {
        self.reachable[i]
    }

    /// `true` iff instruction `i` lies on a control-flow cycle.
    pub fn in_cycle(&self, i: usize) -> bool {
        self.in_cycle[i]
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// `true` when the CFG covers no instructions (cannot occur for
    /// verified functions, which have non-empty bodies).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::UdfKind;
    use crate::inst::{Inst, IterReg, Label, RReg, VReg};
    use strato_record::Value;

    fn f(kind: UdfKind, widths: Vec<usize>, insts: Vec<Inst>) -> Function {
        Function::new("t", kind, widths, 0, insts).expect("verify")
    }

    #[test]
    fn straight_line_edges() {
        let func = f(
            UdfKind::Map,
            vec![1],
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(1),
                },
                Inst::Return,
            ],
        );
        let cfg = Cfg::build(&func);
        assert_eq!(cfg.succs(0).collect::<Vec<_>>(), vec![1]);
        assert!(cfg.succs(1).next().is_none());
        assert_eq!(cfg.preds(1), &[0]);
        assert!(cfg.reachable(0) && cfg.reachable(1));
        assert!(!cfg.in_cycle(0) && !cfg.in_cycle(1));
        assert_eq!(cfg.len(), 2);
        assert!(!cfg.is_empty());
    }

    #[test]
    fn branch_has_two_successors() {
        let func = f(
            UdfKind::Map,
            vec![1],
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Bool(true),
                },
                Inst::Branch {
                    cond: VReg(0),
                    target: Label(3),
                },
                Inst::Return,
                Inst::Return,
            ],
        );
        let cfg = Cfg::build(&func);
        let mut ss: Vec<usize> = cfg.succs(1).collect();
        ss.sort_unstable();
        assert_eq!(ss, vec![2, 3]);
    }

    #[test]
    fn loop_detected_as_cycle() {
        let func = f(
            UdfKind::Group,
            vec![1],
            vec![
                Inst::IterOpen {
                    dst: IterReg(0),
                    input: 0,
                },
                Inst::IterNext {
                    dst: RReg(0),
                    iter: IterReg(0),
                    exhausted: Label(3),
                },
                Inst::Jump { target: Label(1) },
                Inst::Return,
            ],
        );
        let cfg = Cfg::build(&func);
        assert!(!cfg.in_cycle(0));
        assert!(cfg.in_cycle(1));
        assert!(cfg.in_cycle(2));
        assert!(!cfg.in_cycle(3));
        // Exhausted edge flagged.
        let edges = cfg.succ_edges(1);
        assert!(edges.contains(&(3, true)));
        assert!(edges.contains(&(2, false)));
    }

    #[test]
    fn unreachable_code_detected() {
        let func = f(
            UdfKind::Map,
            vec![1],
            vec![
                Inst::Jump { target: Label(2) },
                Inst::Return, // unreachable
                Inst::Return,
            ],
        );
        let cfg = Cfg::build(&func);
        assert!(cfg.reachable(0));
        assert!(!cfg.reachable(1));
        assert!(cfg.reachable(2));
    }

    #[test]
    fn self_loop_is_cycle() {
        let func = Function::new(
            "t",
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Bool(true),
                },
                Inst::Branch {
                    cond: VReg(0),
                    target: Label(1),
                },
                Inst::Return,
            ],
        )
        .unwrap();
        let cfg = Cfg::build(&func);
        assert!(cfg.in_cycle(1));
        assert!(!cfg.in_cycle(0));
    }
}
