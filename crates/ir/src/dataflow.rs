//! Classic dataflow analyses: reaching definitions and the `USE-DEF` /
//! `DEF-USE` chains the paper's SCA algorithm consumes (Section 5).
//!
//! Every IR instruction defines at most one register, so a *definition site*
//! is simply an instruction index and reaching-definition sets are bitsets
//! over instruction indices. The analysis is edge-sensitive for `IterNext`:
//! the destination record's definition does not flow along the exhausted
//! edge.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::inst::{Inst, Reg};

/// A bitset over instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(n: usize) -> Self {
        Bits {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }
    /// `self |= other`; returns `true` when `self` changed.
    fn union_in(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Reaching definitions, with `USE-DEF` and `DEF-USE` chain queries.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// `in[i]`: definition sites reaching instruction `i`.
    ins: Vec<Bits>,
    /// The register defined by each instruction (if any).
    def_reg: Vec<Option<Reg>>,
    /// Registers used by each instruction.
    use_regs: Vec<Vec<Reg>>,
    /// `use_def[(i, reg)]` materialized lazily per query.
    n: usize,
}

impl ReachingDefs {
    /// Runs the analysis over a function.
    pub fn compute(f: &Function, cfg: &Cfg) -> ReachingDefs {
        let insts = f.insts();
        let n = insts.len();
        let def_reg: Vec<Option<Reg>> = insts.iter().map(|i| i.defs().first().copied()).collect();
        let use_regs: Vec<Vec<Reg>> = insts.iter().map(|i| i.uses()).collect();

        // kill[i] = other definition sites of the same register.
        let mut sites_of: std::collections::HashMap<Reg, Vec<usize>> = Default::default();
        for (i, d) in def_reg.iter().enumerate() {
            if let Some(r) = d {
                sites_of.entry(*r).or_default().push(i);
            }
        }

        let mut ins: Vec<Bits> = (0..n).map(|_| Bits::new(n)).collect();
        let mut work: Vec<usize> = (0..n).filter(|&i| cfg.reachable(i)).collect();
        while let Some(i) = work.pop() {
            // out[i] = gen[i] ∪ (in[i] \ kill[i]), computed on the fly.
            let mut out = ins[i].clone();
            if let Some(r) = def_reg[i] {
                for &s in &sites_of[&r] {
                    out.clear(s);
                }
                out.set(i);
            }
            for &(succ, exhausted) in cfg.succ_edges(i) {
                let changed = if exhausted && matches!(insts[i], Inst::IterNext { .. }) {
                    // dst is NOT defined along the exhausted edge.
                    let mut edge_out = out.clone();
                    edge_out.clear(i);
                    // The killed prior defs stay killed only if the def
                    // actually happened; on the exhausted edge it did not,
                    // so prior defs of dst still reach. Re-add them.
                    if let Some(r) = def_reg[i] {
                        for &s in &sites_of[&r] {
                            if s != i && ins[i].get(s) {
                                edge_out.set(s);
                            }
                        }
                    }
                    ins[succ].union_in(&edge_out)
                } else {
                    ins[succ].union_in(&out)
                };
                if changed {
                    work.push(succ);
                }
            }
        }
        ReachingDefs {
            ins,
            def_reg,
            use_regs,
            n,
        }
    }

    /// `USE-DEF(l, reg)`: all definition sites of `reg` that reach
    /// instruction `l`.
    pub fn use_def(&self, l: usize, reg: Reg) -> Vec<usize> {
        self.ins[l]
            .iter()
            .filter(|&d| self.def_reg[d] == Some(reg))
            .collect()
    }

    /// `DEF-USE(l)`: all instructions that use the register defined at `l`
    /// and are reached by that definition.
    pub fn def_use(&self, l: usize) -> Vec<usize> {
        let Some(reg) = self.def_reg[l] else {
            return vec![];
        };
        (0..self.n)
            .filter(|&s| self.ins[s].get(l) && self.use_regs[s].contains(&reg))
            .collect()
    }

    /// The register defined by instruction `l`, if any.
    pub fn def_of(&self, l: usize) -> Option<Reg> {
        self.def_reg[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::UdfKind;
    use crate::inst::{BinOp, Inst, Label, RReg, VReg};
    use strato_record::Value;

    fn analyze(f: &Function) -> (ReachingDefs, Cfg) {
        let cfg = Cfg::build(f);
        (ReachingDefs::compute(f, &cfg), cfg)
    }

    #[test]
    fn straight_line_chains() {
        // 0: $t0 := 1
        // 1: $t1 := $t0 + $t0
        // 2: return
        let f = Function::new(
            "t",
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(1),
                },
                Inst::Bin {
                    dst: VReg(1),
                    op: BinOp::Add,
                    a: VReg(0),
                    b: VReg(0),
                },
                Inst::Return,
            ],
        )
        .unwrap();
        let (rd, _) = analyze(&f);
        assert_eq!(rd.use_def(1, Reg::Val(VReg(0))), vec![0]);
        assert_eq!(rd.def_use(0), vec![1]);
        assert_eq!(rd.def_use(1), Vec::<usize>::new());
        assert_eq!(rd.def_of(0), Some(Reg::Val(VReg(0))));
        assert_eq!(rd.def_of(2), None);
    }

    #[test]
    fn redefinition_kills_previous() {
        // 0: $t0 := 1
        // 1: $t0 := 2
        // 2: $t1 := $t0 + $t0   -- only def 1 reaches
        // 3: return
        let f = Function::new(
            "t",
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(1),
                },
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(2),
                },
                Inst::Bin {
                    dst: VReg(1),
                    op: BinOp::Add,
                    a: VReg(0),
                    b: VReg(0),
                },
                Inst::Return,
            ],
        )
        .unwrap();
        let (rd, _) = analyze(&f);
        assert_eq!(rd.use_def(2, Reg::Val(VReg(0))), vec![1]);
        assert_eq!(rd.def_use(0), Vec::<usize>::new());
        assert_eq!(rd.def_use(1), vec![2]);
    }

    #[test]
    fn both_branch_defs_reach_merge() {
        // 0: $t0 := true
        // 1: if ($t0) goto 4
        // 2: $t1 := 10
        // 3: goto 5
        // 4: $t1 := 20
        // 5: $t2 := $t1 + $t1
        // 6: return
        let f = Function::new(
            "t",
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Bool(true),
                },
                Inst::Branch {
                    cond: VReg(0),
                    target: Label(4),
                },
                Inst::Const {
                    dst: VReg(1),
                    value: Value::Int(10),
                },
                Inst::Jump { target: Label(5) },
                Inst::Const {
                    dst: VReg(1),
                    value: Value::Int(20),
                },
                Inst::Bin {
                    dst: VReg(2),
                    op: BinOp::Add,
                    a: VReg(1),
                    b: VReg(1),
                },
                Inst::Return,
            ],
        )
        .unwrap();
        let (rd, _) = analyze(&f);
        let mut defs = rd.use_def(5, Reg::Val(VReg(1)));
        defs.sort_unstable();
        assert_eq!(defs, vec![2, 4]);
    }

    #[test]
    fn iter_next_def_does_not_flow_on_exhausted_edge() {
        // 0: $it0 := iterator(input[0])
        // 1: $r0 := next($it0) else goto 4
        // 2: $t0 := getField($r0, 0)
        // 3: goto 1
        // 4: return
        let f = Function::new(
            "t",
            UdfKind::Group,
            vec![1],
            0,
            vec![
                Inst::IterOpen {
                    dst: crate::inst::IterReg(0),
                    input: 0,
                },
                Inst::IterNext {
                    dst: RReg(0),
                    iter: crate::inst::IterReg(0),
                    exhausted: Label(4),
                },
                Inst::GetField {
                    dst: VReg(0),
                    rec: RReg(0),
                    field: 0,
                },
                Inst::Jump { target: Label(1) },
                Inst::Return,
            ],
        )
        .unwrap();
        let (rd, _) = analyze(&f);
        // At the loop body the def reaches…
        assert_eq!(rd.use_def(2, Reg::Rec(RReg(0))), vec![1]);
        // …but at the exhausted target it must not.
        assert_eq!(rd.use_def(4, Reg::Rec(RReg(0))), Vec::<usize>::new());
    }

    #[test]
    fn def_use_sees_loop_back_uses() {
        // A value defined before a loop and used inside it.
        // 0: $t0 := 0
        // 1: $t1 := $t0 + $t0   (loop head)
        // 2: if ($t1) goto 1
        // 3: return
        let f = Function::new(
            "t",
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(0),
                },
                Inst::Bin {
                    dst: VReg(1),
                    op: BinOp::Add,
                    a: VReg(0),
                    b: VReg(0),
                },
                Inst::Branch {
                    cond: VReg(1),
                    target: Label(1),
                },
                Inst::Return,
            ],
        )
        .unwrap();
        let (rd, _) = analyze(&f);
        assert_eq!(rd.def_use(0), vec![1]);
        assert_eq!(rd.def_use(1), vec![2]);
    }
}
