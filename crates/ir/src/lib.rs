//! # strato-ir — three-address-code IR for user-defined functions
//!
//! The paper analyzes UDFs given as **typed three-address code** with a
//! record API (`getField`, `setField`, copy/default/concat constructors,
//! `emit`; Section 5). The original implementation obtained 3AC from Java
//! bytecode through the Soot framework; this crate *is* that abstraction
//! implemented natively: a small register IR with
//!
//! * value registers (`$t…`), record registers (`$r…`) and group iterators,
//! * the record API as first-class instructions,
//! * conditional branches, jumps and intrinsic calls,
//! * a [builder](builder::FuncBuilder) for programmatic construction,
//! * a [verifier](func::Function::verify) enforcing the static discipline the
//!   paper assumes (definite assignment, read-only inputs, constructed
//!   output records),
//! * a [control-flow graph](cfg::Cfg) plus classic dataflow analyses
//!   (reaching definitions, `USE-DEF`/`DEF-USE` chains) used by the static
//!   code analysis crate,
//! * an [interpreter](interp::Interp) so the *same* IR that the optimizer
//!   analyzes is what the execution engine runs — UDFs stay black boxes
//!   end to end.
//!
//! UDF field accesses use **local** field indices; at execution time the
//! interpreter translates them through redirection maps (α, Definition 1 of
//! the paper) into global-record positions, which is what makes reordered
//! plans run the unchanged UDF code.

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod dataflow;
pub mod func;
pub mod inst;
pub mod interp;
pub mod intrinsics;

pub use builder::FuncBuilder;
pub use cfg::Cfg;
pub use func::{Function, UdfKind, VerifyError};
pub use inst::{BinOp, Inst, IterReg, Label, RReg, Reg, UnOp, VReg};
pub use interp::{Interp, InterpError, Invocation};
pub use intrinsics::Intrinsic;
