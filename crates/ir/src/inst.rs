//! Instruction set of the three-address-code IR.

use crate::intrinsics::Intrinsic;
use std::fmt;
use strato_record::Value;

/// A value register (`$t0`, `$t1`, …) holding a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u16);

/// A record register (`$r0`, `$r1`, …) holding a record reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RReg(pub u16);

/// A group-iterator register (`$it0`, …), valid only in key-at-a-time UDFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IterReg(pub u16);

/// A branch target: the index of an instruction in the function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

/// A register of any namespace — the unit of dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Value register.
    Val(VReg),
    /// Record register.
    Rec(RReg),
    /// Iterator register.
    Iter(IterReg),
}

/// Binary operators on values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Min,
    Max,
}

impl BinOp {
    /// `true` for operators that are associative **and** commutative over
    /// the dynamic [`Value`] domain under the interpreter's total
    /// semantics ([`crate::interp::eval_bin`]): integer arithmetic wraps,
    /// `Min`/`Max` use the total value ordering, `And`/`Or` fold
    /// truthiness, and `Null` is absorbing for arithmetic. These are the
    /// operators a fold may be re-associated over — the algebraic fact the
    /// combiner analysis (the `combine` module of `strato-sca`) relies on
    /// when it proves a reduce UDF decomposable.
    ///
    /// Caveat: `Add`/`Mul` over *float* values re-associate only
    /// approximately (IEEE rounding); exactly over integers, booleans,
    /// strings and nulls.
    pub fn is_assoc_comm(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or
        )
    }
}

/// Unary operators on values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    IsNull,
}

/// One three-address-code instruction.
///
/// The record API mirrors Section 5 of the paper:
///
/// * [`Inst::LoadInput`] binds the UDF's parameter record (`$ir`),
/// * [`Inst::GetField`] is `$t := getField($r, n)`,
/// * [`Inst::NewRecord`] is the default constructor (**implicit
///   projection**),
/// * [`Inst::CopyRecord`] is the copy constructor (**implicit copy**),
/// * [`Inst::ConcatRecords`] is the binary constructor concatenating two
///   input records (implicit copy of both sides),
/// * [`Inst::SetField`] is `setField($r, n, $t)` (explicit modification,
///   copy, or add, depending on where `$t` comes from),
/// * [`Inst::SetNull`] is `setField($r, n, null)` (**explicit projection**),
/// * [`Inst::Emit`] emits an output record.
///
/// Key-at-a-time UDFs (Reduce, CoGroup) receive record *lists*; they iterate
/// via [`Inst::IterOpen`] / [`Inst::IterNext`].
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `$t := const`
    Const {
        /// Destination.
        dst: VReg,
        /// The constant.
        value: Value,
    },
    /// `$t := $s` — plain assignment (used for loop-carried accumulators).
    Move {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// `$t := $a <op> $b`
    Bin {
        /// Destination.
        dst: VReg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `$t := <op> $a`
    Un {
        /// Destination.
        dst: VReg,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: VReg,
    },
    /// `$t := intrinsic(args…)` — a call into a pure built-in function.
    Call {
        /// Destination.
        dst: VReg,
        /// The intrinsic.
        f: Intrinsic,
        /// Arguments.
        args: Vec<VReg>,
    },
    /// `$r := input[i]` — binds the `i`-th input record (RAT UDFs only).
    LoadInput {
        /// Destination record register.
        dst: RReg,
        /// Input index (0 or 1).
        input: u8,
    },
    /// `$t := getField($r, n)`
    GetField {
        /// Destination.
        dst: VReg,
        /// Source record.
        rec: RReg,
        /// Local field index.
        field: usize,
    },
    /// `$t := getField($r, $i)` — **dynamic** field access: the index is a
    /// runtime value. The paper's SCA handles only accesses "with literals
    /// and final variables"; dynamic accesses force the analysis to assume
    /// the whole input schema is read.
    GetFieldDyn {
        /// Destination.
        dst: VReg,
        /// Source record.
        rec: RReg,
        /// Register holding the field index.
        idx: VReg,
    },
    /// `setField($r, $i, $t)` — dynamic field write; the analysis must
    /// assume every output field may change.
    SetFieldDyn {
        /// Target record (must be a constructed output record).
        rec: RReg,
        /// Register holding the field index.
        idx: VReg,
        /// Value source.
        src: VReg,
    },
    /// `setField($r, n, $t)`
    SetField {
        /// Target record (must be a constructed output record).
        rec: RReg,
        /// Local field index.
        field: usize,
        /// Value source.
        src: VReg,
    },
    /// `setField($r, n, null)` — explicit projection.
    SetNull {
        /// Target record.
        rec: RReg,
        /// Local field index.
        field: usize,
    },
    /// `$r := new OutputRecord()` — implicit projection.
    NewRecord {
        /// Destination record register.
        dst: RReg,
    },
    /// `$r := new OutputRecord($src)` — implicit copy.
    CopyRecord {
        /// Destination record register.
        dst: RReg,
        /// Record to copy.
        src: RReg,
    },
    /// `$r := new OutputRecord($a, $b)` — concatenation constructor;
    /// implicit copy of both inputs (used by binary UDFs).
    ConcatRecords {
        /// Destination record register.
        dst: RReg,
        /// Left record.
        a: RReg,
        /// Right record.
        b: RReg,
    },
    /// `emit($r)` — appends a record to the UDF output.
    Emit {
        /// Record to emit.
        rec: RReg,
    },
    /// `if ($t) goto L` — branches when the value is truthy.
    Branch {
        /// Condition.
        cond: VReg,
        /// Target instruction index.
        target: Label,
    },
    /// `goto L`
    Jump {
        /// Target instruction index.
        target: Label,
    },
    /// `return`
    Return,
    /// `$it := iterator(input[i])` — opens a fresh iterator over a group
    /// (KAT UDFs only). May be re-opened to scan a group multiple times.
    IterOpen {
        /// Destination iterator register.
        dst: IterReg,
        /// Input index (0 or 1).
        input: u8,
    },
    /// `$r := next($it) else goto L` — loads the next record of the group
    /// or, when exhausted, jumps to `L` without defining `$r`.
    IterNext {
        /// Destination record register (defined only on the fall-through
        /// edge).
        dst: RReg,
        /// Iterator to advance.
        iter: IterReg,
        /// Where to go when the group is exhausted.
        exhausted: Label,
    },
    /// `$t := groupSize(input[i])` — number of records in a group (KAT UDFs
    /// only).
    GroupCount {
        /// Destination.
        dst: VReg,
        /// Input index.
        input: u8,
    },
}

impl Inst {
    /// Registers defined (written) by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Call { dst, .. }
            | Inst::GetField { dst, .. }
            | Inst::GetFieldDyn { dst, .. }
            | Inst::GroupCount { dst, .. } => vec![Reg::Val(*dst)],
            Inst::LoadInput { dst, .. }
            | Inst::NewRecord { dst }
            | Inst::CopyRecord { dst, .. }
            | Inst::ConcatRecords { dst, .. }
            | Inst::IterNext { dst, .. } => vec![Reg::Rec(*dst)],
            Inst::IterOpen { dst, .. } => vec![Reg::Iter(*dst)],
            // SetField/SetNull mutate a record in place: model as def+use so
            // reaching-definition chains see the state change.
            Inst::SetField { rec, .. }
            | Inst::SetFieldDyn { rec, .. }
            | Inst::SetNull { rec, .. } => vec![Reg::Rec(*rec)],
            _ => vec![],
        }
    }

    /// Registers used (read) by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Inst::Move { src, .. } => vec![Reg::Val(*src)],
            Inst::Bin { a, b, .. } => vec![Reg::Val(*a), Reg::Val(*b)],
            Inst::Un { a, .. } => vec![Reg::Val(*a)],
            Inst::Call { args, .. } => args.iter().map(|a| Reg::Val(*a)).collect(),
            Inst::GetField { rec, .. } => vec![Reg::Rec(*rec)],
            Inst::GetFieldDyn { rec, idx, .. } => vec![Reg::Rec(*rec), Reg::Val(*idx)],
            Inst::SetFieldDyn { rec, idx, src } => {
                vec![Reg::Rec(*rec), Reg::Val(*idx), Reg::Val(*src)]
            }
            Inst::SetField { rec, src, .. } => vec![Reg::Rec(*rec), Reg::Val(*src)],
            Inst::SetNull { rec, .. } => vec![Reg::Rec(*rec)],
            Inst::CopyRecord { src, .. } => vec![Reg::Rec(*src)],
            Inst::ConcatRecords { a, b, .. } => vec![Reg::Rec(*a), Reg::Rec(*b)],
            Inst::Emit { rec } => vec![Reg::Rec(*rec)],
            Inst::Branch { cond, .. } => vec![Reg::Val(*cond)],
            Inst::IterNext { iter, .. } => vec![Reg::Iter(*iter)],
            _ => vec![],
        }
    }

    /// `true` for instructions that terminate or divert control flow.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jump { .. } | Inst::Return | Inst::Branch { .. } | Inst::IterNext { .. }
        )
    }

    /// Branch targets, if any.
    pub fn targets(&self) -> Vec<Label> {
        match self {
            Inst::Branch { target, .. } | Inst::Jump { target } => vec![*target],
            Inst::IterNext { exhausted, .. } => vec![*exhausted],
            _ => vec![],
        }
    }

    /// `true` when control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Inst::Jump { .. } | Inst::Return)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$t{}", self.0)
    }
}

impl fmt::Display for RReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

impl fmt::Display for IterReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$it{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} := {value}"),
            Inst::Move { dst, src } => write!(f, "{dst} := {src}"),
            Inst::Bin { dst, op, a, b } => write!(f, "{dst} := {a} {op:?} {b}"),
            Inst::Un { dst, op, a } => write!(f, "{dst} := {op:?} {a}"),
            Inst::Call { dst, f: func, args } => {
                write!(f, "{dst} := {func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::LoadInput { dst, input } => write!(f, "{dst} := input[{input}]"),
            Inst::GetField { dst, rec, field } => write!(f, "{dst} := getField({rec}, {field})"),
            Inst::SetField { rec, field, src } => write!(f, "setField({rec}, {field}, {src})"),
            Inst::GetFieldDyn { dst, rec, idx } => write!(f, "{dst} := getField({rec}, {idx})"),
            Inst::SetFieldDyn { rec, idx, src } => write!(f, "setField({rec}, {idx}, {src})"),
            Inst::SetNull { rec, field } => write!(f, "setField({rec}, {field}, null)"),
            Inst::NewRecord { dst } => write!(f, "{dst} := new OutputRecord()"),
            Inst::CopyRecord { dst, src } => write!(f, "{dst} := new OutputRecord({src})"),
            Inst::ConcatRecords { dst, a, b } => write!(f, "{dst} := new OutputRecord({a}, {b})"),
            Inst::Emit { rec } => write!(f, "emit({rec})"),
            Inst::Branch { cond, target } => write!(f, "if ({cond}) goto {target}"),
            Inst::Jump { target } => write!(f, "goto {target}"),
            Inst::Return => write!(f, "return"),
            Inst::IterOpen { dst, input } => write!(f, "{dst} := iterator(input[{input}])"),
            Inst::IterNext {
                dst,
                iter,
                exhausted,
            } => write!(f, "{dst} := next({iter}) else goto {exhausted}"),
            Inst::GroupCount { dst, input } => write!(f, "{dst} := groupSize(input[{input}])"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin {
            dst: VReg(0),
            op: BinOp::Add,
            a: VReg(1),
            b: VReg(2),
        };
        assert_eq!(i.defs(), vec![Reg::Val(VReg(0))]);
        assert_eq!(i.uses(), vec![Reg::Val(VReg(1)), Reg::Val(VReg(2))]);
    }

    #[test]
    fn set_field_defs_and_uses_record() {
        let i = Inst::SetField {
            rec: RReg(0),
            field: 1,
            src: VReg(3),
        };
        assert_eq!(i.defs(), vec![Reg::Rec(RReg(0))]);
        assert!(i.uses().contains(&Reg::Rec(RReg(0))));
        assert!(i.uses().contains(&Reg::Val(VReg(3))));
    }

    #[test]
    fn control_flow_properties() {
        assert!(Inst::Return.is_terminator());
        assert!(!Inst::Return.falls_through());
        let j = Inst::Jump { target: Label(4) };
        assert!(!j.falls_through());
        assert_eq!(j.targets(), vec![Label(4)]);
        let b = Inst::Branch {
            cond: VReg(0),
            target: Label(2),
        };
        assert!(b.falls_through());
        assert_eq!(b.targets(), vec![Label(2)]);
        let n = Inst::IterNext {
            dst: RReg(0),
            iter: IterReg(0),
            exhausted: Label(9),
        };
        assert!(n.falls_through());
        assert_eq!(n.targets(), vec![Label(9)]);
    }

    #[test]
    fn assoc_comm_classification() {
        for op in [
            BinOp::Add,
            BinOp::Mul,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
        ] {
            assert!(op.is_assoc_comm(), "{op:?}");
        }
        for op in [BinOp::Sub, BinOp::Div, BinOp::Rem, BinOp::Lt, BinOp::Ge] {
            assert!(!op.is_assoc_comm(), "{op:?}");
        }
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Inst::GetField {
            dst: VReg(0),
            rec: RReg(0),
            field: 1,
        };
        assert_eq!(format!("{i}"), "$t0 := getField($r0, 1)");
        let s = Inst::SetNull {
            rec: RReg(1),
            field: 0,
        };
        assert_eq!(format!("{s}"), "setField($r1, 0, null)");
    }
}
