//! UDF functions and the static verifier.

use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;
use crate::inst::{Inst, Label, RReg, Reg};
use std::fmt;

/// The invocation shape of a UDF — determined by the second-order function
/// it is plugged into (Section 2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdfKind {
    /// One input record per call (Map). Record-at-a-time.
    Map,
    /// Two input records per call (Cross, Match). Record-at-a-time.
    Pair,
    /// One record list per call (Reduce). Key-at-a-time.
    Group,
    /// Two record lists per call (CoGroup). Key-at-a-time.
    CoGroup,
}

impl UdfKind {
    /// Number of inputs.
    pub fn n_inputs(self) -> usize {
        match self {
            UdfKind::Map | UdfKind::Group => 1,
            UdfKind::Pair | UdfKind::CoGroup => 2,
        }
    }

    /// `true` for record-at-a-time kinds (single records per input).
    pub fn is_rat(self) -> bool {
        matches!(self, UdfKind::Map | UdfKind::Pair)
    }

    /// `true` for key-at-a-time kinds (record lists per input).
    pub fn is_kat(self) -> bool {
        !self.is_rat()
    }
}

/// A verified three-address-code UDF.
///
/// `input_widths` are the local schema widths (`#I` per input); the local
/// output schema is the concatenation of all input schemas followed by
/// `added_fields` new fields, so `output_width = Σ input_widths +
/// added_fields`. Output field indices `n ≥ Σ input_widths` denote
/// **new attributes** of the global record (Definition 2, case 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    kind: UdfKind,
    input_widths: Vec<usize>,
    added_fields: usize,
    insts: Vec<Inst>,
}

/// Errors detected by [`Function::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The function body is empty.
    EmptyBody,
    /// The final instruction can fall off the end of the body.
    FallsOffEnd,
    /// A branch target is out of range.
    BadLabel(Label),
    /// `LoadInput`/`IterOpen`/`GroupCount` referenced a nonexistent input.
    BadInput(u8, usize),
    /// A record-API instruction was used with the wrong UDF kind
    /// (e.g. iterators in a Map).
    WrongKind(usize),
    /// An intrinsic call had the wrong number of arguments.
    BadCallArity(usize),
    /// A register was used before being definitely assigned.
    UseBeforeDef(usize, String),
    /// `setField`/`emit` applied to an input record (inputs are read-only).
    MutatesInput(usize),
    /// A field index is outside the schema of the accessed record.
    FieldOutOfRange(usize),
    /// The register origin at an access site mixes input and constructed
    /// records, which defeats static origin tracking.
    AmbiguousOrigin(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyBody => write!(f, "function body is empty"),
            VerifyError::FallsOffEnd => write!(f, "control can fall off the end of the body"),
            VerifyError::BadLabel(l) => write!(f, "branch target {l} out of range"),
            VerifyError::BadInput(i, n) => {
                write!(f, "input index {i} out of range (function has {n} inputs)")
            }
            VerifyError::WrongKind(at) => {
                write!(
                    f,
                    "instruction {at}: record API not valid for this UDF kind"
                )
            }
            VerifyError::BadCallArity(at) => write!(f, "instruction {at}: wrong intrinsic arity"),
            VerifyError::UseBeforeDef(at, r) => {
                write!(f, "instruction {at}: register {r} used before assignment")
            }
            VerifyError::MutatesInput(at) => {
                write!(f, "instruction {at}: input records are read-only")
            }
            VerifyError::FieldOutOfRange(at) => {
                write!(f, "instruction {at}: field index outside record schema")
            }
            VerifyError::AmbiguousOrigin(at) => write!(
                f,
                "instruction {at}: record register mixes input and constructed origins"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl Function {
    /// Creates and verifies a function.
    pub fn new(
        name: impl Into<String>,
        kind: UdfKind,
        input_widths: Vec<usize>,
        added_fields: usize,
        insts: Vec<Inst>,
    ) -> Result<Self, VerifyError> {
        let f = Function {
            name: name.into(),
            kind,
            input_widths,
            added_fields,
            insts,
        };
        f.verify()?;
        Ok(f)
    }

    /// The function name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invocation shape.
    pub fn kind(&self) -> UdfKind {
        self.kind
    }

    /// Local schema width of each input (`#I`).
    pub fn input_widths(&self) -> &[usize] {
        &self.input_widths
    }

    /// Width of the concatenated input schemas.
    pub fn base_output_width(&self) -> usize {
        self.input_widths.iter().sum()
    }

    /// Number of new output fields beyond the input schemas.
    pub fn added_fields(&self) -> usize {
        self.added_fields
    }

    /// Local output schema width.
    pub fn output_width(&self) -> usize {
        self.base_output_width() + self.added_fields
    }

    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Determines, per record register use site, whether the register holds
    /// an input record (and which input) or a constructed output record.
    ///
    /// Returns `Ok(None)` for unreachable sites.
    pub fn record_origin(
        &self,
        rd: &ReachingDefs,
        site: usize,
        reg: RReg,
    ) -> Result<Option<RecOrigin>, VerifyError> {
        let mut origin: Option<RecOrigin> = None;
        // Follow def chains through in-place SetField/SetNull defs.
        let mut stack: Vec<usize> = rd.use_def(site, Reg::Rec(reg));
        let mut seen = vec![false; self.insts.len()];
        while let Some(d) = stack.pop() {
            if seen[d] {
                continue;
            }
            seen[d] = true;
            let o = match &self.insts[d] {
                Inst::LoadInput { input, .. } => RecOrigin::Input(*input),
                Inst::IterNext { .. } => RecOrigin::Input(self.iter_input_of(rd, d)),
                Inst::NewRecord { .. } | Inst::CopyRecord { .. } | Inst::ConcatRecords { .. } => {
                    RecOrigin::Constructed
                }
                Inst::SetField { rec, .. }
                | Inst::SetFieldDyn { rec, .. }
                | Inst::SetNull { rec, .. } => {
                    stack.extend_from_slice(&rd.use_def(d, Reg::Rec(*rec)));
                    continue;
                }
                _ => continue,
            };
            match origin {
                None => origin = Some(o),
                Some(prev) if prev == o => {}
                Some(_) => return Err(VerifyError::AmbiguousOrigin(site)),
            }
        }
        Ok(origin)
    }

    /// For an `IterNext` at `site`, finds which input its iterator scans.
    fn iter_input_of(&self, rd: &ReachingDefs, site: usize) -> u8 {
        if let Inst::IterNext { iter, .. } = &self.insts[site] {
            for d in rd.use_def(site, Reg::Iter(*iter)) {
                if let Inst::IterOpen { input, .. } = &self.insts[d] {
                    return *input;
                }
            }
        }
        0
    }

    /// Verifies the static discipline assumed by the paper's analysis:
    /// structural well-formedness, definite assignment, read-only inputs,
    /// record-API/kind agreement and field bounds.
    pub fn verify(&self) -> Result<(), VerifyError> {
        if self.insts.is_empty() {
            return Err(VerifyError::EmptyBody);
        }
        let n = self.insts.len();
        for (at, inst) in self.insts.iter().enumerate() {
            for t in inst.targets() {
                if t.0 as usize >= n {
                    return Err(VerifyError::BadLabel(t));
                }
            }
            match inst {
                Inst::LoadInput { input, .. } => {
                    if !self.kind.is_rat() {
                        return Err(VerifyError::WrongKind(at));
                    }
                    if *input as usize >= self.kind.n_inputs() {
                        return Err(VerifyError::BadInput(*input, self.kind.n_inputs()));
                    }
                }
                Inst::IterOpen { input, .. } | Inst::GroupCount { input, .. } => {
                    if !self.kind.is_kat() {
                        return Err(VerifyError::WrongKind(at));
                    }
                    if *input as usize >= self.kind.n_inputs() {
                        return Err(VerifyError::BadInput(*input, self.kind.n_inputs()));
                    }
                }
                Inst::IterNext { .. } if !self.kind.is_kat() => {
                    return Err(VerifyError::WrongKind(at));
                }
                Inst::ConcatRecords { .. } if self.kind.n_inputs() != 2 => {
                    return Err(VerifyError::WrongKind(at));
                }
                Inst::Call { f, args, .. } if args.len() != f.arity() => {
                    return Err(VerifyError::BadCallArity(at));
                }
                _ => {}
            }
        }
        if self.insts[n - 1].falls_through() {
            return Err(VerifyError::FallsOffEnd);
        }

        let cfg = Cfg::build(self);
        self.verify_definite_assignment(&cfg)?;

        // Origin discipline: setField/emit only on constructed records;
        // getField bounds depend on origin.
        let rd = ReachingDefs::compute(self, &cfg);
        for (at, inst) in self.insts.iter().enumerate() {
            if !cfg.reachable(at) {
                continue;
            }
            match inst {
                Inst::SetField { rec, field, .. } | Inst::SetNull { rec, field } => {
                    match self.record_origin(&rd, at, *rec)? {
                        Some(RecOrigin::Constructed) | None => {}
                        Some(RecOrigin::Input(_)) => return Err(VerifyError::MutatesInput(at)),
                    }
                    if *field >= self.output_width() {
                        return Err(VerifyError::FieldOutOfRange(at));
                    }
                }
                Inst::SetFieldDyn { rec, .. } => match self.record_origin(&rd, at, *rec)? {
                    Some(RecOrigin::Constructed) | None => {}
                    Some(RecOrigin::Input(_)) => return Err(VerifyError::MutatesInput(at)),
                },
                Inst::Emit { rec } => match self.record_origin(&rd, at, *rec)? {
                    Some(RecOrigin::Constructed) | None => {}
                    Some(RecOrigin::Input(_)) => return Err(VerifyError::MutatesInput(at)),
                },
                Inst::GetField { rec, field, .. } => {
                    let bound = match self.record_origin(&rd, at, *rec)? {
                        Some(RecOrigin::Input(i)) => {
                            self.input_widths.get(i as usize).copied().unwrap_or(0)
                        }
                        Some(RecOrigin::Constructed) => self.output_width(),
                        None => continue,
                    };
                    if *field >= bound {
                        return Err(VerifyError::FieldOutOfRange(at));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Forward must-analysis: every register use is preceded by a definition
    /// on every path. The exhausted edge of `IterNext` does **not** define
    /// the destination register.
    fn verify_definite_assignment(&self, cfg: &Cfg) -> Result<(), VerifyError> {
        use std::collections::BTreeSet;
        let n = self.insts.len();
        // in[i]: registers definitely assigned before instruction i.
        // None = not yet computed (⊤ for the must-analysis).
        let mut ins: Vec<Option<BTreeSet<Reg>>> = vec![None; n];
        ins[0] = Some(BTreeSet::new());
        let mut work: Vec<usize> = vec![0];
        while let Some(i) = work.pop() {
            let mut out = ins[i].clone().expect("scheduled without in-state");
            for u in self.insts[i].uses() {
                if !out.contains(&u) {
                    return Err(VerifyError::UseBeforeDef(i, format!("{u:?}")));
                }
            }
            for d in self.insts[i].defs() {
                out.insert(d);
            }
            for &(succ, is_exhausted_edge) in cfg.succ_edges(i) {
                let mut edge_out = out.clone();
                if is_exhausted_edge {
                    if let Inst::IterNext { dst, .. } = &self.insts[i] {
                        edge_out.remove(&Reg::Rec(*dst));
                    }
                }
                let updated = match &ins[succ] {
                    None => {
                        ins[succ] = Some(edge_out);
                        true
                    }
                    Some(prev) => {
                        let meet: BTreeSet<Reg> = prev.intersection(&edge_out).copied().collect();
                        if &meet != prev {
                            ins[succ] = Some(meet);
                            true
                        } else {
                            false
                        }
                    }
                };
                if updated {
                    work.push(succ);
                }
            }
        }
        Ok(())
    }
}

/// Where a record register's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecOrigin {
    /// Bound to input `i` (read-only).
    Input(u8),
    /// Produced by a record constructor (writable output record).
    Constructed,
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}({:?}, inputs {:?}, +{} fields)",
            self.name, self.kind, self.input_widths, self.added_fields
        )?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:3}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{IterReg, VReg};
    use strato_record::Value;

    fn mk(
        kind: UdfKind,
        widths: Vec<usize>,
        added: usize,
        insts: Vec<Inst>,
    ) -> Result<Function, VerifyError> {
        Function::new("t", kind, widths, added, insts)
    }

    #[test]
    fn empty_body_rejected() {
        assert_eq!(
            mk(UdfKind::Map, vec![1], 0, vec![]).unwrap_err(),
            VerifyError::EmptyBody
        );
    }

    #[test]
    fn fall_off_end_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![1],
            0,
            vec![Inst::Const {
                dst: VReg(0),
                value: Value::Int(1),
            }],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::FallsOffEnd);
    }

    #[test]
    fn bad_label_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![1],
            0,
            vec![Inst::Jump { target: Label(9) }],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::BadLabel(Label(9)));
    }

    #[test]
    fn use_before_def_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Un {
                    dst: VReg(1),
                    op: crate::inst::UnOp::Not,
                    a: VReg(0),
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert!(matches!(e, VerifyError::UseBeforeDef(0, _)));
    }

    #[test]
    fn iterators_rejected_in_map() {
        let e = mk(
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::IterOpen {
                    dst: IterReg(0),
                    input: 0,
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::WrongKind(0));
    }

    #[test]
    fn load_input_rejected_in_group() {
        let e = mk(
            UdfKind::Group,
            vec![1],
            0,
            vec![
                Inst::LoadInput {
                    dst: RReg(0),
                    input: 0,
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::WrongKind(0));
    }

    #[test]
    fn mutating_input_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![2],
            0,
            vec![
                Inst::LoadInput {
                    dst: RReg(0),
                    input: 0,
                },
                Inst::Const {
                    dst: VReg(0),
                    value: Value::Int(1),
                },
                Inst::SetField {
                    rec: RReg(0),
                    field: 0,
                    src: VReg(0),
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::MutatesInput(2));
    }

    #[test]
    fn emitting_input_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![2],
            0,
            vec![
                Inst::LoadInput {
                    dst: RReg(0),
                    input: 0,
                },
                Inst::Emit { rec: RReg(0) },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::MutatesInput(1));
    }

    #[test]
    fn get_field_out_of_range_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![2],
            0,
            vec![
                Inst::LoadInput {
                    dst: RReg(0),
                    input: 0,
                },
                Inst::GetField {
                    dst: VReg(0),
                    rec: RReg(0),
                    field: 5,
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::FieldOutOfRange(1));
    }

    #[test]
    fn valid_identity_map_verifies() {
        let f = mk(
            UdfKind::Map,
            vec![2],
            0,
            vec![
                Inst::LoadInput {
                    dst: RReg(0),
                    input: 0,
                },
                Inst::CopyRecord {
                    dst: RReg(1),
                    src: RReg(0),
                },
                Inst::Emit { rec: RReg(1) },
                Inst::Return,
            ],
        )
        .unwrap();
        assert_eq!(f.output_width(), 2);
        assert_eq!(f.base_output_width(), 2);
        assert!(f.kind().is_rat());
    }

    #[test]
    fn set_field_new_attribute_within_added_fields() {
        let insts = vec![
            Inst::LoadInput {
                dst: RReg(0),
                input: 0,
            },
            Inst::CopyRecord {
                dst: RReg(1),
                src: RReg(0),
            },
            Inst::Const {
                dst: VReg(0),
                value: Value::Int(7),
            },
            Inst::SetField {
                rec: RReg(1),
                field: 2,
                src: VReg(0),
            },
            Inst::Emit { rec: RReg(1) },
            Inst::Return,
        ];
        assert!(mk(UdfKind::Map, vec![2], 1, insts.clone()).is_ok());
        assert_eq!(
            mk(UdfKind::Map, vec![2], 0, insts).unwrap_err(),
            VerifyError::FieldOutOfRange(3)
        );
    }

    #[test]
    fn bad_call_arity_rejected() {
        let e = mk(
            UdfKind::Map,
            vec![1],
            0,
            vec![
                Inst::Call {
                    dst: VReg(0),
                    f: crate::Intrinsic::StrLen,
                    args: vec![],
                },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert_eq!(e, VerifyError::BadCallArity(0));
    }

    #[test]
    fn iter_next_dst_not_defined_on_exhausted_edge() {
        // loop: r := next(it) else goto done; goto loop; done: emit(copy(r))
        // Using r after `done` must be rejected — the def does not flow
        // along the exhausted edge.
        let e = mk(
            UdfKind::Group,
            vec![1],
            0,
            vec![
                Inst::IterOpen {
                    dst: IterReg(0),
                    input: 0,
                },
                Inst::IterNext {
                    dst: RReg(0),
                    iter: IterReg(0),
                    exhausted: Label(3),
                },
                Inst::Jump { target: Label(1) },
                Inst::CopyRecord {
                    dst: RReg(1),
                    src: RReg(0),
                },
                Inst::Emit { rec: RReg(1) },
                Inst::Return,
            ],
        )
        .unwrap_err();
        assert!(matches!(e, VerifyError::UseBeforeDef(3, _)));
    }

    #[test]
    fn display_lists_numbered_instructions() {
        let f = mk(UdfKind::Map, vec![1], 0, vec![Inst::Return]).unwrap();
        let s = format!("{f}");
        assert!(s.contains("0: return"), "{s}");
    }
}
