//! Ergonomic construction of IR functions.
//!
//! [`FuncBuilder`] allocates registers, resolves forward labels and infers
//! the number of *added* output fields (`setField` indices beyond the input
//! schemas create new global attributes when the program is bound).

use crate::func::{Function, UdfKind, VerifyError};
use crate::inst::{BinOp, Inst, IterReg, Label, RReg, UnOp, VReg};
use crate::intrinsics::Intrinsic;
use strato_record::Value;

/// A forward-referencable label. Create with [`FuncBuilder::new_label`],
/// bind with [`FuncBuilder::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelRef(usize);

/// Errors produced by [`FuncBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was used in a branch but never placed.
    UnplacedLabel(usize),
    /// The function failed verification.
    Verify(VerifyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnplacedLabel(l) => write!(f, "label {l} was never placed"),
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> Self {
        BuildError::Verify(e)
    }
}

/// Builder for [`Function`]s.
///
/// ```
/// use strato_ir::{FuncBuilder, UdfKind, BinOp};
///
/// // f2 from Section 3 of the paper: emit records with field 0 >= 0.
/// let mut b = FuncBuilder::new("f2", UdfKind::Map, vec![2]);
/// let a = b.get_input(0, 0);
/// let zero = b.konst(0i64);
/// let neg = b.bin(BinOp::Lt, a, zero);
/// let end = b.new_label();
/// b.branch(neg, end);
/// let out = b.copy_input(0);
/// b.emit(out);
/// b.place(end);
/// b.ret();
/// let f = b.finish().unwrap();
/// assert_eq!(f.output_width(), 2);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    kind: UdfKind,
    input_widths: Vec<usize>,
    insts: Vec<Inst>,
    next_v: u16,
    next_r: u16,
    next_i: u16,
    /// Resolved position per label id (`None` = not yet placed).
    labels: Vec<Option<u32>>,
    /// Cached `LoadInput` registers.
    input_regs: [Option<RReg>; 2],
    max_set_field: Option<usize>,
}

impl FuncBuilder {
    /// Starts building a UDF of the given kind and input schema widths.
    pub fn new(name: impl Into<String>, kind: UdfKind, input_widths: Vec<usize>) -> Self {
        assert_eq!(
            input_widths.len(),
            kind.n_inputs(),
            "input width count must match UDF kind"
        );
        FuncBuilder {
            name: name.into(),
            kind,
            input_widths,
            insts: Vec::new(),
            next_v: 0,
            next_r: 0,
            next_i: 0,
            labels: Vec::new(),
            input_regs: [None, None],
            max_set_field: None,
        }
    }

    fn vreg(&mut self) -> VReg {
        let r = VReg(self.next_v);
        self.next_v += 1;
        r
    }

    fn rreg(&mut self) -> RReg {
        let r = RReg(self.next_r);
        self.next_r += 1;
        r
    }

    /// Creates a fresh, not-yet-placed label.
    pub fn new_label(&mut self) -> LabelRef {
        self.labels.push(None);
        LabelRef(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction position.
    pub fn place(&mut self, label: LabelRef) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.insts.len() as u32);
    }

    /// `$t := const`.
    pub fn konst(&mut self, v: impl Into<Value>) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::Const {
            dst,
            value: v.into(),
        });
        dst
    }

    /// Binds input record `i` (RAT UDFs); cached across calls.
    pub fn input(&mut self, i: u8) -> RReg {
        if let Some(r) = self.input_regs[i as usize] {
            return r;
        }
        let dst = self.rreg();
        self.insts.push(Inst::LoadInput { dst, input: i });
        self.input_regs[i as usize] = Some(dst);
        dst
    }

    /// `$t := getField($r, n)`.
    pub fn get(&mut self, rec: RReg, field: usize) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::GetField { dst, rec, field });
        dst
    }

    /// `getField(input[i], n)` — sugar for [`Self::input`] + [`Self::get`].
    pub fn get_input(&mut self, input: u8, field: usize) -> VReg {
        let rec = self.input(input);
        self.get(rec, field)
    }

    /// `$t := $a <op> $b`.
    pub fn bin(&mut self, op: BinOp, a: VReg, b: VReg) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::Bin { dst, op, a, b });
        dst
    }

    /// `$dst := $a <op> $b` into an existing register — the accumulator
    /// form needed for loop-carried values (the IR has no phi nodes).
    pub fn bin_into(&mut self, dst: VReg, op: BinOp, a: VReg, b: VReg) {
        self.insts.push(Inst::Bin { dst, op, a, b });
    }

    /// `$dst := $src` — plain assignment into an existing register.
    pub fn mov(&mut self, dst: VReg, src: VReg) {
        self.insts.push(Inst::Move { dst, src });
    }

    /// `$t := <op> $a`.
    pub fn un(&mut self, op: UnOp, a: VReg) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::Un { dst, op, a });
        dst
    }

    /// `$t := intrinsic(args…)`.
    pub fn call(&mut self, f: Intrinsic, args: Vec<VReg>) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::Call { dst, f, args });
        dst
    }

    /// `$r := new OutputRecord()` — implicit projection.
    pub fn new_rec(&mut self) -> RReg {
        let dst = self.rreg();
        self.insts.push(Inst::NewRecord { dst });
        dst
    }

    /// `$r := new OutputRecord($src)` — implicit copy.
    pub fn copy(&mut self, src: RReg) -> RReg {
        let dst = self.rreg();
        self.insts.push(Inst::CopyRecord { dst, src });
        dst
    }

    /// Copy constructor applied to input `i`.
    pub fn copy_input(&mut self, input: u8) -> RReg {
        let src = self.input(input);
        self.copy(src)
    }

    /// `$r := new OutputRecord($a, $b)` — concatenation of both inputs.
    pub fn concat(&mut self, a: RReg, b: RReg) -> RReg {
        let dst = self.rreg();
        self.insts.push(Inst::ConcatRecords { dst, a, b });
        dst
    }

    /// Concatenation constructor applied to both input records.
    pub fn concat_inputs(&mut self) -> RReg {
        let a = self.input(0);
        let b = self.input(1);
        self.concat(a, b)
    }

    /// `$t := getField($r, $i)` — dynamic field access.
    pub fn get_dyn(&mut self, rec: RReg, idx: VReg) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::GetFieldDyn { dst, rec, idx });
        dst
    }

    /// `setField($r, $i, $t)` — dynamic field write.
    pub fn set_dyn(&mut self, rec: RReg, idx: VReg, src: VReg) {
        self.insts.push(Inst::SetFieldDyn { rec, idx, src });
    }

    /// `setField($r, n, $t)`.
    pub fn set(&mut self, rec: RReg, field: usize, src: VReg) {
        self.max_set_field = Some(self.max_set_field.map_or(field, |m| m.max(field)));
        self.insts.push(Inst::SetField { rec, field, src });
    }

    /// `setField($r, n, null)` — explicit projection.
    pub fn set_null(&mut self, rec: RReg, field: usize) {
        self.max_set_field = Some(self.max_set_field.map_or(field, |m| m.max(field)));
        self.insts.push(Inst::SetNull { rec, field });
    }

    /// `emit($r)`.
    pub fn emit(&mut self, rec: RReg) {
        self.insts.push(Inst::Emit { rec });
    }

    /// `if ($t) goto label`.
    pub fn branch(&mut self, cond: VReg, label: LabelRef) {
        self.insts.push(Inst::Branch {
            cond,
            target: Label(label.0 as u32),
        });
    }

    /// `if (!$t) goto label` — sugar for `Not` + branch.
    pub fn branch_not(&mut self, cond: VReg, label: LabelRef) {
        let n = self.un(UnOp::Not, cond);
        self.branch(n, label);
    }

    /// `goto label`.
    pub fn jump(&mut self, label: LabelRef) {
        self.insts.push(Inst::Jump {
            target: Label(label.0 as u32),
        });
    }

    /// `return`.
    pub fn ret(&mut self) {
        self.insts.push(Inst::Return);
    }

    /// `$it := iterator(input[i])` (KAT UDFs).
    pub fn iter_open(&mut self, input: u8) -> IterReg {
        let dst = IterReg(self.next_i);
        self.next_i += 1;
        self.insts.push(Inst::IterOpen { dst, input });
        dst
    }

    /// `$r := next($it) else goto label` (KAT UDFs).
    pub fn iter_next(&mut self, iter: IterReg, exhausted: LabelRef) -> RReg {
        let dst = self.rreg();
        self.insts.push(Inst::IterNext {
            dst,
            iter,
            exhausted: Label(exhausted.0 as u32),
        });
        dst
    }

    /// `$t := groupSize(input[i])` (KAT UDFs).
    pub fn group_count(&mut self, input: u8) -> VReg {
        let dst = self.vreg();
        self.insts.push(Inst::GroupCount { dst, input });
        dst
    }

    /// Resolves labels, infers added output fields and verifies.
    pub fn finish(mut self) -> Result<Function, BuildError> {
        // Resolve label ids to instruction positions.
        for (i, inst) in self.insts.iter_mut().enumerate() {
            let fix = |l: &mut Label, labels: &[Option<u32>]| -> Result<(), BuildError> {
                let pos = labels
                    .get(l.0 as usize)
                    .copied()
                    .flatten()
                    .ok_or(BuildError::UnplacedLabel(l.0 as usize))?;
                *l = Label(pos);
                Ok(())
            };
            let _ = i;
            match inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => fix(target, &self.labels)?,
                Inst::IterNext { exhausted, .. } => fix(exhausted, &self.labels)?,
                _ => {}
            }
        }
        let base: usize = self.input_widths.iter().sum();
        let added = self
            .max_set_field
            .map_or(0, |m| (m + 1).saturating_sub(base));
        Ok(Function::new(
            self.name,
            self.kind,
            self.input_widths,
            added,
            self.insts,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_papers_f1() {
        // f1: replace B (field 1) with |B|.
        let mut b = FuncBuilder::new("f1", UdfKind::Map, vec![2]);
        let bv = b.get_input(0, 1);
        let or = b.copy_input(0);
        let zero = b.konst(0i64);
        let nonneg = b.bin(BinOp::Ge, bv, zero);
        let done = b.new_label();
        b.branch(nonneg, done);
        let abs = b.un(UnOp::Abs, bv);
        b.set(or, 1, abs);
        b.place(done);
        b.emit(or);
        b.ret();
        let f = b.finish().unwrap();
        assert_eq!(f.added_fields(), 0);
        assert_eq!(f.output_width(), 2);
    }

    #[test]
    fn added_fields_inferred_from_set_field() {
        let mut b = FuncBuilder::new("g", UdfKind::Map, vec![2]);
        let or = b.copy_input(0);
        let v = b.konst(1i64);
        b.set(or, 3, v); // fields 2 and 3 are new ⇒ added = 2
        b.emit(or);
        b.ret();
        let f = b.finish().unwrap();
        assert_eq!(f.added_fields(), 2);
        assert_eq!(f.output_width(), 4);
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut b = FuncBuilder::new("g", UdfKind::Map, vec![1]);
        let l = b.new_label();
        let c = b.konst(true);
        b.branch(c, l);
        b.ret();
        assert!(matches!(b.finish(), Err(BuildError::UnplacedLabel(0))));
    }

    #[test]
    fn input_register_is_cached() {
        let mut b = FuncBuilder::new("g", UdfKind::Map, vec![2]);
        let r1 = b.input(0);
        let r2 = b.input(0);
        assert_eq!(r1, r2);
        b.ret();
        let f = b.finish().unwrap();
        let loads = f
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::LoadInput { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn verify_failure_propagates() {
        let mut b = FuncBuilder::new("g", UdfKind::Map, vec![1]);
        b.konst(1i64);
        // no return → falls off end
        assert!(matches!(
            b.finish(),
            Err(BuildError::Verify(VerifyError::FallsOffEnd))
        ));
    }

    #[test]
    fn kat_loop_with_accumulator_builds_and_verifies() {
        // Sum field 0 of a group, emit one record with the sum appended.
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![2]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 0);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        let or = b.new_rec();
        b.set(or, 2, sum);
        b.emit(or);
        b.ret();
        let f = b.finish().expect("verifies");
        assert_eq!(f.added_fields(), 1);
        assert!(f.kind().is_kat());
    }

    #[test]
    fn mov_supports_loop_carried_copies() {
        let mut b = FuncBuilder::new("m", UdfKind::Map, vec![1]);
        let a = b.konst(1i64);
        let c = b.konst(2i64);
        b.mov(a, c);
        b.ret();
        assert!(b.finish().is_ok());
    }
}
