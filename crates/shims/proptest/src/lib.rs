//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! compact property-testing engine that is API-compatible with the subset of
//! proptest used by strato's test suites:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`strategy::Strategy`] with `prop_map` / `boxed`, tuple strategies,
//!   integer-range strategies, [`strategy::Just`], [`prop_oneof!`] unions,
//!   and char-class string patterns (`"[a-z]{0,12}"`),
//! * [`arbitrary::any`] for primitives (with a bias toward edge values),
//! * [`collection::vec`] / [`collection::btree_set`] / [`option::of`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   [`prop_assume!`], [`test_runner::TestCaseError`] and
//!   [`test_runner::Config`] (`ProptestConfig`).
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! the generated input verbatim. Generation is deterministic per test
//! (fixed seed), so failures reproduce across runs.

/// Deterministic test-case generation and execution.
pub mod test_runner {
    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    use crate::strategy::Strategy;

    /// Deterministic RNG (SplitMix64) driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() as u128 % n as u128) as usize
        }

        /// Uniform value in `[lo, hi]` (inclusive), as i128 arithmetic.
        pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            let span = (hi - lo + 1) as u128;
            lo + (((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span) as i128
        }
    }

    /// Runner configuration; exported as `ProptestConfig` from the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases each test must pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated; the test fails.
        Fail(String),
        /// The case did not satisfy an assumption; it is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (filtered case) with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Shorthand used by the `prop_assert*` macros.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Executes `config.cases` generated cases of `strategy` against `test`.
    ///
    /// Panics (failing the surrounding `#[test]`) on the first violated
    /// property, printing the generated input. Rejected cases (via
    /// `prop_assume!`) do not count toward the case budget; an excessive
    /// rejection rate is itself an error, like in real proptest.
    pub fn run<S, F>(config: &Config, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        // Fixed seed: deterministic, reproducible test streams.
        let mut rng = TestRng::seed(0x5eed_0f57_1a70 ^ config.cases as u64);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            if rejected > config.cases.saturating_mul(16).max(1024) {
                panic!(
                    "proptest shim: too many rejected cases \
                     ({rejected} rejects for {accepted} accepted)"
                );
            }
            let value = strategy.generate(&mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value.clone())));
            match outcome {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(TestCaseError::Reject(_))) => rejected += 1,
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest case #{accepted} failed: {msg}\
                         \n  input: {value:?}"
                    );
                }
                Err(cause) => {
                    eprintln!("proptest case #{accepted} panicked\n  input: {value:?}");
                    resume_unwind(cause);
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// `any::<T>()` strategies for primitive types.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`, spanning its whole domain with a
    /// mild bias toward edge values (zero, extremes, NaN for floats).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-8 bias toward edge values, like real proptest's
                    // preference for special cases.
                    if rng.next_u64() % 8 == 0 {
                        const EDGES: [$t; 5] =
                            [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                        EDGES[rng.below(EDGES.len())]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            if rng.next_u64() % 8 == 0 {
                const EDGES: [f64; 7] = [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                ];
                EDGES[rng.below(EDGES.len())]
            } else {
                f64::from_bits(rng.next_u64())
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        }
    }
}

/// Size specifications for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut test_runner::TestRng) -> usize {
        debug_assert!(self.lo < self.hi);
        self.lo + rng.below(self.hi - self.lo)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with *up to* `size` elements (duplicates from
    /// a small element domain may reduce the count, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, otherwise
    /// `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// String generation from char-class patterns.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `&str` patterns are strategies for `String`, like in real proptest.
    ///
    /// Supported grammar: a sequence of atoms, each either a literal char
    /// or a char class `[a-z0-9 _]`, optionally repeated with `{n}` or
    /// `{lo,hi}`. This covers the patterns strato's tests use; anything
    /// unparseable is generated as the literal pattern text.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                    Some(off) => i + 1 + off,
                    None => {
                        // Unparseable: emit the rest verbatim.
                        out.extend(&chars[i..]);
                        return out;
                    }
                };
                let set = expand_class(&chars[i + 1..close]);
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional {n} / {lo,hi} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = match chars[i + 1..].iter().position(|&c| c == '}') {
                    Some(off) => i + 1 + off,
                    None => {
                        out.extend(&chars[i..]);
                        return out;
                    }
                };
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                parse_reps(&body).unwrap_or((1, 1))
            } else {
                (1, 1)
            };
            if alphabet.is_empty() {
                continue;
            }
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    /// Expands the interior of a `[...]` class into its member chars.
    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        set.push(c);
                    }
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        set
    }

    fn parse_reps(body: &str) -> Option<(usize, usize)> {
        match body.split_once(',') {
            Some((lo, hi)) => {
                let lo = lo.trim().parse().ok()?;
                let hi = hi.trim().parse().ok()?;
                (lo <= hi).then_some((lo, hi))
            }
            None => {
                let n = body.trim().parse().ok()?;
                Some((n, n))
            }
        }
    }
}

/// Everything tests normally import, via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Path-style access to strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, string};
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, &strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Like `assert_ne!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5i64..5, y in 1u32..=9, n in 0..4usize) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_sizes_and_maps(v in prop::collection::vec(0..10i32, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1i64), 10i64..20, Just(99i64)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v == 99);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "len of {s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_filters(x in 0..100i32) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn tuples_and_options(
            (a, b) in (0..5usize, any::<bool>()),
            o in prop::option::of(1..3i32),
        ) {
            prop_assert!(a < 5);
            let _ = b;
            if let Some(i) = o {
                prop_assert!((1..3).contains(&i));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_is_honored(_x in 0..10i32) {
            // Runs exactly 17 cases; nothing to assert beyond completion.
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        crate::test_runner::run(&ProptestConfig::with_cases(8), &(0..1i32,), |(x,)| {
            prop_assert!(x > 100);
            Ok(())
        });
    }

    #[test]
    fn btree_set_generates_ordered_unique() {
        let strat = crate::collection::btree_set(0u32..50, 0..10);
        let mut rng = TestRng::seed(7);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.len() < 10);
            assert!(s.iter().all(|&e| e < 50));
        }
    }
}
