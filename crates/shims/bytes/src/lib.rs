//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible reimplementation of the
//! subset of `bytes` that strato uses: [`BytesMut`] as a growable write
//! buffer, [`Bytes`] as a cheaply cloneable immutable view, and the
//! [`Buf`]/[`BufMut`] reader/writer traits. Semantics match the real crate
//! for this subset; `Bytes::clone` and `Bytes::slice` are O(1) and share the
//! underlying allocation via `Arc`.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of `self`; O(1), shares the allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable, owned byte buffer for building wire messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off all written bytes into a new `BytesMut`, leaving `self`
    /// empty (the shim keeps `self`'s allocation instead of splitting it).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        f64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst` and consumes them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes the next `len` bytes, returning them as [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let mut raw = vec![0u8; len];
        self.copy_to_slice(&mut raw);
        Bytes::from(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-5);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 2.5);
        let mut tail = [0u8; 2];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_clone_share_views() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello world");
        let b = buf.freeze();
        assert_eq!(b.slice(..5).as_ref(), b"hello");
        assert_eq!(b.slice(6..).as_ref(), b"world");
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn slices_read_as_buf() {
        let mut s: &[u8] = &[7, 1, 0, 0, 0, 9];
        assert_eq!(s.remaining(), 6);
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn split_empties_the_source() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        let head = buf.split();
        assert_eq!(head.as_ref(), b"abc");
        assert!(buf.is_empty());
    }
}
