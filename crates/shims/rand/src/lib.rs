//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) crate (0.8 API).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal reimplementation of what strato uses: seedable [`rngs::StdRng`],
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose`]. The generator is SplitMix64 — statistically
//! solid for data generation and fully deterministic for a given seed, which
//! is all the workloads and tests require (they never assume the exact
//! stream of the upstream `StdRng`).

/// Core trait of random number generators: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Mirrors rand 0.8's signature so the element type is inferred from
    /// the use site, letting untyped integer literals in the range adopt it.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Converts to wide arithmetic for span computation.
    fn to_i128(self) -> i128;
    /// Converts back after sampling.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn sample_inclusive<T: SampleUniform, R: RngCore>(rng: &mut R, lo: T, hi: T) -> T {
    let (lo, hi) = (lo.to_i128(), hi.to_i128());
    let span = (hi - lo + 1) as u128;
    let off = (rng.next_u64() as u128) % span;
    T::from_i128(lo + off as i128)
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(
            self.start.to_i128() < self.end.to_i128(),
            "gen_range on empty range"
        );
        sample_inclusive(rng, self.start, T::from_i128(self.end.to_i128() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo.to_i128() <= hi.to_i128(), "gen_range on empty range");
        sample_inclusive(rng, lo, hi)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of the shim (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as u128 % self.len() as u128) as usize;
                self.get(i)
            }
        }
    }
}

/// The customary glob-import module mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=28u32);
            assert!((1..=28).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let pool = [1, 2, 3];
        for _ in 0..100 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
    }
}
