//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, API-compatible benchmark harness covering what strato's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each bench is warmed up, then timed over
//! `sample_size` samples of auto-calibrated batches (~5 ms per sample).
//! Results are printed human-readably plus one machine-readable line per
//! bench (`BENCH_JSON {...}`) so baselines can be captured from stdout.

use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 20;
const TARGET_SAMPLE_NANOS: u128 = 5_000_000;

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parses CLI arguments. The shim accepts and ignores criterion's flags
    /// (`--bench`, filters, …) so `cargo bench` invocations keep working.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench("", id, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&self.name, id, self.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed iterations.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration nanosecond samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: aim each sample at ~5 ms of work.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000_000) as u64;
        for _ in 0..iters.min(3) {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_bench(group: &str, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{full:<40} (no samples)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let n = b.samples_ns.len();
    let mean = b.samples_ns.iter().sum::<f64>() / n as f64;
    let median = b.samples_ns[n / 2];
    let min = b.samples_ns[0];
    let max = b.samples_ns[n - 1];
    println!(
        "{full:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    println!(
        "BENCH_JSON {{\"group\":\"{group}\",\"bench\":\"{id}\",\"mean_ns\":{mean:.1},\
         \"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{n}}}"
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark entry function running the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_samples_and_output() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        g.finish();
        assert!(ran > 3, "bench closure should run many times, ran {ran}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
