//! End-to-end query tracing: a lock-light per-worker span recorder, a
//! Chrome trace-event renderer, an `EXPLAIN ANALYZE` report, and the
//! log-bucketed latency histogram the server's `/metrics` endpoint
//! exports.
//!
//! ## The recorder
//!
//! A [`TraceRecorder`] belongs to **one** query. It owns a fixed set of
//! *lanes* — bounded ring buffers, one per recording thread — so workers
//! append spans without contending on a shared lock: each thread caches
//! its lane assignment in a thread-local and only ever locks its own
//! lane's (uncontended) mutex. When a lane's ring fills, the oldest spans
//! are dropped and counted ([`TraceRecorder::dropped`]) — tracing a huge
//! query degrades to a bounded window, never to unbounded memory.
//!
//! Tracing is **opt-in per execution** through
//! [`ExecOptions::trace`](crate::ExecOptions): when the option is `None`
//! (the default), every instrumentation point is a single
//! `Option` check — no clock reads, no allocation, no locking. The
//! `engine_trace` bench group pins that the disabled path stays within
//! noise of the pre-tracing engine.
//!
//! Span sources threaded through the engine:
//!
//! * every cooperative **task step** (`stage × partition`, carrying
//!   `query_id`, `stage`, `partition` args),
//! * **ship/scatter** routing of produced batches,
//! * **spill run writes** and **k-way merges** (including multi-pass
//!   compaction) of the out-of-core machinery,
//! * **memory-grant** carving on the shared
//!   [`EngineRuntime`](crate::EngineRuntime),
//! * and, server-side, admission wait / plan compile / optimize spans.
//!
//! ## The renderers
//!
//! [`TraceRecorder::chrome_trace_json`] renders the spans as Chrome
//! trace-event JSON (`{"traceEvents": [...]}`) loadable in Perfetto or
//! `chrome://tracing`: one track per lane (≈ per worker thread), events
//! grouped under the query's pid, every span carrying its `query_id`.
//! [`explain_analyze`] renders the optimizer's **estimates** next to the
//! execution's **measurements**, per physical operator — the
//! estimate-vs-actual deltas adaptive execution will feed back.

use crate::stats::ExecStats;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use strato_core::{PhysNode, PhysPlan, Ship};
use strato_dataflow::{NodeKind, Plan};

/// Lanes (≈ concurrent recording threads) per recorder. Threads beyond
/// this share lanes round-robin; spans stay correct, tracks merge.
pub const TRACE_LANES: usize = 32;

/// Bounded span capacity of one lane's ring buffer. Overflow drops the
/// oldest spans (counted by [`TraceRecorder::dropped`]).
pub const LANE_CAPACITY: usize = 8192;

/// One recorded span: a named, categorized `[start, start + dur)`
/// interval relative to the recorder's epoch, plus numeric arguments.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name (operator or phase name).
    pub name: String,
    /// Category: `"task"`, `"ship"`, `"spill"`, `"merge"`, `"mem"`,
    /// `"server"`.
    pub cat: &'static str,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric arguments (`stage`, `partition`, `records`, `bytes`, …).
    pub args: Vec<(&'static str, u64)>,
}

/// One thread's bounded span ring plus the thread name for the renderer's
/// track metadata.
#[derive(Debug, Default)]
struct Lane {
    spans: VecDeque<Span>,
    thread: Option<String>,
}

/// Distinguishes recorders for the thread-local lane cache (0 = unset).
static RECORDER_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(recorder id, lane index)` of this thread's last lane assignment.
    static LANE_CACHE: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

/// Per-query span recorder. Cheap to share (`Arc`), lock-light to record
/// into (per-thread lanes), bounded in memory (ring buffers). See the
/// module docs for the overhead contract.
pub struct TraceRecorder {
    query_id: u64,
    epoch: Instant,
    rec_id: u64,
    lanes: Vec<Mutex<Lane>>,
    next_lane: AtomicUsize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("query_id", &self.query_id)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder for `query_id` whose clock starts now.
    pub fn new(query_id: u64) -> Arc<TraceRecorder> {
        Self::with_epoch(query_id, Instant::now())
    }

    /// A recorder whose clock starts at an earlier `epoch` — the server
    /// captures the epoch before admission so the admission-wait span
    /// lands at the start of the timeline.
    pub fn with_epoch(query_id: u64, epoch: Instant) -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder {
            query_id,
            epoch,
            rec_id: RECORDER_SEQ.fetch_add(1, Ordering::Relaxed),
            lanes: (0..TRACE_LANES)
                .map(|_| Mutex::new(Lane::default()))
                .collect(),
            next_lane: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The query this recorder traces.
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Nanoseconds since the recorder's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.rel_ns(Instant::now())
    }

    /// An [`Instant`] as nanoseconds since the epoch (0 if earlier).
    #[inline]
    pub fn rel_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Records a span that started at `start_ns` and ends now.
    pub fn record(
        &self,
        name: &str,
        cat: &'static str,
        start_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        let dur = self.now_ns().saturating_sub(start_ns);
        self.record_span(name, cat, start_ns, dur, args);
    }

    /// Records a fully specified span (explicit duration).
    pub fn record_span(
        &self,
        name: &str,
        cat: &'static str,
        start_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        let lane_idx = self.lane_for_current_thread();
        let mut lane = self.lanes[lane_idx].lock().unwrap();
        if lane.thread.is_none() {
            lane.thread = Some(
                std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{lane_idx}")),
            );
        }
        if lane.spans.len() >= LANE_CAPACITY {
            lane.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        lane.spans.push_back(Span {
            name: name.to_string(),
            cat,
            start_ns,
            dur_ns,
            args,
        });
    }

    /// The calling thread's lane, assigned round-robin on first use and
    /// cached in a thread-local keyed by recorder identity.
    fn lane_for_current_thread(&self) -> usize {
        LANE_CACHE.with(|c| {
            let (rid, lane) = c.get();
            if rid == self.rec_id {
                lane
            } else {
                let lane = self.next_lane.fetch_add(1, Ordering::Relaxed) % TRACE_LANES;
                c.set((self.rec_id, lane));
                lane
            }
        })
    }

    /// Spans dropped to the ring bound (0 in healthy traces).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All recorded spans as `(lane, span)` pairs, lanes in index order,
    /// spans in recording order within a lane.
    pub fn spans(&self) -> Vec<(usize, Span)> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().unwrap();
            out.extend(lane.spans.iter().map(|s| (i, s.clone())));
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON: complete (`"ph":
    /// "X"`) events under `pid = query_id`, one `tid` per lane with a
    /// `thread_name` metadata record, timestamps in microseconds. Loads
    /// in Perfetto / `chrome://tracing` as-is.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev);
        };
        push_event(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{qid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"strato query {qid}\"}}}}",
                qid = self.query_id
            ),
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().unwrap();
            if let Some(name) = &lane.thread {
                push_event(
                    &mut out,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{},\"tid\":{i},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":{}}}}}",
                        self.query_id,
                        json_string(name)
                    ),
                );
            }
            for s in &lane.spans {
                let mut args = format!("{{\"query_id\":{}", self.query_id);
                for (k, v) in &s.args {
                    args.push_str(&format!(",\"{k}\":{v}"));
                }
                args.push('}');
                push_event(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{},\"tid\":{i},\"name\":{},\"cat\":\"{}\",\
                         \"ts\":{},\"dur\":{},\"args\":{args}}}",
                        self.query_id,
                        json_string(&s.name),
                        s.cat,
                        micros(s.start_ns),
                        micros(s.dur_ns),
                    ),
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// Nanoseconds as a microsecond decimal with nanosecond precision.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Minimal JSON string literal encoder (names can be arbitrary operator
/// names from client flows).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Log-bucketed latency histograms.
// ---------------------------------------------------------------------------

/// Upper bounds (nanoseconds, inclusive) of the finite histogram buckets:
/// powers of four from 1 µs to ≈ 4.2 s. Observations beyond the last
/// bound land in the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A lock-free log-bucketed latency histogram
/// ([`LATENCY_BUCKETS_NS`] bounds plus `+Inf`), the shape the server
/// renders as a Prometheus histogram. Used for end-to-end query latency,
/// admission-queue wait and memory-grant wait.
#[derive(Debug)]
pub struct LatencyHisto {
    /// One counter per finite bound, plus the overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHisto {
    /// A zeroed histogram.
    pub fn new() -> Self {
        LatencyHisto {
            buckets: (0..=LATENCY_BUCKETS_NS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = LATENCY_BUCKETS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(LATENCY_BUCKETS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistoSnapshot {
        HistoSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-integer snapshot of a [`LatencyHisto`]: per-bucket counts
/// (non-cumulative, `LATENCY_BUCKETS_NS.len() + 1` entries, last =
/// overflow), total nanoseconds, and total observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Per-bucket observation counts (not cumulative; last is `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of all observed durations, in nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE: estimates vs. measurements, per physical operator.
// ---------------------------------------------------------------------------

/// Renders an `EXPLAIN ANALYZE`-style report: the physical plan tree with
/// the optimizer's estimated cardinality/bytes/cost next to the measured
/// rows, UDF calls, task time, shipped bytes and spill activity of the
/// execution, per operator. The `Δrows` factor (actual / estimated rows)
/// is the estimate-vs-actual signal adaptive execution consumes.
pub fn explain_analyze(plan: &Plan, phys: &PhysPlan, stats: &ExecStats) -> String {
    let ops = stats.op_snapshots();
    let t = stats.totals();
    let mut out = format!(
        "EXPLAIN ANALYZE  total_cost={:.1}  shipped={}  spilled={} ({} runs)\n",
        phys.total_cost,
        fmt_bytes(t.bytes_shipped),
        fmt_bytes(t.spilled_bytes),
        t.spill_runs,
    );
    render_node(plan, &phys.root, &ops, 0, &mut out);
    out
}

fn render_node(
    plan: &Plan,
    node: &PhysNode,
    ops: &[crate::stats::OpSnapshot],
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    match node.logical.kind {
        NodeKind::Source(s) => {
            out.push_str(&format!(
                "{indent}scan {}  est: rows={:.0} bytes={}\n",
                plan.ctx.sources[s].name,
                node.est.rows,
                fmt_bytes(node.est.bytes() as u64),
            ));
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let ships: Vec<String> = node
                .ships
                .iter()
                .map(|s| match s {
                    Ship::Forward => "fwd".to_string(),
                    Ship::Partition(k) => format!("part({})", k.len()),
                    Ship::Broadcast => "bcast".to_string(),
                })
                .collect();
            out.push_str(&format!(
                "{indent}{} [{} | {:?}{} | ships {}]\n",
                op.name,
                op.pact.kind_name(),
                node.local,
                if node.combine { " +combine" } else { "" },
                ships.join(","),
            ));
            let act = ops.get(o).copied().unwrap_or_default();
            let delta = if node.est.rows > 0.0 {
                format!("{:.2}x", act.emits as f64 / node.est.rows)
            } else if act.emits == 0 {
                "1.00x".to_string()
            } else {
                "inf".to_string()
            };
            out.push_str(&format!(
                "{indent}  est: rows={:.0} bytes={} cost={:.1} | act: rows={} calls={} \
                 time={} shipped={} spilled={} ({} runs) | Δrows={delta}\n",
                node.est.rows,
                fmt_bytes(node.est.bytes() as u64),
                node.cost,
                act.emits,
                act.calls,
                fmt_nanos(act.nanos),
                fmt_bytes(act.shipped_bytes),
                fmt_bytes(act.spilled_bytes),
                act.spill_runs,
            ));
        }
    }
    for c in &node.children {
        render_node(plan, c, ops, depth + 1, out);
    }
}

/// `12345` → `"12.1KiB"` — human-scaled byte counts for the report.
fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

/// Nanoseconds scaled to the natural unit for the report.
fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_with_relative_timestamps() {
        let tr = TraceRecorder::new(7);
        let t0 = tr.now_ns();
        tr.record("step", "task", t0, vec![("stage", 1), ("partition", 0)]);
        let spans = tr.spans();
        assert_eq!(spans.len(), 1);
        let (_, s) = &spans[0];
        assert_eq!(s.name, "step");
        assert_eq!(s.cat, "task");
        assert!(s.start_ns >= t0);
        assert_eq!(s.args, vec![("stage", 1), ("partition", 0)]);
        assert_eq!(tr.query_id(), 7);
    }

    #[test]
    fn lane_ring_is_bounded_and_counts_drops() {
        let tr = TraceRecorder::new(1);
        for i in 0..(LANE_CAPACITY + 10) {
            tr.record_span("s", "task", i as u64, 1, vec![]);
        }
        // This thread uses one lane, so the ring bound applies directly.
        assert_eq!(tr.spans().len(), LANE_CAPACITY);
        assert_eq!(tr.dropped(), 10);
        // The oldest spans were dropped, the newest kept.
        let last = tr.spans().last().unwrap().1.start_ns;
        assert_eq!(last, (LANE_CAPACITY + 9) as u64);
    }

    #[test]
    fn chrome_json_has_events_and_escapes_names() {
        let tr = TraceRecorder::new(3);
        tr.record_span("weird\"name\n", "task", 1_500, 2_000, vec![("stage", 2)]);
        let json = tr.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"pid\":3"), "{json}");
        assert!(json.contains("\"query_id\":3"), "{json}");
        assert!(json.contains("\"stage\":2"), "{json}");
        assert!(json.contains("weird\\\"name\\n"), "{json}");
        // 1500 ns = 1.500 µs.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.000"), "{json}");
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_sum_consistent() {
        let h = LatencyHisto::new();
        h.observe_ns(500); // ≤ 1µs bucket
        h.observe_ns(3_000_000); // ≤ 4.096ms bucket
        h.observe_ns(10_000_000_000); // beyond the last bound → +Inf
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 500 + 3_000_000 + 10_000_000_000);
        assert_eq!(s.counts.len(), LATENCY_BUCKETS_NS.len() + 1);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[6], 1, "{:?}", s.counts);
        assert_eq!(*s.counts.last().unwrap(), 1);
        assert_eq!(s.counts.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn byte_and_nano_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.50µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
