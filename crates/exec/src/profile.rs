//! Runtime profiling of black-box operators.
//!
//! The paper's optimizer consumes hints that "can be provided by the user,
//! a language compiler (e.g., Hive or Pig), or obtained by **runtime
//! profiling**" (Section 7.1), and names "estimating the selectivity and
//! execution cost of black box operators" as future work (Section 9).
//! This module implements the profiling path: execute the data flow once
//! over a *sample* of the inputs, observe every operator's call count,
//! emit count, key cardinality and CPU time, and turn the observations
//! into [`CostHints`] — no user input, no semantics, just measurement of
//! the black boxes.

use crate::engine::{ExecError, Inputs};
use crate::operators::OpCtx;
use crate::stats::ExecStats;
use std::time::Instant;
use strato_core::LocalStrategy;
use strato_dataflow::{CostHints, NodeKind, Pact, Plan, PlanNode};
use strato_ir::interp::Interp;
use strato_record::{DataSet, Record};

/// Raw per-operator observations from one profiled run.
#[derive(Debug, Clone, Default)]
pub struct OpProfile {
    /// UDF invocations.
    pub calls: u64,
    /// Records emitted.
    pub emits: u64,
    /// Distinct key values seen on input 0 (keyed PACTs only).
    pub distinct_keys: u64,
    /// Nanoseconds spent inside the UDF (interpreter time).
    pub udf_nanos: u64,
    /// Average emitted-record width in bytes.
    pub avg_record_bytes: u64,
}

impl OpProfile {
    /// Observed selectivity (records emitted per call).
    pub fn selectivity(&self) -> f64 {
        if self.calls == 0 {
            1.0
        } else {
            self.emits as f64 / self.calls as f64
        }
    }

    /// Converts the observations into cost hints. `scale` is the factor by
    /// which the sample undercounts the full input (e.g. 10 for a 10%
    /// sample); it extrapolates the distinct-keys estimate, which unlike
    /// selectivity does not concentrate on small samples.
    pub fn to_hints(&self, scale: f64, nanos_per_cpu_unit: f64) -> CostHints {
        let mut h = CostHints::selectivity(self.selectivity());
        if self.calls > 0 {
            h = h.with_cpu(
                (self.udf_nanos as f64 / self.calls as f64 / nanos_per_cpu_unit).max(0.1),
            );
        }
        if self.distinct_keys > 0 {
            h = h.with_distinct_keys(((self.distinct_keys as f64) * scale).ceil() as u64);
        }
        if self.avg_record_bytes > 0 {
            h = h.with_record_bytes(self.avg_record_bytes);
        }
        h
    }
}

/// Takes a deterministic 1-in-`step` sample of each input data set.
pub fn sample_inputs(inputs: &Inputs, step: usize) -> Inputs {
    let step = step.max(1);
    inputs
        .iter()
        .map(|(name, ds)| {
            let sampled: DataSet = ds
                .iter()
                .enumerate()
                .filter(|(i, _)| i % step == 0)
                .map(|(_, r)| r.clone())
                .collect();
            (name.clone(), sampled)
        })
        .collect()
}

/// Executes `plan` once (logically, single partition) on `inputs`,
/// recording per-operator observations. Returns one [`OpProfile`] per
/// operator id of `plan.ctx`.
pub fn profile(plan: &Plan, inputs: &Inputs) -> Result<Vec<OpProfile>, ExecError> {
    let mut profiles = vec![OpProfile::default(); plan.ctx.ops.len()];
    let stats = ExecStats::new();
    exec_profiled(plan, &plan.root, inputs, &mut profiles, &stats)?;
    Ok(profiles)
}

/// Profiles a sampled run and converts to hints in one step.
///
/// `sample_step` = N keeps every N-th input record. `nanos_per_cpu_unit`
/// calibrates observed CPU time into cost-model units (the default of the
/// companion `repro` harness is 50 ns ≈ one `Burn` unit).
pub fn profile_hints(
    plan: &Plan,
    inputs: &Inputs,
    sample_step: usize,
    nanos_per_cpu_unit: f64,
) -> Result<Vec<CostHints>, ExecError> {
    let sampled = sample_inputs(inputs, sample_step);
    let profiles = profile(plan, &sampled)?;
    Ok(profiles
        .iter()
        .map(|p| p.to_hints(sample_step as f64, nanos_per_cpu_unit))
        .collect())
}

/// Counts distinct key values without materializing keys: sorts record
/// references with the borrowed key comparator and counts runs.
fn distinct_keys(records: &[Record], key: &[strato_record::AttrId]) -> u64 {
    let mut refs: Vec<&Record> = records.iter().collect();
    refs.sort_unstable_by(|a, b| crate::operators::key_cmp(a, b, key));
    let mut n = 0u64;
    let mut i = 0;
    while i < refs.len() {
        n += 1;
        i += crate::operators::run_len(&refs, i, key);
    }
    n
}

/// Applies one operator over materialized inputs (single partition) through
/// the shared operator runtime, with each PACT's default local strategy.
fn run_op(
    plan: &Plan,
    op_id: usize,
    interp: &Interp,
    inputs: &mut Vec<Vec<Record>>,
    stats: &ExecStats,
) -> Result<Vec<Record>, ExecError> {
    let op = &plan.ctx.ops[op_id];
    let ctx = OpCtx {
        interp: *interp,
        stats,
        batch_size: strato_record::RecordBatch::DEFAULT_SIZE,
    };
    crate::operators::apply_single(
        op,
        LocalStrategy::default_for(&op.pact),
        std::mem::take(inputs),
        ctx,
    )
}

fn exec_profiled(
    plan: &Plan,
    node: &PlanNode,
    inputs: &Inputs,
    profiles: &mut Vec<OpProfile>,
    stats: &ExecStats,
) -> Result<Vec<Record>, ExecError> {
    match node.kind {
        NodeKind::Source(s) => {
            let src = &plan.ctx.sources[s];
            let ds = inputs
                .get(&src.name)
                .ok_or_else(|| ExecError::MissingInput(src.name.clone()))?;
            // Widen to global layout (same as the engine's scan).
            Ok(ds
                .iter()
                .map(|r| {
                    let mut out = Record::nulls(plan.ctx.width());
                    for (i, &a) in src.attrs.iter().enumerate() {
                        out.set_field(a.index(), r.field(i).clone());
                    }
                    out
                })
                .collect())
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let child_outs: Result<Vec<Vec<Record>>, ExecError> = node
                .children
                .iter()
                .map(|c| exec_profiled(plan, c, inputs, profiles, stats))
                .collect();
            let mut child_outs = child_outs?;

            // Observe input-0 key cardinality for keyed PACTs.
            if matches!(
                op.pact,
                Pact::Reduce { .. } | Pact::Match { .. } | Pact::CoGroup { .. }
            ) {
                profiles[o].distinct_keys = distinct_keys(&child_outs[0], &op.key_attrs[0]);
            }

            // Run the operator through an instrumented runner; the shared
            // counters are delta-ed around the call.
            let interp = Interp::default();
            let (c0, e0, ..) = stats.snapshot();
            let t0 = Instant::now();
            let out = run_op(plan, o, &interp, &mut child_outs, stats)?;
            let nanos = t0.elapsed().as_nanos() as u64;
            let (c1, e1, ..) = stats.snapshot();
            let p = &mut profiles[o];
            p.calls = c1 - c0;
            p.emits = e1 - e0;
            p.udf_nanos = nanos;
            if !out.is_empty() {
                p.avg_record_bytes =
                    (out.iter().map(Record::encoded_len).sum::<usize>() / out.len()) as u64;
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    #[test]
    fn sampling_keeps_every_nth_record() {
        let mut inputs = Inputs::new();
        let ds: DataSet = (0..10i64)
            .map(|i| Record::from_values([Value::Int(i)]))
            .collect();
        inputs.insert("s".into(), ds);
        let sampled = sample_inputs(&inputs, 3);
        assert_eq!(sampled["s"].len(), 4); // 0, 3, 6, 9
    }

    #[test]
    fn sampling_step_one_is_identity() {
        let mut inputs = Inputs::new();
        let ds: DataSet = (0..5i64)
            .map(|i| Record::from_values([Value::Int(i)]))
            .collect();
        inputs.insert("s".into(), ds.clone());
        let sampled = sample_inputs(&inputs, 1);
        assert_eq!(sampled["s"], ds);
        // Step 0 is clamped to 1.
        let sampled0 = sample_inputs(&inputs, 0);
        assert_eq!(sampled0["s"], ds);
    }

    #[test]
    fn op_profile_hint_conversion() {
        let p = OpProfile {
            calls: 100,
            emits: 25,
            distinct_keys: 10,
            udf_nanos: 100 * 500,
            avg_record_bytes: 64,
        };
        assert_eq!(p.selectivity(), 0.25);
        let h = p.to_hints(4.0, 50.0);
        assert_eq!(h.avg_emits_per_call, 0.25);
        assert_eq!(h.cpu_per_call, 10.0);
        assert_eq!(h.distinct_keys, Some(40));
        assert_eq!(h.avg_record_bytes, Some(64));
    }

    #[test]
    fn zero_call_profile_defaults() {
        let p = OpProfile::default();
        assert_eq!(p.selectivity(), 1.0);
        let h = p.to_hints(1.0, 50.0);
        assert_eq!(h.avg_emits_per_call, 1.0);
        assert_eq!(h.distinct_keys, None);
    }
}
