//! Runtime profiling of black-box operators.
//!
//! The paper's optimizer consumes hints that "can be provided by the user,
//! a language compiler (e.g., Hive or Pig), or obtained by **runtime
//! profiling**" (Section 7.1), and names "estimating the selectivity and
//! execution cost of black box operators" as future work (Section 9).
//! This module implements the profiling path: execute the data flow once
//! over a *sample* of the inputs, observe every operator's call count,
//! emit count, key cardinality and CPU time, and turn the observations
//! into [`CostHints`] — no user input, no semantics, just measurement of
//! the black boxes.
//!
//! Profiling runs through the **production streaming runtime** (the same
//! task graph and scheduler as [`crate::execute`], at `dop = 1`) with the
//! per-operator detail counters of [`ExecStats::for_profiling`] switched
//! on: each task's step time is attributed to its operator, keyed
//! operators report the distinct input keys they observed while grouping,
//! and the UDF call path records emitted bytes. Map fusion is disabled for
//! the profiled run so timing attribution stays exactly per-operator.

use crate::engine::{ExecError, Inputs};
use crate::pipeline::{self, ExecOptions};
use crate::stats::ExecStats;
use strato_dataflow::{CostHints, Plan};
use strato_record::DataSet;

/// Raw per-operator observations from one profiled run.
#[derive(Debug, Clone, Default)]
pub struct OpProfile {
    /// UDF invocations.
    pub calls: u64,
    /// Records emitted.
    pub emits: u64,
    /// Distinct key values seen on input 0 (keyed PACTs only).
    pub distinct_keys: u64,
    /// Nanoseconds spent inside the operator's tasks (UDF interpretation
    /// plus the operator's own grouping/joining work).
    pub udf_nanos: u64,
    /// Average emitted-record width in bytes.
    pub avg_record_bytes: u64,
    /// Records the operator spilled to sorted runs on disk during the
    /// profiled run (0 when the sample fit the memory budget).
    pub records_spilled: u64,
    /// On-disk bytes of those runs.
    pub spilled_bytes: u64,
    /// Number of sorted runs the operator wrote under memory pressure.
    pub spill_runs: u64,
}

impl OpProfile {
    /// Observed selectivity (records emitted per call).
    pub fn selectivity(&self) -> f64 {
        if self.calls == 0 {
            1.0
        } else {
            self.emits as f64 / self.calls as f64
        }
    }

    /// Converts the observations into cost hints. `scale` is the factor by
    /// which the sample undercounts the full input (e.g. 10 for a 10%
    /// sample); it extrapolates the distinct-keys estimate, which unlike
    /// selectivity does not concentrate on small samples.
    pub fn to_hints(&self, scale: f64, nanos_per_cpu_unit: f64) -> CostHints {
        let mut h = CostHints::selectivity(self.selectivity());
        if self.calls > 0 {
            h = h.with_cpu(
                (self.udf_nanos as f64 / self.calls as f64 / nanos_per_cpu_unit).max(0.1),
            );
        }
        if self.distinct_keys > 0 {
            h = h.with_distinct_keys(((self.distinct_keys as f64) * scale).ceil() as u64);
        }
        if self.avg_record_bytes > 0 {
            h = h.with_record_bytes(self.avg_record_bytes);
        }
        h
    }
}

/// Takes a deterministic 1-in-`step` sample of each input data set.
pub fn sample_inputs(inputs: &Inputs, step: usize) -> Inputs {
    let step = step.max(1);
    inputs
        .iter()
        .map(|(name, ds)| {
            let sampled: DataSet = ds
                .iter()
                .enumerate()
                .filter(|(i, _)| i % step == 0)
                .map(|(_, r)| r.clone())
                .collect();
            (name.clone(), sampled)
        })
        .collect()
}

/// Executes `plan` once through the streaming runtime (single partition,
/// logical strategies, fusion off), recording per-operator observations.
/// Returns one [`OpProfile`] per operator id of `plan.ctx`.
pub fn profile(plan: &Plan, inputs: &Inputs) -> Result<Vec<OpProfile>, ExecError> {
    let compiled = pipeline::compile_logical(plan, &plan.root);
    let opts = ExecOptions {
        // One task per operator: step time is per-operator time.
        fuse_maps: false,
        ..ExecOptions::default()
    };
    let stats = ExecStats::for_profiling(plan.ctx.ops.len());
    pipeline::run_streaming(plan, &compiled, inputs, 1, &opts, &stats, None)?;
    Ok(stats
        .op_snapshots()
        .into_iter()
        .map(|s| OpProfile {
            calls: s.calls,
            emits: s.emits,
            distinct_keys: s.distinct_keys,
            udf_nanos: s.nanos,
            avg_record_bytes: s.out_bytes.checked_div(s.emits).unwrap_or(0),
            records_spilled: s.records_spilled,
            spilled_bytes: s.spilled_bytes,
            spill_runs: s.spill_runs,
        })
        .collect())
}

/// Profiles a sampled run and converts to hints in one step.
///
/// `sample_step` = N keeps every N-th input record. `nanos_per_cpu_unit`
/// calibrates observed CPU time into cost-model units (the default of the
/// companion `repro` harness is 50 ns ≈ one `Burn` unit).
pub fn profile_hints(
    plan: &Plan,
    inputs: &Inputs,
    sample_step: usize,
    nanos_per_cpu_unit: f64,
) -> Result<Vec<CostHints>, ExecError> {
    let sampled = sample_inputs(inputs, sample_step);
    let profiles = profile(plan, &sampled)?;
    Ok(profiles
        .iter()
        .map(|p| p.to_hints(sample_step as f64, nanos_per_cpu_unit))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::{Record, Value};

    #[test]
    fn sampling_keeps_every_nth_record() {
        let mut inputs = Inputs::new();
        let ds: DataSet = (0..10i64)
            .map(|i| Record::from_values([Value::Int(i)]))
            .collect();
        inputs.insert("s".into(), ds);
        let sampled = sample_inputs(&inputs, 3);
        assert_eq!(sampled["s"].len(), 4); // 0, 3, 6, 9
    }

    #[test]
    fn sampling_step_one_is_identity() {
        let mut inputs = Inputs::new();
        let ds: DataSet = (0..5i64)
            .map(|i| Record::from_values([Value::Int(i)]))
            .collect();
        inputs.insert("s".into(), ds.clone());
        let sampled = sample_inputs(&inputs, 1);
        assert_eq!(sampled["s"], ds);
        // Step 0 is clamped to 1.
        let sampled0 = sample_inputs(&inputs, 0);
        assert_eq!(sampled0["s"], ds);
    }

    #[test]
    fn op_profile_hint_conversion() {
        let p = OpProfile {
            calls: 100,
            emits: 25,
            distinct_keys: 10,
            udf_nanos: 100 * 500,
            avg_record_bytes: 64,
            ..OpProfile::default()
        };
        assert_eq!(p.selectivity(), 0.25);
        let h = p.to_hints(4.0, 50.0);
        assert_eq!(h.avg_emits_per_call, 0.25);
        assert_eq!(h.cpu_per_call, 10.0);
        assert_eq!(h.distinct_keys, Some(40));
        assert_eq!(h.avg_record_bytes, Some(64));
    }

    #[test]
    fn zero_call_profile_defaults() {
        let p = OpProfile::default();
        assert_eq!(p.selectivity(), 1.0);
        let h = p.to_hints(1.0, 50.0);
        assert_eq!(h.avg_emits_per_call, 1.0);
        assert_eq!(h.distinct_keys, None);
    }
}
