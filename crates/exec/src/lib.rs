//! # strato-exec — parallel in-process execution engine
//!
//! The substitute for the paper's Nephele engine (see `DESIGN.md`): a
//! partitioned, multi-threaded, in-process executor that runs bound plans
//! by interpreting their UDFs' three-address code.
//!
//! The runtime is a streaming task-graph pipeline over a fixed worker
//! pool:
//!
//! * [`operators`] — one physical [`operators::Operator`]
//!   (open / push-batch / finish) per PACT, covering the ship-independent
//!   local strategies (pipelined map — optionally a fused map chain —
//!   hash/sort grouping, hash join with build side, sort-merge join, block
//!   nested loops, sort-merge co-group);
//! * [`ship`](crate::ship) (private) — per-batch routing between
//!   partitions: forward, hash repartition (no serialization on the hot
//!   path; bytes accounted via `encoded_len`, with opt-in wire validation)
//!   and `Arc`-shared broadcast;
//! * [`pipeline`] — lowers `(Plan, PhysPlan)` to a stage tree, fuses
//!   adjacent Forward-shipped Maps, flattens to one task per
//!   `stage × partition`, and schedules the tasks cooperatively on
//!   [`ExecOptions::workers`] threads with bounded-channel backpressure;
//!   the **same** lowering and operators serve both entry points. Worker
//!   panics are contained per task and surfaced as [`ExecError::Panic`].
//!
//! Two entry points:
//!
//! * [`execute_logical`] — single-partition reference execution of a
//!   *logical* plan (no strategies). Deterministic and simple; this is the
//!   oracle the plan-equivalence test harness uses.
//! * [`execute`] — full physical execution of a [`strato_core::PhysPlan`]
//!   with `dop` partitions streamed across the worker pool.
//!
//! ## Semantics notes
//!
//! * Records cross operator boundaries in **global record layout**; the
//!   engine widens source records into global layout at scan time.
//! * Match joins follow SQL flavour: records with null key components match
//!   nothing. Reduce/CoGroup group null keys together.

#![warn(missing_docs)]

pub mod engine;
pub mod operators;
pub mod pipeline;
pub mod profile;
mod ship;
pub mod stats;

pub use engine::{execute, execute_logical, execute_logical_with, execute_with, ExecError, Inputs};
pub use pipeline::ExecOptions;
pub use profile::{profile, profile_hints, sample_inputs, OpProfile};
pub use stats::{ExecStats, OpSnapshot};
