//! # strato-exec — parallel in-process execution engine
//!
//! The substitute for the paper's Nephele engine (see `DESIGN.md`): a
//! partitioned, multi-threaded, in-process executor that runs bound plans
//! by interpreting their UDFs' three-address code.
//!
//! The runtime is a streaming task-graph pipeline over a fixed worker
//! pool:
//!
//! * [`operators`] — one physical [`operators::Operator`]
//!   (open / push-batch / finish) per PACT, covering the ship-independent
//!   local strategies (pipelined map — optionally a fused map chain —
//!   hash/sort grouping, hash join with build side, sort-merge join, block
//!   nested loops, sort-merge co-group);
//! * `ship` (private) — per-batch routing between
//!   partitions: forward, hash repartition (no serialization on the hot
//!   path; bytes accounted via `encoded_len`, with opt-in wire validation)
//!   and `Arc`-shared broadcast;
//! * [`pipeline`] — lowers `(Plan, PhysPlan)` to a stage tree, fuses
//!   adjacent Forward-shipped Maps, flattens to one task per
//!   `stage × partition`, and schedules the tasks cooperatively on
//!   [`ExecOptions::workers`] threads with bounded-channel backpressure;
//!   the **same** lowering and operators serve both entry points. Worker
//!   panics are contained per task and surfaced as [`ExecError::Panic`].
//! * [`spill`] — out-of-core execution: blocking operators register their
//!   buffered state with a shared per-execution [`MemoryGovernor`]
//!   ([`ExecOptions::mem_budget`], default = the cost model's budget) and,
//!   under pressure, flush it to sorted runs on disk, finishing via a
//!   loser-tree k-way merge; the pre-ship combiner instead flushes its
//!   partials downstream Hadoop-style.
//! * [`runtime`] — the shared engine runtime: one process-wide
//!   [`EngineRuntime`] worker pool scheduling tasks from all in-flight
//!   queries round-robin (per-query fairness), and one [`GlobalMemory`]
//!   budget that per-query governors carve their grants from. The
//!   single-query entry points below are the `runtime = None` special
//!   case of the same scheduler — there is no second executor.
//! * [`trace`] — opt-in end-to-end query tracing
//!   ([`ExecOptions::trace`]): a lock-light per-worker span recorder fed
//!   by the pipeline, ship, spill and runtime layers, rendered as Chrome
//!   trace-event JSON ([`TraceRecorder::chrome_trace_json`]) or as an
//!   estimate-vs-actual [`trace::explain_analyze`] report; plus the
//!   log-bucketed [`LatencyHisto`] the server exports from `/metrics`.
//!
//! Two entry points (plus their [`EngineRuntime`] counterparts):
//!
//! * [`execute_logical`] — single-partition reference execution of a
//!   *logical* plan (no strategies). Deterministic and simple; this is the
//!   oracle the plan-equivalence test harness uses.
//! * [`execute`] — full physical execution of a [`strato_core::PhysPlan`]
//!   with `dop` partitions streamed across the worker pool.
//!
//! ## Semantics notes
//!
//! * Records cross operator boundaries in **global record layout**; the
//!   engine widens source records into global layout at scan time.
//! * Match joins follow SQL flavour: records with null key components match
//!   nothing. Reduce/CoGroup group null keys together.

#![warn(missing_docs)]

pub mod engine;
pub mod operators;
pub mod pipeline;
pub mod profile;
pub mod runtime;
mod ship;
pub mod spill;
pub mod stats;
pub mod trace;

pub use engine::{execute, execute_logical, execute_logical_with, execute_with, ExecError, Inputs};
pub use pipeline::{BatchLayout, ExecOptions};
pub use profile::{profile, profile_hints, sample_inputs, OpProfile};
pub use runtime::{EngineRuntime, RuntimeOptions, RuntimeSnapshot};
pub use spill::{GlobalMemory, MemoryGovernor, MemoryGrant};
pub use stats::{ExecStats, OpSnapshot, StatsSnapshot};
pub use trace::{explain_analyze, HistoSnapshot, LatencyHisto, Span, TraceRecorder};

/// Shared IR builders for this crate's test modules.
#[cfg(test)]
pub(crate) mod testutil {
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};

    /// In-place `Σ field` — the canonical *combinable* reduce UDF (fold
    /// written back to the field it was read from).
    pub(crate) fn sum_inplace(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("sum_ip", UdfKind::Group, vec![w]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, field, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }
}
