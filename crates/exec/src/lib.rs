//! # strato-exec — parallel in-process execution engine
//!
//! The substitute for the paper's Nephele engine (see `DESIGN.md`): a
//! partitioned, multi-threaded, in-process executor that runs bound plans
//! by interpreting their UDFs' three-address code. It implements the ship
//! strategies (forward / hash repartition / broadcast) and local strategies
//! (pipelined map, hash/sort grouping, hash join with build side,
//! sort-merge join, block nested loops, sort-merge co-group) chosen by the
//! physical optimizer, and accounts network bytes by actually serializing
//! shipped records with the wire format.
//!
//! Two entry points:
//!
//! * [`execute_logical`] — single-partition reference execution of a
//!   *logical* plan (no strategies). Deterministic and simple; this is the
//!   oracle the plan-equivalence test harness uses.
//! * [`execute`] — full physical execution of a [`strato_core::PhysPlan`]
//!   with `dop` worker partitions (one thread each for local work).
//!
//! ## Semantics notes
//!
//! * Records cross operator boundaries in **global record layout**; the
//!   engine widens source records into global layout at scan time.
//! * Match joins follow SQL flavour: records with null key components match
//!   nothing. Reduce/CoGroup group null keys together.

#![warn(missing_docs)]

pub mod engine;
pub mod profile;
pub mod stats;

pub use engine::{execute, execute_logical, ExecError, Inputs};
pub use profile::{profile, profile_hints, sample_inputs, OpProfile};
pub use stats::ExecStats;
