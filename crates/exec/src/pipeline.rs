//! Lowering plans to a streaming task graph, and the worker-pool scheduler
//! that drives it.
//!
//! This module is the **single** execution path of the crate. Both entry
//! points lower to the same `Stage` tree, flatten it into a `TaskGraph`
//! and run through the same scheduler:
//!
//! * [`crate::execute_logical`] compiles the *logical* plan with
//!   `compile_logical` (all-Forward ships, each PACT's default local
//!   algorithm) and runs it at `dop = 1`;
//! * [`crate::execute`] compiles the `(Plan, PhysPlan)` pair with
//!   `compile_physical` (the optimizer's ship + local strategy choices)
//!   and runs it at the requested degree of parallelism.
//!
//! ## Execution model
//!
//! The stage tree is flattened into one **task** per `stage × partition`.
//! Tasks communicate through bounded channels of `Arc<RecordBatch>`es: a
//! task pulls arriving batches from its input channels, drives its
//! [`crate::operators::Operator`] incrementally (open → push per batch →
//! finish once every input channel closes), and routes its output batches
//! downstream through a per-task `crate::ship::Router` — so shipping is
//! per-batch and producer stages overlap consumer stages, instead of the
//! old materialize-everything-then-ship barrier.
//!
//! Tasks are *cooperatively* scheduled onto a fixed pool of
//! [`ExecOptions::workers`] threads (morsel style): a task never blocks a
//! worker. It yields when its inputs are momentarily empty (re-queued when
//! a batch arrives) or when a downstream channel is at
//! [`ExecOptions::channel_capacity`] (re-queued when the consumer drains —
//! this is the backpressure that bounds in-flight memory). Because the
//! graph is a tree whose sink never blocks, a full channel always implies
//! a runnable consumer, so the scheduler cannot deadlock at any pool size.
//!
//! Worker panics (e.g. a buggy third-party UDF component that aborts
//! instead of erroring) are caught at the task boundary and surfaced as
//! [`ExecError::Panic`] with the operator's name — a panicking UDF fails
//! the query, not the process.
//!
//! Adjacent Forward-shipped Map stages are **fused** at lowering time into
//! a single task (a [`crate::operators`] map chain): records flow through
//! the chained UDFs without intermediate batch formation or a channel hop.
//! [`ExecOptions::fuse_maps`] disables this (the profiler does, to keep
//! per-task timing attribution exactly per-operator).
//!
//! Blocking operators (Reduce, Match, Cross, CoGroup) keep buffering
//! internally, so operator semantics — and the equivalence oracle — are
//! unchanged; only the transport is streaming.
//!
//! ## Standalone vs shared-runtime execution
//!
//! The scheduler above is **one** code path with two drivers. Standalone
//! (`runtime = None`), the driver spins up its own scoped worker pool —
//! exactly the historic behavior. On a shared
//! [`EngineRuntime`], the execution
//! instead *registers* its ready queue with the process-wide pool
//! (through the `runtime::QueryTasks` trait) and the same task-step
//! function runs on the shared workers, interleaved round-robin with
//! every other in-flight query. Task order within a query, operator
//! semantics, and results are identical either way — the single-query
//! path is a special case of the shared one, not a second executor.
//!
//! Reduces whose UDF the static analysis proved **combinable** escape the
//! buffering: the optimizer may mark them (`PhysNode::combine`) and this
//! lowering then splices a **pre-ship combiner** stage — a streaming
//! hash pre-aggregator ([`crate::operators::streamagg`]) — between the
//! input subtree and the Partition ship, so only one partial record per
//! key per producing partition crosses the wire. The same streaming
//! operator serves as the `LocalStrategy::StreamAgg` local algorithm of
//! the final Reduce. [`ExecOptions::combine`] gates the insertion; the
//! logical oracle never combines.

use crate::engine::{ExecError, Inputs};
use crate::operators::{self, OpCtx, Operator};
use crate::runtime::{EngineRuntime, QueryTasks, RtShared};
use crate::ship::{Outbound, Router};
use crate::spill::MemoryGovernor;
use crate::stats::ExecStats;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use strato_core::{LocalStrategy, PhysNode, Ship};
use strato_dataflow::{NodeKind, Pact, Plan, PlanNode};
use strato_ir::interp::Interp;
use strato_record::{BatchBuilder, DataSet, Record, RecordBatch};

/// How batches are laid out on the engine's scan and shuffle hot paths.
///
/// Purely an execution knob: results, ship accounting and UDF-call stats
/// are byte-identical under either layout (the equivalence suite sweeps
/// it as an axis). `RowView` is the escape hatch that reproduces the
/// historic row-at-a-time engine exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchLayout {
    /// Scans emit row-major batches of owned [`Record`]s; every operator
    /// and router works record-at-a-time.
    RowView,
    /// Scans build column-major batches ([`strato_record::ColumnBatch`])
    /// with the widen step fused into column construction, and the
    /// Partition router / Map / StreamAgg hot paths run their vectorized
    /// columnar kernels.
    #[default]
    ColumnarNative,
}

/// Tuning knobs of one execution. The defaults reproduce production
/// behavior; tests sweep them.
///
/// Results are byte-identical at every option combination — options change
/// resource usage (parallelism, memory, shipped volume), never semantics.
///
/// ```
/// use strato_exec::ExecOptions;
/// let opts = ExecOptions {
///     batch_size: 256,
///     mem_budget: Some(16 << 20), // spill past 16 MiB of buffered state
///     ..ExecOptions::default()
/// };
/// assert!(opts.combine && opts.fuse_maps, "optimizations default on");
/// ```
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Target records per batch flowing between operators.
    pub batch_size: usize,
    /// When set, hash-partition shipping round-trips every record through
    /// the wire format and verifies the decode — the seed engine's
    /// serialization check, now opt-in (off the hot path).
    pub validate_wire: bool,
    /// Worker threads driving the task graph. `None` picks the machine's
    /// available parallelism for parallel runs and `1` for `dop = 1` runs
    /// (which then execute inline on the calling thread, keeping the
    /// logical oracle deterministic and allocation-light). Always clamped
    /// to the number of tasks.
    ///
    /// **Runtime-scoped semantics**: on a shared
    /// [`EngineRuntime`] this knob is
    /// ignored — the runtime's fixed pool
    /// ([`RuntimeOptions::workers`](crate::runtime::RuntimeOptions))
    /// drives every query it runs.
    pub workers: Option<usize>,
    /// Bound of each inter-task channel, in batches. Full channels park
    /// the producer task (backpressure); capacity 1 forces strict
    /// lock-step streaming.
    pub channel_capacity: usize,
    /// Fuse adjacent Forward-shipped Map stages into one task at lowering
    /// time. On by default; the profiler turns it off so task timing is
    /// attributed exactly per operator.
    pub fuse_maps: bool,
    /// Honor the optimizer's pre-ship combiner choices
    /// ([`strato_core::PhysNode::combine`]): insert a streaming
    /// pre-aggregation stage ahead of Partition-shipped combinable
    /// Reduces. On by default; the equivalence suite sweeps it as an axis
    /// (results must be byte-identical either way, only shipped volume
    /// changes).
    pub combine: bool,
    /// Memory budget in bytes shared by all blocking operators of the
    /// execution ([`crate::spill::MemoryGovernor`]). When buffered state
    /// exceeds it, operators shed to sorted runs on disk (the combiner
    /// flushes partials downstream instead) and finish via k-way merge —
    /// results are byte-identical, only memory and disk traffic change.
    /// `None` disables governance entirely. The default equals the cost
    /// model's [`strato_core::cost::CostWeights::mem_budget`], so the
    /// optimizer's spill charges describe what this engine actually does.
    ///
    /// **Runtime-scoped semantics**: on a shared
    /// [`EngineRuntime`] this becomes a
    /// *cap* on the slice the query may carve from the runtime's global
    /// [`GlobalMemory`](crate::spill::GlobalMemory) pool — the actual
    /// budget is `min(mem_budget, pool remainder)`, and `None` claims the
    /// whole remainder.
    pub mem_budget: Option<u64>,
    /// Parent directory for the execution's scoped spill directory
    /// (`None` = the OS temp dir). The scoped directory is created lazily
    /// on first spill and removed when the execution ends — on success,
    /// error and contained worker panic alike.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Batch layout on the scan/shuffle hot paths (see [`BatchLayout`]).
    /// Columnar by default; `RowView` reproduces the row-at-a-time engine.
    pub layout: BatchLayout,
    /// Span recorder for end-to-end query tracing
    /// ([`crate::trace::TraceRecorder`]). `None` (the default) disables
    /// tracing entirely: every instrumentation point reduces to one
    /// `Option` check, so the untraced hot path stays unmeasurably close
    /// to a build without the subsystem (pinned by the `engine_trace`
    /// bench group). When set, the execution records task-step,
    /// ship/scatter, spill-run, k-way-merge and memory-grant spans into
    /// the recorder's bounded per-worker ring buffers.
    pub trace: Option<std::sync::Arc<crate::trace::TraceRecorder>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: RecordBatch::DEFAULT_SIZE,
            validate_wire: false,
            workers: None,
            channel_capacity: 8,
            fuse_maps: true,
            combine: true,
            mem_budget: Some(strato_core::cost::DEFAULT_MEM_BUDGET_BYTES),
            spill_dir: None,
            layout: BatchLayout::default(),
            trace: None,
        }
    }
}

/// One node of the compiled operator DAG.
#[derive(Debug, Clone)]
pub(crate) enum StageKind {
    /// Scan a source (index into `plan.ctx.sources`).
    Scan(usize),
    /// Apply operator `op` with the given strategies.
    Apply {
        /// Index into `plan.ctx.ops`.
        op: usize,
        /// Local algorithm.
        local: LocalStrategy,
        /// Ship strategy per input.
        ships: Vec<Ship>,
    },
    /// Pre-ship combiner of Reduce `op`: streaming partial aggregation on
    /// the producing partitions (Forward input), feeding the Reduce's
    /// Partition ship.
    Combine {
        /// Index into `plan.ctx.ops` (the Reduce being combined for).
        op: usize,
    },
}

/// A compiled execution stage: strategy-annotated plan structure, shared
/// by the logical oracle and the parallel engine.
#[derive(Debug, Clone)]
pub(crate) struct Stage {
    pub(crate) kind: StageKind,
    pub(crate) children: Vec<Stage>,
}

/// Lowers a logical plan: every ship is `Forward`, every operator runs its
/// PACT's default local algorithm (see [`LocalStrategy::default_for`]).
pub(crate) fn compile_logical(plan: &Plan, node: &PlanNode) -> Stage {
    match node.kind {
        NodeKind::Source(s) => Stage {
            kind: StageKind::Scan(s),
            children: vec![],
        },
        NodeKind::Op(o) => Stage {
            kind: StageKind::Apply {
                op: o,
                local: LocalStrategy::default_for(&plan.ctx.ops[o].pact),
                ships: vec![Ship::Forward; node.children.len()],
            },
            children: node
                .children
                .iter()
                .map(|c| compile_logical(plan, c))
                .collect(),
        },
    }
}

/// Lowers a physical plan: ship and local strategies come from the
/// optimizer's choices. When `combine` is set (the default), a Reduce the
/// optimizer marked [`PhysNode::combine`] gets a pre-ship combiner stage
/// spliced between its input subtree and its Partition ship.
pub(crate) fn compile_physical(node: &PhysNode, combine: bool) -> Stage {
    match node.logical.kind {
        NodeKind::Source(s) => Stage {
            kind: StageKind::Scan(s),
            children: vec![],
        },
        NodeKind::Op(o) => {
            let mut children: Vec<Stage> = node
                .children
                .iter()
                .map(|c| compile_physical(c, combine))
                .collect();
            if combine && node.combine {
                let input = children.remove(0);
                children.insert(
                    0,
                    Stage {
                        kind: StageKind::Combine { op: o },
                        children: vec![input],
                    },
                );
            }
            Stage {
                kind: StageKind::Apply {
                    op: o,
                    local: node.local,
                    ships: node.ships.clone(),
                },
                children,
            }
        }
    }
}

/// Widens source records to global layout: field `i` of the source goes to
/// its global attribute position.
pub(crate) fn widen(
    records: &DataSet,
    attrs: &[strato_record::AttrId],
    width: usize,
) -> Vec<Record> {
    records
        .iter()
        .map(|r| {
            let mut out = Record::nulls(width);
            for (i, &a) in attrs.iter().enumerate() {
                out.set_field(a.index(), r.field(i).clone());
            }
            out
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Task graph: the Stage tree flattened, with Map fusion.
// ---------------------------------------------------------------------------

/// One input edge of a flattened stage.
#[derive(Debug, Clone)]
struct FlatInput {
    /// Producer stage id.
    child: usize,
    /// How the producer's partitions reach this stage's partitions.
    ship: Ship,
}

#[derive(Debug, Clone)]
enum FlatKind {
    /// Scan a source (index into `plan.ctx.sources`).
    Scan(usize),
    /// Apply `op`, then the `fused` Map chain, as one task.
    Apply {
        op: usize,
        local: LocalStrategy,
        /// Map operator ids fused behind `op` (applied in order).
        fused: Vec<usize>,
    },
    /// Pre-ship combiner of Reduce `op` (streaming partial aggregation).
    Combine { op: usize },
}

#[derive(Debug, Clone)]
struct FlatStage {
    kind: FlatKind,
    inputs: Vec<FlatInput>,
    /// `(consumer stage, port)` — `None` for the root.
    consumer: Option<(usize, usize)>,
    /// First channel id of each input port; port `i`, partition `p` reads
    /// channel `chan_base[i] + p`.
    chan_base: Vec<usize>,
}

/// The flattened, fusion-applied form of a [`Stage`] tree. Stage ids are
/// post-order; the root is always the last stage.
pub(crate) struct TaskGraph {
    stages: Vec<FlatStage>,
    n_chans: usize,
}

impl TaskGraph {
    pub(crate) fn build(plan: &Plan, root: &Stage, dop: usize, fuse_maps: bool) -> TaskGraph {
        let mut stages: Vec<FlatStage> = Vec::new();
        flatten(plan, root, fuse_maps, &mut stages);
        // Wire consumers and assign contiguous channel ranges per edge.
        let mut n_chans = 0;
        for s in 0..stages.len() {
            let inputs = stages[s].inputs.clone();
            for (port, inp) in inputs.iter().enumerate() {
                stages[inp.child].consumer = Some((s, port));
                stages[s].chan_base.push(n_chans);
                n_chans += dop;
            }
        }
        TaskGraph { stages, n_chans }
    }

    /// Number of stages after fusion (one task per stage per partition).
    #[cfg(test)]
    pub(crate) fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

/// Post-order flattening; returns the flat id realizing `stage`. A
/// Forward-shipped Map whose producer is a Map (chain) is fused into the
/// producer's stage instead of becoming its own.
fn flatten(plan: &Plan, stage: &Stage, fuse_maps: bool, stages: &mut Vec<FlatStage>) -> usize {
    let children: Vec<usize> = stage
        .children
        .iter()
        .map(|c| flatten(plan, c, fuse_maps, stages))
        .collect();
    match &stage.kind {
        StageKind::Scan(s) => {
            stages.push(FlatStage {
                kind: FlatKind::Scan(*s),
                inputs: vec![],
                consumer: None,
                chan_base: vec![],
            });
            stages.len() - 1
        }
        StageKind::Combine { op } => {
            // Partition-local: consumes its producer's output in place
            // (Forward) and never fuses.
            stages.push(FlatStage {
                kind: FlatKind::Combine { op: *op },
                inputs: vec![FlatInput {
                    child: children[0],
                    ship: Ship::Forward,
                }],
                consumer: None,
                chan_base: vec![],
            });
            stages.len() - 1
        }
        StageKind::Apply { op, local, ships } => {
            if fuse_maps
                && matches!(plan.ctx.ops[*op].pact, Pact::Map)
                && ships.len() == 1
                && ships[0] == Ship::Forward
            {
                let c = children[0];
                if let FlatKind::Apply {
                    op: head, fused, ..
                } = &mut stages[c].kind
                {
                    if matches!(plan.ctx.ops[*head].pact, Pact::Map) {
                        fused.push(*op);
                        return c;
                    }
                }
            }
            stages.push(FlatStage {
                kind: FlatKind::Apply {
                    op: *op,
                    local: *local,
                    fused: vec![],
                },
                inputs: children
                    .into_iter()
                    .zip(ships.iter().cloned())
                    .map(|(child, ship)| FlatInput { child, ship })
                    .collect(),
                consumer: None,
                chan_base: vec![],
            });
            stages.len() - 1
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler core: bounded channels + cooperative task states.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Waiting for input data or output space; not queued.
    Idle,
    /// In the ready queue.
    Ready,
    /// A worker is executing a step.
    Running,
    /// Running, and new input/space arrived meanwhile: re-queue on yield.
    RunningDirty,
    Done,
}

struct Chan {
    queue: VecDeque<Arc<RecordBatch>>,
    /// Producer tasks that have not yet closed this channel.
    senders: usize,
    /// The task reading this channel.
    consumer: usize,
    /// Producer tasks parked on this channel being full.
    waiting: Vec<usize>,
}

struct Core {
    chans: Vec<Chan>,
    state: Vec<TState>,
    ready: VecDeque<usize>,
    /// Tasks not yet `Done`.
    live: usize,
    error: Option<ExecError>,
}

impl Core {
    /// Makes `t` runnable after new input/space. Returns whether a worker
    /// should be notified.
    fn wake(&mut self, t: usize) -> bool {
        match self.state[t] {
            TState::Idle => {
                self.state[t] = TState::Ready;
                self.ready.push_back(t);
                true
            }
            TState::Running => {
                self.state[t] = TState::RunningDirty;
                false
            }
            _ => false,
        }
    }
}

enum Recv {
    Batch(Arc<RecordBatch>),
    /// Channel momentarily empty but producers remain.
    Empty,
    /// All producers closed and the queue is drained.
    Eof,
    /// The run is failing; unwind the step.
    Abort,
}

enum SendRes {
    Sent,
    /// Channel at capacity; the sender has been parked on it.
    Full(Arc<RecordBatch>),
    Abort,
}

/// Who to tell when this execution's ready queue grows: the execution's
/// own scoped worker pool, or the shared runtime pool it registered with.
enum Notify {
    /// Standalone execution: workers of this execution sleep on `Sched::cv`.
    Local,
    /// Registered with a shared [`EngineRuntime`]: pool workers sleep on
    /// the runtime's condvar; `Sched::cv` only carries the end-of-run
    /// signal to the submitter parked in `wait_done`.
    Runtime(Arc<RtShared>),
}

struct Sched<'e> {
    core: Mutex<Core>,
    cv: Condvar,
    capacity: usize,
    /// Root output: unbounded, so the sink task never blocks (this is what
    /// makes the whole graph deadlock-free under backpressure).
    sink: Mutex<Vec<Arc<RecordBatch>>>,
    stats: &'e ExecStats,
    /// Mirror of `core.ready.len()`, readable without the core lock — the
    /// shared pool's workers scan it to pick the next query fairly.
    ready_hint: AtomicUsize,
    notify: Notify,
    /// Span recorder when this execution is traced (`None` = tracing off,
    /// see [`ExecOptions::trace`]).
    trace: Option<Arc<crate::trace::TraceRecorder>>,
    /// Degree of parallelism, for decoding task ids into
    /// `stage × partition` span labels.
    dop: usize,
}

impl Sched<'_> {
    /// With the core lock held: refreshes the ready hint and routes
    /// wakeups after a mutation that queued `woke` tasks (and possibly
    /// finished the run). Every path that can change the ready queue, the
    /// error, or `live` funnels through here.
    fn publish(&self, core: &mut Core, woke: usize, done: bool) {
        if core.error.is_some() {
            // Aborting: drop everything queued so shared-pool workers stop
            // picking tasks that would only yield again (task states stay
            // as they are; `wake` on an unqueued Ready task is a no-op and
            // the whole graph is torn down once the submitter returns).
            core.ready.clear();
        }
        self.ready_hint.store(core.ready.len(), Ordering::Release);
        match &self.notify {
            Notify::Local => {
                if done || core.error.is_some() || woke > 1 {
                    self.cv.notify_all();
                } else if woke == 1 {
                    self.cv.notify_one();
                }
            }
            Notify::Runtime(rt) => {
                if woke > 0 && core.error.is_none() {
                    rt.poke();
                }
                if done || core.error.is_some() {
                    // Release the submitter blocked in `wait_done`.
                    self.cv.notify_all();
                }
            }
        }
    }

    fn try_send(&self, chan: usize, batch: Arc<RecordBatch>, me: usize) -> SendRes {
        let mut core = self.core.lock().unwrap();
        if core.error.is_some() {
            return SendRes::Abort;
        }
        let c = &mut core.chans[chan];
        if c.queue.len() >= self.capacity {
            if !c.waiting.contains(&me) {
                c.waiting.push(me);
            }
            return SendRes::Full(batch);
        }
        c.queue.push_back(batch);
        let consumer = c.consumer;
        let woke = core.wake(consumer) as usize;
        self.publish(&mut core, woke, false);
        SendRes::Sent
    }

    fn try_recv(&self, chan: usize) -> Recv {
        let mut core = self.core.lock().unwrap();
        if core.error.is_some() {
            return Recv::Abort;
        }
        let c = &mut core.chans[chan];
        match c.queue.pop_front() {
            Some(b) => {
                // Space freed: unpark every producer parked on this channel
                // (they re-check and may re-park; the list is ≤ dop long).
                let unparked = std::mem::take(&mut c.waiting);
                let mut woke = 0;
                for w in unparked {
                    woke += core.wake(w) as usize;
                }
                self.publish(&mut core, woke, false);
                Recv::Batch(b)
            }
            None if c.senders == 0 => Recv::Eof,
            None => Recv::Empty,
        }
    }

    /// Marks `t` finished: closes its outbound channels (waking consumers
    /// that must now observe EOF) and releases waiting workers when the
    /// whole run drains.
    fn finish_task(&self, t: usize, closes: &[usize]) {
        let mut core = self.core.lock().unwrap();
        core.state[t] = TState::Done;
        core.live -= 1;
        let mut woke = 0;
        for &chan in closes {
            let c = &mut core.chans[chan];
            c.senders -= 1;
            if c.senders == 0 {
                let consumer = c.consumer;
                woke += core.wake(consumer) as usize;
            }
        }
        let done = core.live == 0;
        self.publish(&mut core, woke, done);
    }

    /// Parks a yielded task — unless something arrived while it ran, in
    /// which case it goes straight back on the queue.
    fn park(&self, t: usize) {
        let mut core = self.core.lock().unwrap();
        match core.state[t] {
            TState::RunningDirty => {
                core.state[t] = TState::Ready;
                core.ready.push_back(t);
                self.publish(&mut core, 1, false);
            }
            TState::Running => {
                core.state[t] = TState::Idle;
                self.publish(&mut core, 0, false);
            }
            _ => unreachable!("yielded task in state {:?}", core.state[t]),
        }
    }

    /// Records the first error and aborts the run.
    fn fail(&self, t: usize, e: ExecError) {
        let mut core = self.core.lock().unwrap();
        if core.error.is_none() {
            core.error = Some(e);
        }
        core.state[t] = TState::Done;
        core.live -= 1;
        self.publish(&mut core, 0, true);
    }
}

// ---------------------------------------------------------------------------
// Task bodies and the cooperative step function.
// ---------------------------------------------------------------------------

struct Port {
    chan: usize,
    open: bool,
}

enum Work<'a> {
    /// Produce a source partition's widened records, one batch at a time.
    Scan {
        it: std::vec::IntoIter<Record>,
        batch_size: usize,
    },
    /// Columnar scan: widen this partition's share of the source rows
    /// (indices `start, start + stride, …` — the same round-robin split
    /// as the row scan) straight into column builders, one batch at a
    /// time. The widen step runs *inside* the task, so at `dop = n` the
    /// formerly serial widen parallelizes n ways.
    ColScan {
        rows: &'a [Record],
        /// Next source row of this partition.
        next: usize,
        /// Partition stride (= dop).
        stride: usize,
        /// Global column → source field (`None` = null-fill), shared by
        /// the stage's partitions.
        map: Arc<Vec<Option<usize>>>,
        builder: BatchBuilder,
        batch_size: usize,
    },
    /// Drive one operator instance over arriving batches.
    Op {
        oper: Box<dyn Operator + 'a>,
        ports: Vec<Port>,
        opened: bool,
        /// Round-robin cursor over ports, for receive fairness.
        rr: usize,
    },
}

enum Output<'a> {
    /// Root: collect into the shared sink.
    Sink,
    /// Boxed: the Partition router carries scatter scratch buffers that
    /// would otherwise dominate every task body's footprint.
    Route(Box<Router<'a>>),
}

struct TaskBody<'a> {
    id: usize,
    /// Operator (or source) name, for panic attribution.
    name: &'a str,
    /// Operator id for per-op time attribution (`None` for scans).
    op_id: Option<usize>,
    work: Work<'a>,
    out: Output<'a>,
    /// Batches routed but not yet accepted by their channel.
    pending: Outbound,
    /// Production finished; only `pending` remains.
    finished: bool,
    /// Channels this task closes when done.
    closes: Vec<usize>,
}

enum StepOutcome {
    /// Task completed (production finished and outbound drained).
    Done,
    /// Waiting for input or output space; the scheduler re-queues it.
    Yield,
}

/// Runs one cooperative step of a task: drain outbound, then produce until
/// inputs run dry, the output backs up, or the task completes. Never
/// blocks.
fn step(body: &mut TaskBody<'_>, sched: &Sched<'_>) -> Result<StepOutcome, ExecError> {
    let mut scratch: Vec<Arc<RecordBatch>> = Vec::new();
    loop {
        // 1. Flush routed batches; a full channel parks us (the try_send
        //    registered us on its waiting list).
        while let Some((chan, batch)) = body.pending.pop_front() {
            match sched.try_send(chan, batch, body.id) {
                SendRes::Sent => {}
                SendRes::Full(batch) => {
                    body.pending.push_front((chan, batch));
                    return Ok(StepOutcome::Yield);
                }
                SendRes::Abort => return Ok(StepOutcome::Yield),
            }
        }
        if body.finished {
            return Ok(StepOutcome::Done);
        }

        // 2. Produce the next output batches into `scratch`.
        let mut produced_final = false;
        match &mut body.work {
            Work::Scan { it, batch_size } => {
                let n = (*batch_size).min(it.len());
                if n == 0 {
                    produced_final = true;
                } else {
                    let recs: Vec<Record> = it.by_ref().take(n).collect();
                    scratch.push(Arc::new(RecordBatch::from_records(recs)));
                }
            }
            Work::ColScan {
                rows,
                next,
                stride,
                map,
                builder,
                batch_size,
            } => {
                while *next < rows.len() && builder.len() < *batch_size {
                    builder.push_widened(&rows[*next], map);
                    *next += *stride;
                }
                if builder.is_empty() {
                    produced_final = true;
                } else {
                    let cb = builder.take();
                    sched
                        .stats
                        .add_batch_cells(cb.null_cells() as u64, cb.total_cells() as u64);
                    scratch.push(Arc::new(RecordBatch::from_columns(cb)));
                }
            }
            Work::Op {
                oper,
                ports,
                opened,
                rr,
            } => {
                if !*opened {
                    oper.open()?;
                    *opened = true;
                }
                let np = ports.len();
                let mut got = None;
                let mut any_open = false;
                for k in 0..np {
                    let i = (*rr + k) % np;
                    if !ports[i].open {
                        continue;
                    }
                    match sched.try_recv(ports[i].chan) {
                        Recv::Batch(b) => {
                            got = Some((i, b));
                            *rr = (i + 1) % np;
                            break;
                        }
                        Recv::Empty => any_open = true,
                        Recv::Eof => ports[i].open = false,
                        Recv::Abort => return Ok(StepOutcome::Yield),
                    }
                }
                match got {
                    Some((port, b)) => oper.push(port, b, &mut scratch)?,
                    None if any_open => return Ok(StepOutcome::Yield),
                    None => {
                        oper.finish(&mut scratch)?;
                        produced_final = true;
                    }
                }
            }
        }

        // 3. Route what was produced.
        match &mut body.out {
            Output::Sink => sched.sink.lock().unwrap().extend(scratch.drain(..)),
            Output::Route(r) => {
                // Ship/scatter span: only for routers that move data across
                // partitions, and only when this step produced something.
                let ship_t0 = match &sched.trace {
                    Some(tr) if r.ships() && !scratch.is_empty() => Some(tr.now_ns()),
                    _ => None,
                };
                let routed = scratch.len() as u64;
                for b in scratch.drain(..) {
                    r.route(b, &mut body.pending, sched.stats)?;
                }
                if produced_final {
                    r.finish(&mut body.pending);
                }
                if let (Some(t0), Some(tr)) = (ship_t0, &sched.trace) {
                    tr.record("ship", "ship", t0, vec![("batches", routed)]);
                }
            }
        }
        if produced_final {
            body.finished = true;
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One in-flight execution: the scheduler core plus every task body.
/// Standalone runs drive it with a scoped worker pool
/// ([`ExecState::worker_loop`]); runs on a shared [`EngineRuntime`]
/// register it with the pool instead (the [`QueryTasks`] impl) — both
/// paths execute task steps through the same [`ExecState::run_task`].
struct ExecState<'a> {
    sched: Sched<'a>,
    bodies: Vec<Mutex<TaskBody<'a>>>,
}

impl ExecState<'_> {
    /// Runs one step of task `t` and files the outcome. Panics unwinding
    /// out of a step become [`ExecError::Panic`] carrying the operator
    /// name; elapsed time is attributed to the task's own operator slot —
    /// `self.sched.stats` belongs to exactly one query, so attribution
    /// stays per-query even when shared-pool workers interleave queries.
    fn run_task(&self, t: usize) {
        // Only the worker that moved `t` to Running touches its body, so
        // this lock is uncontended; it exists to make the borrow safe.
        let mut body = self.bodies[t].lock().unwrap();
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| step(&mut body, &self.sched)));
        if let Some(op) = body.op_id {
            self.sched
                .stats
                .add_op_nanos(op, started.elapsed().as_nanos() as u64);
        }
        if let Some(tr) = &self.sched.trace {
            // Task ids are stage-major: `stage * dop + partition`.
            tr.record(
                body.name,
                "task",
                tr.rel_ns(started),
                vec![
                    ("stage", (t / self.sched.dop) as u64),
                    ("partition", (t % self.sched.dop) as u64),
                ],
            );
        }
        match result {
            Ok(Ok(StepOutcome::Done)) => self.sched.finish_task(t, &body.closes),
            Ok(Ok(StepOutcome::Yield)) => self.sched.park(t),
            Ok(Err(e)) => self.sched.fail(t, e),
            Err(payload) => self.sched.fail(
                t,
                ExecError::Panic {
                    op: body.name.to_string(),
                    message: panic_message(payload),
                },
            ),
        }
    }

    /// One worker of a standalone run's scoped pool: pop a ready task, run
    /// a step, repeat until the run drains or fails.
    fn worker_loop(&self) {
        loop {
            let t = {
                let mut core = self.sched.core.lock().unwrap();
                loop {
                    if core.error.is_some() {
                        return;
                    }
                    if let Some(t) = core.ready.pop_front() {
                        core.state[t] = TState::Running;
                        self.sched
                            .ready_hint
                            .store(core.ready.len(), Ordering::Release);
                        break t;
                    }
                    if core.live == 0 {
                        return;
                    }
                    core = self.sched.cv.wait(core).unwrap();
                }
            };
            self.run_task(t);
        }
    }
}

impl QueryTasks for ExecState<'_> {
    fn ready_hint(&self) -> usize {
        self.sched.ready_hint.load(Ordering::Acquire)
    }

    fn run_one(&self) -> bool {
        let t = {
            let mut core = self.sched.core.lock().unwrap();
            if core.error.is_some() {
                return false;
            }
            match core.ready.pop_front() {
                Some(t) => {
                    core.state[t] = TState::Running;
                    self.sched
                        .ready_hint
                        .store(core.ready.len(), Ordering::Release);
                    t
                }
                None => return false,
            }
        };
        self.run_task(t);
        true
    }

    fn wait_done(&self) {
        let mut core = self.sched.core.lock().unwrap();
        while core.live > 0 && core.error.is_none() {
            core = self.sched.cv.wait(core).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Driver: build bodies, run the pool, gather the sink.
// ---------------------------------------------------------------------------

/// Runs a compiled stage tree to completion and gathers the root's
/// output — standalone (`runtime = None`, a scoped worker pool per run)
/// or registered with a shared [`EngineRuntime`] pool.
pub(crate) fn run(
    plan: &Plan,
    root: &Stage,
    inputs: &Inputs,
    dop: usize,
    opts: &ExecOptions,
    runtime: Option<&EngineRuntime>,
) -> Result<(DataSet, ExecStats), ExecError> {
    let stats = ExecStats::with_ops(plan.ctx.ops.len());
    let out = run_streaming(plan, root, inputs, dop, opts, &stats, runtime)?;
    Ok((out, stats))
}

/// [`run`] against caller-provided stats (the profiler passes detailed
/// ones).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_streaming(
    plan: &Plan,
    root: &Stage,
    inputs: &Inputs,
    dop: usize,
    opts: &ExecOptions,
    stats: &ExecStats,
    runtime: Option<&EngineRuntime>,
) -> Result<DataSet, ExecError> {
    let dop = dop.max(1);
    let graph = TaskGraph::build(plan, root, dop, opts.fuse_maps);
    let n_tasks = graph.stages.len() * dop;

    // The execution's shared memory budget — carved out of the runtime's
    // global pool when running on one, standalone otherwise. Declared
    // before the task bodies (which borrow it) so it is dropped after
    // them — its scoped spill directory disappears (and its grant returns
    // to the pool) on every exit path, including a worker panic surfaced
    // as `ExecError::Panic`.
    let gov = {
        let mut gov = match runtime {
            Some(rt) => rt.governor_for(opts),
            None => MemoryGovernor::with_budget_in(opts.mem_budget, opts.spill_dir.clone()),
        };
        // Spill-run and merge spans land in the same recorder as the task
        // spans of the operators that triggered them.
        gov.set_trace(opts.trace.clone());
        gov
    };

    // Channel table: consumer stage × port × partition, ids matching the
    // `chan_base` ranges assigned at graph build.
    let mut chans: Vec<Chan> = Vec::with_capacity(graph.n_chans);
    for (sid, s) in graph.stages.iter().enumerate() {
        for inp in &s.inputs {
            let senders = match inp.ship {
                Ship::Forward => 1,
                Ship::Partition(_) | Ship::Broadcast => dop,
            };
            for p in 0..dop {
                chans.push(Chan {
                    queue: VecDeque::new(),
                    senders,
                    consumer: sid * dop + p,
                    waiting: Vec::new(),
                });
            }
        }
    }
    debug_assert_eq!(chans.len(), graph.n_chans);

    // Task bodies: one per (stage, partition).
    let mut bodies: Vec<Mutex<TaskBody<'_>>> = Vec::with_capacity(n_tasks);
    for (sid, s) in graph.stages.iter().enumerate() {
        // Row-layout scans widen + split once per stage, then hand
        // partitions out. Columnar scans instead fuse the widen into
        // in-task column building: each partition walks its stride of the
        // *source* rows, so the widen itself parallelizes across dop.
        // Source rows plus the global-attr -> source-column map.
        type ColScanSrc<'s> = (&'s [Record], Arc<Vec<Option<usize>>>);
        let mut scan_parts: Vec<Vec<Record>> = Vec::new();
        let mut col_scan: Option<ColScanSrc<'_>> = None;
        if let FlatKind::Scan(src_id) = &s.kind {
            let src = &plan.ctx.sources[*src_id];
            let ds = inputs
                .get(&src.name)
                .ok_or_else(|| ExecError::MissingInput(src.name.clone()))?;
            if opts.layout == BatchLayout::ColumnarNative {
                let mut map = vec![None; plan.ctx.width()];
                for (i, a) in src.attrs.iter().enumerate() {
                    map[a.index()] = Some(i);
                }
                col_scan = Some((ds.records(), Arc::new(map)));
            } else {
                let wide = widen(ds, &src.attrs, plan.ctx.width());
                // Round-robin initial placement, as a scan over splits
                // would.
                scan_parts = (0..dop).map(|_| Vec::new()).collect();
                for (i, r) in wide.into_iter().enumerate() {
                    scan_parts[i % dop].push(r);
                }
            }
        }
        let mut scan_parts = scan_parts.into_iter();

        for p in 0..dop {
            let id = sid * dop + p;
            let (work, name, op_id) = match &s.kind {
                FlatKind::Scan(src_id) => {
                    let work = match &col_scan {
                        Some((rows, map)) => Work::ColScan {
                            rows,
                            next: p,
                            stride: dop,
                            map: Arc::clone(map),
                            builder: BatchBuilder::new(plan.ctx.width()),
                            batch_size: opts.batch_size.max(1),
                        },
                        None => Work::Scan {
                            it: scan_parts
                                .next()
                                .expect("one split per partition")
                                .into_iter(),
                            batch_size: opts.batch_size.max(1),
                        },
                    };
                    (work, plan.ctx.sources[*src_id].name.as_str(), None)
                }
                FlatKind::Combine { op } => {
                    let bound = &plan.ctx.ops[*op];
                    let ctx = OpCtx {
                        interp: Interp::default(),
                        stats,
                        gov: &gov,
                        batch_size: opts.batch_size,
                        // Charged to the reduce's slot: the combiner is
                        // that operator's pre-ship half.
                        op_id: *op,
                    };
                    let ports = s
                        .chan_base
                        .iter()
                        .map(|&base| Port {
                            chan: base + p,
                            open: true,
                        })
                        .collect();
                    (
                        Work::Op {
                            oper: operators::build_combiner(bound, ctx),
                            ports,
                            opened: false,
                            rr: 0,
                        },
                        bound.name.as_str(),
                        Some(*op),
                    )
                }
                FlatKind::Apply { op, local, fused } => {
                    let make_ctx = |op_id: usize| OpCtx {
                        interp: Interp::default(),
                        stats,
                        gov: &gov,
                        batch_size: opts.batch_size,
                        op_id,
                    };
                    let head = &plan.ctx.ops[*op];
                    let oper: Box<dyn Operator + '_> = if fused.is_empty() {
                        operators::build(head, *local, make_ctx(*op))
                    } else {
                        let mut chain = vec![(head, make_ctx(*op))];
                        for &f in fused {
                            chain.push((&plan.ctx.ops[f], make_ctx(f)));
                        }
                        operators::build_map_chain(chain)
                    };
                    let ports = s
                        .chan_base
                        .iter()
                        .map(|&base| Port {
                            chan: base + p,
                            open: true,
                        })
                        .collect();
                    (
                        Work::Op {
                            oper,
                            ports,
                            opened: false,
                            rr: 0,
                        },
                        head.name.as_str(),
                        Some(*op),
                    )
                }
            };
            // Output routing: determined by the (unique) consumer edge.
            let (out, closes) = match s.consumer {
                None => (Output::Sink, Vec::new()),
                Some((cons, port)) => {
                    let base = graph.stages[cons].chan_base[port];
                    match &graph.stages[cons].inputs[port].ship {
                        Ship::Forward => (
                            Output::Route(Box::new(Router::forward(base + p))),
                            vec![base + p],
                        ),
                        Ship::Partition(key) => (
                            Output::Route(Box::new(Router::partition(
                                base,
                                dop,
                                op_id,
                                key,
                                opts.batch_size,
                                opts.validate_wire,
                            ))),
                            (base..base + dop).collect(),
                        ),
                        Ship::Broadcast => (
                            Output::Route(Box::new(Router::broadcast(base, dop, op_id))),
                            (base..base + dop).collect(),
                        ),
                    }
                }
            };
            bodies.push(Mutex::new(TaskBody {
                id,
                name,
                op_id,
                work,
                out,
                pending: Outbound::new(),
                finished: false,
                closes,
            }));
        }
    }

    let state = ExecState {
        sched: Sched {
            core: Mutex::new(Core {
                chans,
                state: vec![TState::Ready; n_tasks],
                ready: (0..n_tasks).collect(),
                live: n_tasks,
                error: None,
            }),
            cv: Condvar::new(),
            capacity: opts.channel_capacity.max(1),
            sink: Mutex::new(Vec::new()),
            stats,
            ready_hint: AtomicUsize::new(n_tasks),
            notify: match runtime {
                Some(rt) => Notify::Runtime(rt.shared_handle()),
                None => Notify::Local,
            },
            trace: opts.trace.clone(),
            dop,
        },
        bodies,
    };

    match runtime {
        Some(rt) => {
            // Shared pool: register, let the runtime's workers interleave
            // this query's steps with every other in-flight query, wait
            // for the drain. `opts.workers` is runtime-scoped and ignored.
            rt.run_query(&state);
        }
        None => {
            let workers = opts
                .workers
                .unwrap_or_else(|| {
                    if dop == 1 {
                        1
                    } else {
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                    }
                })
                .clamp(1, n_tasks.max(1));

            if workers == 1 {
                // Inline: no threads at all. Same code path, deterministic
                // order.
                state.worker_loop();
            } else {
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| state.worker_loop());
                    }
                });
            }
        }
    }

    let core = state.sched.core.into_inner().unwrap();
    if let Some(e) = core.error {
        return Err(e);
    }
    let mut all = Vec::new();
    for b in state.sched.sink.into_inner().unwrap() {
        all.extend(operators::take_records(b));
    }
    Ok(DataSet::from_records(all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_dataflow::{CostHints, ProgramBuilder, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};
    use strato_record::Value;

    fn add_const(w: usize, field: usize, k: i64) -> Function {
        let mut b = FuncBuilder::new("addc", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let c = b.konst(k);
        let s = b.bin(BinOp::Add, v, c);
        let or = b.copy_input(0);
        b.set(or, field, s);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn sum_reduce(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![w]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, field);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, w, sum);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    fn three_map_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["a", "b"], 16));
        let m1 = p.map("m1", add_const(2, 0, 1), CostHints::default(), s);
        let m2 = p.map("m2", add_const(2, 1, 2), CostHints::default(), m1);
        let m3 = p.map("m3", add_const(2, 0, 3), CostHints::default(), m2);
        p.finish(m3).unwrap().bind().unwrap()
    }

    fn inputs_for(plan: &Plan, rows: &[&[i64]]) -> Inputs {
        let name = plan.ctx.sources[0].name.clone();
        let ds: DataSet = rows
            .iter()
            .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
            .collect();
        let mut inputs = Inputs::new();
        inputs.insert(name, ds);
        inputs
    }

    #[test]
    fn adjacent_forward_maps_fuse_into_one_stage() {
        let plan = three_map_plan();
        let compiled = compile_logical(&plan, &plan.root);
        // Fused: scan + one chained-map stage.
        let fused = TaskGraph::build(&plan, &compiled, 1, true);
        assert_eq!(fused.stage_count(), 2);
        // Unfused: scan + three map stages.
        let unfused = TaskGraph::build(&plan, &compiled, 1, false);
        assert_eq!(unfused.stage_count(), 4);
    }

    #[test]
    fn fusion_stops_at_blocking_operators() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 16));
        let m1 = p.map("m1", add_const(2, 1, 1), CostHints::default(), s);
        let r = p.reduce("sum", &[0], sum_reduce(2, 1), CostHints::default(), m1);
        let m2 = p.map("m2", add_const(3, 1, 2), CostHints::default(), r);
        let plan = p.finish(m2).unwrap().bind().unwrap();
        let compiled = compile_logical(&plan, &plan.root);
        // Nothing fuses: scan, m1, reduce, m2 (the map after the reduce has
        // no map producer; the map before it feeds a non-map).
        assert_eq!(TaskGraph::build(&plan, &compiled, 1, true).stage_count(), 4);
    }

    #[test]
    fn fused_run_matches_unfused_run_and_stats() {
        let plan = three_map_plan();
        let compiled = compile_logical(&plan, &plan.root);
        let inputs = inputs_for(&plan, &[&[1, 10], &[2, 20], &[3, 30], &[4, 40], &[5, 50]]);
        let fused_opts = ExecOptions::default();
        let unfused_opts = ExecOptions {
            fuse_maps: false,
            ..ExecOptions::default()
        };
        let (out_f, st_f) = run(&plan, &compiled, &inputs, 1, &fused_opts, None).unwrap();
        let (out_u, st_u) = run(&plan, &compiled, &inputs, 1, &unfused_opts, None).unwrap();
        assert_eq!(out_f, out_u);
        // Fusion changes transport, not semantics: identical UDF call and
        // emit counts, globally and per operator.
        assert_eq!(st_f.snapshot().0, st_u.snapshot().0);
        assert_eq!(st_f.snapshot().1, st_u.snapshot().1);
        let (ops_f, ops_u) = (st_f.op_snapshots(), st_u.op_snapshots());
        for (a, b) in ops_f.iter().zip(&ops_u) {
            assert_eq!((a.calls, a.emits), (b.calls, b.emits));
        }
        assert_eq!(
            ops_f.iter().map(|o| o.calls).sum::<u64>(),
            15,
            "3 ops × 5 records"
        );
    }

    use crate::testutil::sum_inplace;

    #[test]
    fn combiner_stage_is_inserted_for_combinable_partition_reduce() {
        use strato_core::{cost::CostWeights, physical::best_physical, PropTable};
        use strato_dataflow::PropertyMode;

        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 100_000).with_bytes_per_row(32));
        let r = p.reduce(
            "agg",
            &[0],
            sum_inplace(2, 1),
            CostHints::default().with_distinct_keys(16),
            s,
        );
        let plan = p.finish(r).unwrap().bind().unwrap();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 4);
        assert!(phys.root.combine, "optimizer must choose the combiner");

        // Lowered with combining: scan → combine → reduce (3 stages);
        // lowered with the axis off: scan → reduce (2 stages).
        let with = compile_physical(&phys.root, true);
        assert_eq!(TaskGraph::build(&plan, &with, 4, true).stage_count(), 3);
        let without = compile_physical(&phys.root, false);
        assert_eq!(TaskGraph::build(&plan, &without, 4, true).stage_count(), 2);

        // End-to-end: identical output, strictly fewer shipped records,
        // and the pre-aggregation counters report the reduction.
        let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 16, i]).collect();
        let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let inputs = inputs_for(&plan, &rows_ref);
        let on = ExecOptions::default();
        let off = ExecOptions {
            combine: false,
            ..ExecOptions::default()
        };
        let (out_on, st_on) = run(&plan, &with, &inputs, 4, &on, None).unwrap();
        let (out_off, st_off) = run(&plan, &without, &inputs, 4, &off, None).unwrap();
        assert_eq!(out_on.sorted(), out_off.sorted(), "byte-identical bags");
        let (shipped_on, shipped_off) = (st_on.snapshot().2, st_off.snapshot().2);
        assert!(
            shipped_on < shipped_off,
            "combiner must cut shipping: {shipped_on} vs {shipped_off}"
        );
        // With the combiner: it absorbs all 200 records AND the final
        // StreamAgg absorbs the partials. Without: only the final
        // StreamAgg sees the (unreduced) 200 records.
        let (pre_in, pre_out) = st_on.preagg_snapshot();
        assert!(pre_in > 200, "combiner + final StreamAgg: {pre_in}");
        assert!(pre_out < pre_in);
        assert_eq!(st_off.preagg_snapshot().0, 200);
    }

    #[test]
    fn scheduler_is_invariant_under_workers_capacity_and_batch() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let m = p.map("m", add_const(2, 1, 5), CostHints::default(), s);
        let r = p.reduce("sum", &[0], sum_reduce(2, 1), CostHints::default(), m);
        let plan = p.finish(r).unwrap().bind().unwrap();
        let compiled = compile_logical(&plan, &plan.root);
        let rows: Vec<Vec<i64>> = (0..64).map(|i| vec![i % 7, i]).collect();
        let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let inputs = inputs_for(&plan, &rows_ref);
        let (reference, ref_stats) =
            run(&plan, &compiled, &inputs, 1, &ExecOptions::default(), None).unwrap();
        for workers in [1usize, 2, 4] {
            for capacity in [1usize, 8] {
                for batch_size in [1usize, 1024] {
                    let opts = ExecOptions {
                        batch_size,
                        workers: Some(workers),
                        channel_capacity: capacity,
                        ..ExecOptions::default()
                    };
                    let (out, stats) = run(&plan, &compiled, &inputs, 1, &opts, None).unwrap();
                    assert_eq!(
                        out, reference,
                        "workers={workers} capacity={capacity} batch={batch_size}"
                    );
                    assert_eq!(stats.snapshot(), ref_stats.snapshot());
                }
            }
        }
    }
}
