//! Lowering plans to operator pipelines, and the shared driver.
//!
//! This module is the **single** execution path of the crate. Both entry
//! points lower to the same [`Stage`] DAG and run through the same driver:
//!
//! * [`crate::execute_logical`] compiles the *logical* plan with
//!   [`compile_logical`] (all-Forward ships, each PACT's default local
//!   algorithm) and runs it at `dop = 1`;
//! * [`crate::execute`] compiles the `(Plan, PhysPlan)` pair with
//!   [`compile_physical`] (the optimizer's ship + local strategy choices)
//!   and runs it at the requested degree of parallelism.
//!
//! Per stage, the driver ships each child's partitioned batch streams
//! ([`crate::ship`]), then drives one [`crate::operators::Operator`]
//! instance per partition through open → push-batch → finish, on one
//! worker thread per partition when `dop > 1`.

use crate::engine::{ExecError, Inputs};
use crate::operators::{self, OpCtx};
use crate::ship::{ship, PartedBatches};
use crate::stats::ExecStats;
use std::sync::Arc;
use strato_core::{LocalStrategy, PhysNode, Ship};
use strato_dataflow::{NodeKind, Plan, PlanNode};
use strato_ir::interp::Interp;
use strato_record::{DataSet, Record, RecordBatch};

/// Tuning knobs of one execution. The defaults reproduce production
/// behavior; tests sweep them.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Target records per batch flowing between operators.
    pub batch_size: usize,
    /// When set, hash-partition shipping round-trips every record through
    /// the wire format and verifies the decode — the seed engine's
    /// serialization check, now opt-in (off the hot path).
    pub validate_wire: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: RecordBatch::DEFAULT_SIZE,
            validate_wire: false,
        }
    }
}

/// One node of the compiled operator DAG.
#[derive(Debug, Clone)]
pub(crate) enum StageKind {
    /// Scan a source (index into `plan.ctx.sources`).
    Scan(usize),
    /// Apply operator `op` with the given strategies.
    Apply {
        /// Index into `plan.ctx.ops`.
        op: usize,
        /// Local algorithm.
        local: LocalStrategy,
        /// Ship strategy per input.
        ships: Vec<Ship>,
    },
}

/// A compiled execution stage: strategy-annotated plan structure, shared
/// by the logical oracle and the parallel engine.
#[derive(Debug, Clone)]
pub(crate) struct Stage {
    pub(crate) kind: StageKind,
    pub(crate) children: Vec<Stage>,
}

/// Lowers a logical plan: every ship is `Forward`, every operator runs its
/// PACT's default local algorithm (see [`LocalStrategy::default_for`]).
pub(crate) fn compile_logical(plan: &Plan, node: &PlanNode) -> Stage {
    match node.kind {
        NodeKind::Source(s) => Stage {
            kind: StageKind::Scan(s),
            children: vec![],
        },
        NodeKind::Op(o) => Stage {
            kind: StageKind::Apply {
                op: o,
                local: LocalStrategy::default_for(&plan.ctx.ops[o].pact),
                ships: vec![Ship::Forward; node.children.len()],
            },
            children: node
                .children
                .iter()
                .map(|c| compile_logical(plan, c))
                .collect(),
        },
    }
}

/// Lowers a physical plan: ship and local strategies come from the
/// optimizer's choices.
pub(crate) fn compile_physical(node: &PhysNode) -> Stage {
    match node.logical.kind {
        NodeKind::Source(s) => Stage {
            kind: StageKind::Scan(s),
            children: vec![],
        },
        NodeKind::Op(o) => Stage {
            kind: StageKind::Apply {
                op: o,
                local: node.local,
                ships: node.ships.clone(),
            },
            children: node.children.iter().map(compile_physical).collect(),
        },
    }
}

/// Widens source records to global layout: field `i` of the source goes to
/// its global attribute position.
pub(crate) fn widen(
    records: &DataSet,
    attrs: &[strato_record::AttrId],
    width: usize,
) -> Vec<Record> {
    records
        .iter()
        .map(|r| {
            let mut out = Record::nulls(width);
            for (i, &a) in attrs.iter().enumerate() {
                out.set_field(a.index(), r.field(i).clone());
            }
            out
        })
        .collect()
}

/// Runs a compiled stage tree to completion and gathers the root's output.
pub(crate) fn run(
    plan: &Plan,
    root: &Stage,
    inputs: &Inputs,
    dop: usize,
    opts: &ExecOptions,
) -> Result<(DataSet, ExecStats), ExecError> {
    let dop = dop.max(1);
    let stats = ExecStats::new();
    let parts = run_stage(plan, root, inputs, dop, &stats, opts)?;
    let mut all = Vec::new();
    for part in parts {
        for batch in part {
            all.extend(operators::take_records(batch));
        }
    }
    Ok((DataSet::from_records(all), stats))
}

fn run_stage(
    plan: &Plan,
    stage: &Stage,
    inputs: &Inputs,
    dop: usize,
    stats: &ExecStats,
    opts: &ExecOptions,
) -> Result<PartedBatches, ExecError> {
    match &stage.kind {
        StageKind::Scan(s) => {
            let src = &plan.ctx.sources[*s];
            let ds = inputs
                .get(&src.name)
                .ok_or_else(|| ExecError::MissingInput(src.name.clone()))?;
            let wide = widen(ds, &src.attrs, plan.ctx.width());
            // Round-robin initial placement, as a scan over splits would.
            let mut parts: Vec<Vec<Record>> = (0..dop).map(|_| Vec::new()).collect();
            for (i, r) in wide.into_iter().enumerate() {
                parts[i % dop].push(r);
            }
            Ok(parts
                .into_iter()
                .map(|recs| operators::into_batches(recs, opts.batch_size))
                .collect())
        }
        StageKind::Apply { op, local, ships } => {
            let op = &plan.ctx.ops[*op];
            // Execute children, then ship their outputs.
            let mut per_part: Vec<Vec<Vec<Arc<RecordBatch>>>> =
                (0..dop).map(|_| Vec::new()).collect();
            for (i, child) in stage.children.iter().enumerate() {
                let parts = run_stage(plan, child, inputs, dop, stats, opts)?;
                for (p, batches) in ship(parts, &ships[i], dop, stats, opts)?
                    .into_iter()
                    .enumerate()
                {
                    per_part[p].push(batches);
                }
            }
            // Local work: one operator per partition, one thread each.
            if dop == 1 {
                let inputs = per_part.pop().expect("one partition");
                return Ok(vec![run_partition(op, *local, inputs, stats, opts)?]);
            }
            let mut results: Vec<Result<Vec<Arc<RecordBatch>>, ExecError>> =
                (0..dop).map(|_| Ok(Vec::new())).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (p, part_inputs) in per_part.into_iter().enumerate() {
                    handles.push((
                        p,
                        scope.spawn(move || run_partition(op, *local, part_inputs, stats, opts)),
                    ));
                }
                for (p, h) in handles {
                    results[p] = h.join().expect("worker panicked");
                }
            });
            results.into_iter().collect()
        }
    }
}

/// Drives one operator instance over one partition's inputs:
/// open → push every batch of every port → finish.
fn run_partition(
    op: &strato_dataflow::BoundOp,
    local: LocalStrategy,
    inputs: Vec<Vec<Arc<RecordBatch>>>,
    stats: &ExecStats,
    opts: &ExecOptions,
) -> Result<Vec<Arc<RecordBatch>>, ExecError> {
    let ctx = OpCtx {
        interp: Interp::default(),
        stats,
        batch_size: opts.batch_size,
    };
    let mut oper = operators::build(op, local, ctx);
    oper.open()?;
    let mut out = Vec::new();
    for (port, batches) in inputs.into_iter().enumerate() {
        for b in batches {
            oper.push(port, b, &mut out)?;
        }
    }
    oper.finish(&mut out)?;
    Ok(out)
}
