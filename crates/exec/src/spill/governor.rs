//! The per-execution memory budget tracker and scoped spill directory.

use crate::engine::ExecError;
use crate::spill::file::{RunWriter, SortedRun};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use strato_record::Record;

/// Scoped temp directory holding one execution's spill files. Removing it
/// recursively on drop is what guarantees no spill file outlives its
/// execution — including executions that fail with [`ExecError::Panic`]:
/// the scheduler catches worker unwinds, so the governor (and this
/// directory) is always dropped by the driver.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failed removal leaks tmp files but must not turn a
        // finished query into an error (or a panic during unwind).
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Monotonic discriminator so two executions in one process (or a reused
/// pid across processes, via the timestamp) never share a directory.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared memory-budget tracker of one execution, plus the factory for its
/// spill files.
///
/// All blocking operators of an execution charge the same governor:
/// [`grant`](MemoryGovernor::grant) when buffering records,
/// [`release`](MemoryGovernor::release) when spilling or emitting them.
/// [`over_budget`](MemoryGovernor::over_budget) compares the *global*
/// resident total against the budget, so pressure from one large operator
/// makes every buffering operator shed state — the behavior a per-worker
/// memory budget models. Byte sizes use [`Record::encoded_len`], the same
/// approximation the cost model's `mem_budget` is expressed in.
///
/// The spill directory is created lazily on the first spill (unbounded and
/// under-budget executions never touch the filesystem) and removed when
/// the governor drops.
#[derive(Debug)]
pub struct MemoryGovernor {
    /// `None` = unbounded (never spills).
    budget: Option<u64>,
    /// Bytes currently buffered across all operators of the execution.
    resident: AtomicU64,
    /// Lazily created scoped directory holding this execution's runs.
    dir: Mutex<Option<SpillDir>>,
    /// Where to create the scoped directory (defaults to the OS temp dir).
    base: Option<PathBuf>,
    /// Names run files uniquely within the directory.
    run_seq: AtomicU64,
}

impl MemoryGovernor {
    /// A governor that never reports pressure (no budget, no spilling).
    pub fn unbounded() -> Self {
        Self::with_budget(None)
    }

    /// A governor enforcing `budget` bytes (`None` = unbounded), spilling
    /// into the OS temp directory.
    pub fn with_budget(budget: Option<u64>) -> Self {
        Self::with_budget_in(budget, None)
    }

    /// [`MemoryGovernor::with_budget`] with an explicit parent directory
    /// for the scoped spill directory (`None` = OS temp dir).
    pub fn with_budget_in(budget: Option<u64>, base: Option<PathBuf>) -> Self {
        MemoryGovernor {
            budget,
            resident: AtomicU64::new(0),
            dir: Mutex::new(None),
            base,
            run_seq: AtomicU64::new(0),
        }
    }

    /// Whether a budget is in force at all. Operators may skip byte
    /// accounting entirely when unbounded.
    #[inline]
    pub fn bounded(&self) -> bool {
        self.budget.is_some()
    }

    /// Registers `bytes` of newly buffered operator state.
    #[inline]
    pub fn grant(&self, bytes: u64) {
        if self.budget.is_some() {
            self.resident.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Releases `bytes` of operator state (spilled, flushed or emitted).
    #[inline]
    pub fn release(&self, bytes: u64) {
        if self.budget.is_some() {
            // Saturating: a release can race a concurrent grant's visibility,
            // and clamping beats wrapping to u64::MAX (permanent pressure).
            let _ = self
                .resident
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(bytes))
                });
        }
    }

    /// `true` when the execution's resident bytes exceed the budget — the
    /// signal for every buffering operator to shed its state.
    #[inline]
    pub fn over_budget(&self) -> bool {
        match self.budget {
            Some(b) => self.resident.load(Ordering::Relaxed) > b,
            None => false,
        }
    }

    /// Bytes currently registered as resident (0 when unbounded).
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Writes `records` — which the caller has already sorted — as one
    /// spill file, creating the scoped spill directory on first use.
    pub fn write_sorted_run(&self, records: &[Record]) -> Result<SortedRun, ExecError> {
        let path = self.new_run_path()?;
        let mut w = RunWriter::create(path).map_err(spill_err)?;
        for r in records {
            w.write(r).map_err(spill_err)?;
        }
        w.finish().map_err(spill_err)
    }

    /// A fresh, unique path for a run file inside the scoped directory.
    pub(crate) fn new_run_path(&self) -> Result<PathBuf, ExecError> {
        let mut dir = self.dir.lock().unwrap();
        if dir.is_none() {
            *dir = Some(create_dir(self.base.as_deref()).map_err(spill_err)?);
        }
        let seq = self.run_seq.fetch_add(1, Ordering::Relaxed);
        Ok(dir.as_ref().unwrap().path.join(format!("run-{seq}.spill")))
    }

    /// Path of the scoped spill directory, if any spill happened yet.
    pub fn spill_dir_path(&self) -> Option<PathBuf> {
        self.dir.lock().unwrap().as_ref().map(|d| d.path.clone())
    }
}

fn create_dir(base: Option<&Path>) -> std::io::Result<SpillDir> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let name = format!(
        "strato-spill-{}-{}-{nanos}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let path = base
        .map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir)
        .join(name);
    std::fs::create_dir_all(&path)?;
    Ok(SpillDir { path })
}

/// Maps an IO failure on the spill path into an execution error.
pub(crate) fn spill_err(e: std::io::Error) -> ExecError {
    ExecError::Spill(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    fn rec(v: i64) -> Record {
        Record::from_values([Value::Int(v)])
    }

    #[test]
    fn unbounded_never_reports_pressure() {
        let g = MemoryGovernor::unbounded();
        assert!(!g.bounded());
        g.grant(u64::MAX);
        assert!(!g.over_budget());
        assert_eq!(g.resident(), 0, "unbounded governors skip accounting");
    }

    #[test]
    fn pressure_tracks_grant_and_release() {
        let g = MemoryGovernor::with_budget(Some(100));
        assert!(g.bounded());
        g.grant(80);
        assert!(!g.over_budget(), "at or below budget is fine");
        g.grant(40);
        assert!(g.over_budget());
        assert_eq!(g.resident(), 120);
        g.release(50);
        assert!(!g.over_budget());
        // Over-release clamps to zero instead of wrapping.
        g.release(1_000);
        assert_eq!(g.resident(), 0);
    }

    #[test]
    fn spill_dir_is_created_lazily_and_removed_on_drop() {
        let g = MemoryGovernor::with_budget(Some(1));
        assert_eq!(g.spill_dir_path(), None, "no spill, no directory");
        let run = g.write_sorted_run(&[rec(1), rec(2)]).unwrap();
        let dir = g.spill_dir_path().expect("directory exists after a spill");
        assert!(dir.exists());
        assert_eq!(run.records(), 2);
        drop(g);
        assert!(!dir.exists(), "scoped directory removed on drop");
    }

    #[test]
    fn run_paths_are_unique() {
        let g = MemoryGovernor::with_budget(Some(1));
        let a = g.new_run_path().unwrap();
        let b = g.new_run_path().unwrap();
        assert_ne!(a, b);
        drop(g);
        assert!(!a.parent().unwrap().exists());
    }
}
