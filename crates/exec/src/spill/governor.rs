//! The per-execution memory budget tracker and scoped spill directory —
//! and the process-wide memory pool per-execution budgets are carved from.
//!
//! Two layers:
//!
//! * [`GlobalMemory`] is one machine-wide budget shared by every
//!   execution on an [`EngineRuntime`](crate::runtime::EngineRuntime).
//!   [`GlobalMemory::carve`] hands out a [`MemoryGrant`] — a slice of the
//!   not-yet-granted budget, capped by the query's own `mem_budget` —
//!   which returns to the pool when dropped.
//! * [`MemoryGovernor`] is the per-execution tracker the operators charge.
//!   Built [`MemoryGovernor::with_grant`], its budget *is* the grant and
//!   its resident bytes mirror up into the pool's gauges; built standalone
//!   ([`MemoryGovernor::with_budget_in`]), it behaves exactly as before.
//!
//! Pressure is strictly per-query: [`MemoryGovernor::over_budget`]
//! compares an execution's own resident bytes against its own grant, so a
//! query blowing through its slice spills *its* state — it can never force
//! a neighbor to spill, and the sum of grants never exceeds the pool.

use crate::engine::ExecError;
use crate::spill::file::{RunWriter, SortedRun};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use strato_record::Record;

/// The process-wide memory pool of a shared engine runtime.
///
/// Tracks two quantities: `granted` (bytes promised to in-flight
/// executions via [`GlobalMemory::carve`], under a mutex because carving
/// must read-modify-write against the budget) and `resident` (bytes
/// actually buffered right now, mirrored up from each execution's
/// [`MemoryGovernor`]; atomic, on the operators' accounting path).
#[derive(Debug)]
pub struct GlobalMemory {
    /// `None` = unbounded pool: every carve passes the query's own cap
    /// through unchanged.
    budget: Option<u64>,
    /// Bytes currently promised to live grants.
    granted: Mutex<u64>,
    /// Bytes currently buffered across all executions of the pool.
    resident: AtomicU64,
    /// High-water mark of `resident`.
    peak_resident: AtomicU64,
}

impl GlobalMemory {
    /// A pool enforcing `budget` bytes across all executions (`None` =
    /// unbounded; grants then just pass each query's cap through).
    pub fn new(budget: Option<u64>) -> Arc<GlobalMemory> {
        Arc::new(GlobalMemory {
            budget,
            granted: Mutex::new(0),
            resident: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        })
    }

    /// Carves a grant for one execution out of the unpromised remainder of
    /// the pool, capped by the query's own `cap` (its `mem_budget`).
    ///
    /// On a bounded pool the grant is `min(cap, budget - granted)` — a
    /// query without a cap of its own claims the entire remainder. A
    /// late-arriving query can receive a **zero** grant; it then spills
    /// every batch it buffers, which is slow but correct, and its grant
    /// grows back to normal once earlier queries finish and return theirs.
    /// On an unbounded pool the grant is simply `cap` (`None` = the
    /// execution runs ungoverned, exactly as without a runtime).
    pub fn carve(self: &Arc<Self>, cap: Option<u64>) -> MemoryGrant {
        let bytes = match self.budget {
            None => cap,
            Some(total) => {
                let mut granted = self.granted.lock().unwrap();
                let avail = total.saturating_sub(*granted);
                let take = cap.unwrap_or(avail).min(avail);
                *granted += take;
                Some(take)
            }
        };
        MemoryGrant {
            bytes,
            pool: Arc::clone(self),
        }
    }

    /// Returns a grant's bytes to the pool (called by [`MemoryGrant`]'s
    /// drop).
    fn return_grant(&self, bytes: u64) {
        if self.budget.is_some() {
            let mut granted = self.granted.lock().unwrap();
            *granted = granted.saturating_sub(bytes);
        }
    }

    /// Mirrors newly buffered execution state into the pool's gauges.
    fn add_resident(&self, bytes: u64) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
    }

    /// Mirrors released execution state out of the pool's gauges.
    fn sub_resident(&self, bytes: u64) {
        let _ = self
            .resident
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// The pool budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes currently promised to live grants.
    pub fn granted(&self) -> u64 {
        *self.granted.lock().unwrap()
    }

    /// Bytes currently buffered across all executions of the pool.
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`GlobalMemory::resident`].
    pub fn peak_resident(&self) -> u64 {
        self.peak_resident.load(Ordering::Relaxed)
    }
}

/// One execution's slice of a [`GlobalMemory`] pool — RAII: the bytes
/// return to the pool when the grant drops (normally via the owning
/// [`MemoryGovernor`], on every exit path including worker panics).
#[derive(Debug)]
pub struct MemoryGrant {
    /// The granted budget (`None` = ungoverned execution).
    bytes: Option<u64>,
    pool: Arc<GlobalMemory>,
}

impl MemoryGrant {
    /// The granted budget (`None` = the execution runs ungoverned).
    pub fn bytes(&self) -> Option<u64> {
        self.bytes
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        if let Some(b) = self.bytes {
            self.pool.return_grant(b);
        }
    }
}

/// Scoped temp directory holding one execution's spill files. Removing it
/// recursively on drop is what guarantees no spill file outlives its
/// execution — including executions that fail with [`ExecError::Panic`]:
/// the scheduler catches worker unwinds, so the governor (and this
/// directory) is always dropped by the driver.
#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failed removal leaks tmp files but must not turn a
        // finished query into an error (or a panic during unwind).
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Monotonic discriminator so two executions in one process (or a reused
/// pid across processes, via the timestamp) never share a directory.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared memory-budget tracker of one execution, plus the factory for its
/// spill files.
///
/// All blocking operators of an execution charge the same governor:
/// [`grant`](MemoryGovernor::grant) when buffering records,
/// [`release`](MemoryGovernor::release) when spilling or emitting them.
/// [`over_budget`](MemoryGovernor::over_budget) compares the *global*
/// resident total against the budget, so pressure from one large operator
/// makes every buffering operator shed state — the behavior a per-worker
/// memory budget models. Byte sizes use [`Record::encoded_len`], the same
/// approximation the cost model's `mem_budget` is expressed in.
///
/// The spill directory is created lazily on the first spill (unbounded and
/// under-budget executions never touch the filesystem) and removed when
/// the governor drops.
#[derive(Debug)]
pub struct MemoryGovernor {
    /// `None` = unbounded (never spills).
    budget: Option<u64>,
    /// Bytes currently buffered across all operators of the execution.
    resident: AtomicU64,
    /// Lazily created scoped directory holding this execution's runs.
    dir: Mutex<Option<SpillDir>>,
    /// Where to create the scoped directory (defaults to the OS temp dir).
    base: Option<PathBuf>,
    /// Names run files uniquely within the directory.
    run_seq: AtomicU64,
    /// The pool grant this governor's budget was carved from, when the
    /// execution runs on a shared runtime. Held here so the grant returns
    /// to the pool exactly when the governor drops; resident bytes mirror
    /// into the pool's gauges through it.
    grant: Option<MemoryGrant>,
    /// Span recorder when the owning execution is traced: run writes and
    /// k-way merges record spill spans here (`None` = tracing off).
    trace: Option<Arc<crate::trace::TraceRecorder>>,
}

impl MemoryGovernor {
    /// A governor that never reports pressure (no budget, no spilling).
    pub fn unbounded() -> Self {
        Self::with_budget(None)
    }

    /// A governor enforcing `budget` bytes (`None` = unbounded), spilling
    /// into the OS temp directory.
    pub fn with_budget(budget: Option<u64>) -> Self {
        Self::with_budget_in(budget, None)
    }

    /// [`MemoryGovernor::with_budget`] with an explicit parent directory
    /// for the scoped spill directory (`None` = OS temp dir).
    pub fn with_budget_in(budget: Option<u64>, base: Option<PathBuf>) -> Self {
        MemoryGovernor {
            budget,
            resident: AtomicU64::new(0),
            dir: Mutex::new(None),
            base,
            run_seq: AtomicU64::new(0),
            grant: None,
            trace: None,
        }
    }

    /// A governor whose budget is a [`MemoryGrant`] carved from a shared
    /// [`GlobalMemory`] pool. The budget *is* the grant's bytes; resident
    /// bytes mirror into the pool's gauges; [`over_budget`] still compares
    /// only this execution's resident bytes against its own grant, so one
    /// query's pressure never spills another.
    ///
    /// [`over_budget`]: MemoryGovernor::over_budget
    pub fn with_grant(grant: MemoryGrant, base: Option<PathBuf>) -> Self {
        MemoryGovernor {
            budget: grant.bytes(),
            resident: AtomicU64::new(0),
            dir: Mutex::new(None),
            base,
            run_seq: AtomicU64::new(0),
            grant: Some(grant),
            trace: None,
        }
    }

    /// Attaches (or detaches) the execution's span recorder — the
    /// streaming runtime calls this right after constructing the governor
    /// so spill-run and merge spans land in the query's trace.
    pub fn set_trace(&mut self, trace: Option<Arc<crate::trace::TraceRecorder>>) {
        self.trace = trace;
    }

    /// The execution's span recorder, if tracing is on (the merge
    /// machinery records its spans through this).
    #[inline]
    pub(crate) fn trace(&self) -> Option<&Arc<crate::trace::TraceRecorder>> {
        self.trace.as_ref()
    }

    /// Whether a budget is in force at all. Operators may skip byte
    /// accounting entirely when unbounded.
    #[inline]
    pub fn bounded(&self) -> bool {
        self.budget.is_some()
    }

    /// Registers `bytes` of newly buffered operator state.
    #[inline]
    pub fn grant(&self, bytes: u64) {
        if self.budget.is_some() {
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            if let Some(g) = &self.grant {
                g.pool.add_resident(bytes);
            }
        }
    }

    /// Releases `bytes` of operator state (spilled, flushed or emitted).
    #[inline]
    pub fn release(&self, bytes: u64) {
        if self.budget.is_some() {
            // Saturating: a release can race a concurrent grant's visibility,
            // and clamping beats wrapping to u64::MAX (permanent pressure).
            // The pool mirror subtracts what was actually subtracted here,
            // so it can never eat into a sibling execution's accounting.
            let mut freed = bytes;
            let _ = self
                .resident
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    freed = v.min(bytes);
                    Some(v - freed)
                });
            if let Some(g) = &self.grant {
                g.pool.sub_resident(freed);
            }
        }
    }

    /// `true` when the execution's resident bytes exceed the budget — the
    /// signal for every buffering operator to shed its state.
    #[inline]
    pub fn over_budget(&self) -> bool {
        match self.budget {
            Some(b) => self.resident.load(Ordering::Relaxed) > b,
            None => false,
        }
    }

    /// Bytes currently registered as resident (0 when unbounded).
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Writes `records` — which the caller has already sorted — as one
    /// spill file, creating the scoped spill directory on first use.
    pub fn write_sorted_run(&self, records: &[Record]) -> Result<SortedRun, ExecError> {
        let t0 = self.trace.as_ref().map(|tr| tr.now_ns());
        let path = self.new_run_path()?;
        let mut w = RunWriter::create(path).map_err(spill_err)?;
        for r in records {
            w.write(r).map_err(spill_err)?;
        }
        let run = w.finish().map_err(spill_err)?;
        if let (Some(t0), Some(tr)) = (t0, &self.trace) {
            tr.record(
                "spill-run",
                "spill",
                t0,
                vec![("records", run.records()), ("bytes", run.bytes())],
            );
        }
        Ok(run)
    }

    /// A fresh, unique path for a run file inside the scoped directory.
    pub(crate) fn new_run_path(&self) -> Result<PathBuf, ExecError> {
        let mut dir = self.dir.lock().unwrap();
        if dir.is_none() {
            *dir = Some(create_dir(self.base.as_deref()).map_err(spill_err)?);
        }
        let seq = self.run_seq.fetch_add(1, Ordering::Relaxed);
        Ok(dir.as_ref().unwrap().path.join(format!("run-{seq}.spill")))
    }

    /// Path of the scoped spill directory, if any spill happened yet.
    pub fn spill_dir_path(&self) -> Option<PathBuf> {
        self.dir.lock().unwrap().as_ref().map(|d| d.path.clone())
    }
}

impl Drop for MemoryGovernor {
    fn drop(&mut self) {
        // On error/panic exits operators never release what they buffered;
        // square the pool's resident gauge so an aborted query cannot leave
        // phantom bytes pinned against everyone else's headroom. (The grant
        // itself returns via its own drop, which runs after this body.)
        if let Some(g) = &self.grant {
            let leftover = self.resident.load(Ordering::Relaxed);
            if leftover > 0 {
                g.pool.sub_resident(leftover);
            }
        }
    }
}

fn create_dir(base: Option<&Path>) -> std::io::Result<SpillDir> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let name = format!(
        "strato-spill-{}-{}-{nanos}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let path = base
        .map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir)
        .join(name);
    std::fs::create_dir_all(&path)?;
    Ok(SpillDir { path })
}

/// Maps an IO failure on the spill path into an execution error.
pub(crate) fn spill_err(e: std::io::Error) -> ExecError {
    ExecError::Spill(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    fn rec(v: i64) -> Record {
        Record::from_values([Value::Int(v)])
    }

    #[test]
    fn unbounded_never_reports_pressure() {
        let g = MemoryGovernor::unbounded();
        assert!(!g.bounded());
        g.grant(u64::MAX);
        assert!(!g.over_budget());
        assert_eq!(g.resident(), 0, "unbounded governors skip accounting");
    }

    #[test]
    fn pressure_tracks_grant_and_release() {
        let g = MemoryGovernor::with_budget(Some(100));
        assert!(g.bounded());
        g.grant(80);
        assert!(!g.over_budget(), "at or below budget is fine");
        g.grant(40);
        assert!(g.over_budget());
        assert_eq!(g.resident(), 120);
        g.release(50);
        assert!(!g.over_budget());
        // Over-release clamps to zero instead of wrapping.
        g.release(1_000);
        assert_eq!(g.resident(), 0);
    }

    #[test]
    fn spill_dir_is_created_lazily_and_removed_on_drop() {
        let g = MemoryGovernor::with_budget(Some(1));
        assert_eq!(g.spill_dir_path(), None, "no spill, no directory");
        let run = g.write_sorted_run(&[rec(1), rec(2)]).unwrap();
        let dir = g.spill_dir_path().expect("directory exists after a spill");
        assert!(dir.exists());
        assert_eq!(run.records(), 2);
        drop(g);
        assert!(!dir.exists(), "scoped directory removed on drop");
    }

    #[test]
    fn carve_caps_grants_at_the_pool_remainder() {
        let pool = GlobalMemory::new(Some(100));
        let a = pool.carve(Some(60));
        assert_eq!(a.bytes(), Some(60));
        // Uncapped query: takes the whole remainder.
        let b = pool.carve(None);
        assert_eq!(b.bytes(), Some(40));
        assert_eq!(pool.granted(), 100);
        // Exhausted pool: a zero grant (spill-everything), not a panic.
        let c = pool.carve(Some(10));
        assert_eq!(c.bytes(), Some(0));
        // Grants return on drop.
        drop(a);
        assert_eq!(pool.granted(), 40);
        let d = pool.carve(Some(1_000));
        assert_eq!(d.bytes(), Some(60), "cap above remainder clamps");
    }

    #[test]
    fn unbounded_pool_passes_caps_through() {
        let pool = GlobalMemory::new(None);
        assert_eq!(pool.carve(Some(7)).bytes(), Some(7));
        assert_eq!(pool.carve(None).bytes(), None, "ungoverned stays so");
        assert_eq!(pool.granted(), 0);
    }

    #[test]
    fn governor_mirrors_resident_bytes_into_the_pool() {
        let pool = GlobalMemory::new(Some(100));
        let g1 = MemoryGovernor::with_grant(pool.carve(Some(50)), None);
        let g2 = MemoryGovernor::with_grant(pool.carve(Some(50)), None);
        g1.grant(30);
        g2.grant(20);
        assert_eq!(pool.resident(), 50);
        assert_eq!(pool.peak_resident(), 50);
        g1.release(30);
        assert_eq!(pool.resident(), 20);
        assert_eq!(pool.peak_resident(), 50, "peak is a high-water mark");
        // Over-release clamps locally and mirrors only what was freed.
        g2.release(1_000);
        assert_eq!((g2.resident(), pool.resident()), (0, 0));
    }

    #[test]
    fn pressure_is_per_query_not_per_pool() {
        let pool = GlobalMemory::new(Some(100));
        let heavy = MemoryGovernor::with_grant(pool.carve(Some(10)), None);
        let light = MemoryGovernor::with_grant(pool.carve(Some(50)), None);
        heavy.grant(25);
        assert!(heavy.over_budget(), "heavy blew its own grant");
        assert!(!light.over_budget(), "…but the neighbor feels nothing");
        light.grant(10);
        assert!(!light.over_budget());
    }

    #[test]
    fn dropping_a_governor_squares_the_pool_gauges() {
        let pool = GlobalMemory::new(Some(100));
        let g = MemoryGovernor::with_grant(pool.carve(Some(80)), None);
        g.grant(64);
        assert_eq!((pool.resident(), pool.granted()), (64, 80));
        // Simulates an aborted query: nothing released, governor dropped.
        drop(g);
        assert_eq!(pool.resident(), 0, "residual resident bytes squared");
        assert_eq!(pool.granted(), 0, "grant returned");
    }

    #[test]
    fn run_paths_are_unique() {
        let g = MemoryGovernor::with_budget(Some(1));
        let a = g.new_run_path().unwrap();
        let b = g.new_run_path().unwrap();
        assert_ne!(a, b);
        drop(g);
        assert!(!a.parent().unwrap().exists());
    }
}
