//! Spill files: length-framed records in the wire encoding.
//!
//! A spill file is a sequence of frames, each a little-endian `u32` byte
//! length followed by one [`strato_record::wire`]-encoded record. The
//! frame prefix is what makes the stream incrementally decodable from
//! buffered file IO — the wire encoding itself is self-delimiting only
//! when decoded from a full buffer.

use crate::engine::ExecError;
use crate::spill::governor::spill_err;
use bytes::BytesMut;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use strato_record::{wire, Record};

/// One on-disk run of records in ascending comparator order, produced by a
/// spilling operator (or by an intermediate merge pass). The run only
/// holds the path, so an unopened run costs no file handle; its file is
/// deleted when the run is dropped (consumed by a compaction pass or a
/// finished merge), which bounds peak spill-directory usage to ~2× the
/// live data instead of accumulating every merge generation until the
/// execution ends. Readers opened before the drop keep working (POSIX
/// unlink semantics); where deletion of an open file is refused, the
/// scoped directory still removes it at execution end.
#[derive(Debug)]
pub struct SortedRun {
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl Drop for SortedRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl SortedRun {
    /// Number of records in the run.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// On-disk size of the run in bytes (frame headers included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opens the run for sequential reading.
    pub fn open(&self) -> Result<RunReader, ExecError> {
        let f = File::open(&self.path).map_err(spill_err)?;
        Ok(RunReader {
            r: BufReader::new(f),
            remaining: self.records,
            frame: Vec::new(),
        })
    }
}

/// Streaming writer of one spill file.
pub(crate) struct RunWriter {
    w: BufWriter<File>,
    path: PathBuf,
    buf: BytesMut,
    records: u64,
    bytes: u64,
}

impl RunWriter {
    /// Creates the file at `path` (which must not exist yet).
    pub(crate) fn create(path: PathBuf) -> std::io::Result<RunWriter> {
        let f = File::options().write(true).create_new(true).open(&path)?;
        Ok(RunWriter {
            w: BufWriter::new(f),
            path,
            buf: BytesMut::with_capacity(256),
            records: 0,
            bytes: 0,
        })
    }

    /// Appends one record frame via the shared [`wire::encode_framed`]
    /// helper — the same framing the ship validation path round-trips.
    pub(crate) fn write(&mut self, r: &Record) -> std::io::Result<()> {
        self.buf.clear();
        let framed = wire::encode_framed(r, &mut self.buf);
        self.w.write_all(self.buf.as_ref())?;
        self.records += 1;
        self.bytes += framed as u64;
        Ok(())
    }

    /// Flushes and seals the run.
    pub(crate) fn finish(mut self) -> std::io::Result<SortedRun> {
        self.w.flush()?;
        Ok(SortedRun {
            path: self.path,
            records: self.records,
            bytes: self.bytes,
        })
    }
}

/// Streaming reader over one spill file; yields records in file order.
pub struct RunReader {
    r: BufReader<File>,
    remaining: u64,
    frame: Vec<u8>,
}

impl Iterator for RunReader {
    type Item = Result<Record, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.read_one())
    }
}

impl RunReader {
    fn read_one(&mut self) -> Result<Record, ExecError> {
        let mut len = [0u8; wire::FRAME_HEADER_LEN];
        self.r.read_exact(&mut len).map_err(spill_err)?;
        let len = u32::from_le_bytes(len) as usize;
        self.frame.resize(len, 0);
        self.r.read_exact(&mut self.frame).map_err(spill_err)?;
        let mut buf: &[u8] = &self.frame;
        wire::decode_record(&mut buf).map_err(|e| ExecError::Spill(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::MemoryGovernor;
    use strato_record::Value;

    #[test]
    fn runs_roundtrip_all_value_kinds() {
        let g = MemoryGovernor::with_budget(Some(1));
        let records = vec![
            Record::from_values([
                Value::Null,
                Value::Bool(true),
                Value::Int(-42),
                Value::Float(2.5),
                Value::str("hello ⟨world⟩"),
            ]),
            Record::default(),
            Record::from_values([Value::Int(7)]),
        ];
        let run = g.write_sorted_run(&records).unwrap();
        assert_eq!(run.records(), 3);
        assert!(run.bytes() > 0);
        let back: Vec<Record> = run.open().unwrap().map(Result::unwrap).collect();
        assert_eq!(back, records);
        // A run reads repeatedly (each open is an independent cursor).
        let again: Vec<Record> = run.open().unwrap().map(Result::unwrap).collect();
        assert_eq!(again, records);
    }

    #[test]
    fn empty_run_reads_empty() {
        let g = MemoryGovernor::with_budget(Some(1));
        let run = g.write_sorted_run(&[]).unwrap();
        assert_eq!(run.records(), 0);
        assert_eq!(run.open().unwrap().count(), 0);
    }

    #[test]
    fn truncated_file_surfaces_a_spill_error() {
        let g = MemoryGovernor::with_budget(Some(1));
        let run = g
            .write_sorted_run(&[Record::from_values([Value::Int(1)])])
            .unwrap();
        // Chop the file mid-frame.
        let dir = g.spill_dir_path().unwrap();
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        let err = run.open().unwrap().next().unwrap().unwrap_err();
        assert!(matches!(err, ExecError::Spill(_)), "{err}");
    }
}
