//! Out-of-core execution: the memory-governed spill subsystem.
//!
//! The paper's cost model prices sort and hash strategies by their memory
//! footprint: state beyond [`CostWeights::mem_budget`] is charged a
//! disk-spill penalty (write + read). This module makes that charge
//! describe **real behavior**: every blocking operator registers its
//! buffered state with a shared per-execution [`MemoryGovernor`] and, when
//! the execution exceeds its budget, flushes that state to *sorted runs*
//! on disk and finishes via a k-way [loser-tree merge](merge) — the
//! classic external-sort architecture of the Stratosphere/Nephele runtime
//! the paper targets.
//!
//! Pieces:
//!
//! * [`MemoryGovernor`] — atomically tracks the bytes resident across all
//!   blocking operators of one execution against
//!   `ExecOptions::mem_budget`. Operators [`grant`](MemoryGovernor::grant)
//!   bytes as they buffer, check [`over_budget`](MemoryGovernor::over_budget)
//!   after every batch, and [`release`](MemoryGovernor::release) what they
//!   spill or emit — so resident state stays within one batch of the
//!   budget. The governor also owns the execution's **scoped spill
//!   directory**: created lazily on first spill, removed on drop on every
//!   path (success, error, and worker panic — the scheduler contains
//!   panics, so the governor's `Drop` always runs).
//! * [`GlobalMemory`] — the machine-wide pool of a shared
//!   [`EngineRuntime`](crate::runtime::EngineRuntime). Each query's
//!   governor is then built from a [`MemoryGrant`] carved out of the
//!   pool's unpromised remainder (capped by the query's own
//!   `mem_budget`), so the sum of per-query budgets never exceeds the
//!   machine budget — and because `over_budget` still compares only the
//!   query's own resident bytes against its own grant, pressure in one
//!   query spills *its* state, never a neighbor's.
//! * `file` — spill files: length-framed records in the existing wire
//!   encoding ([`strato_record::wire`]), written/read through buffered
//!   file IO. A `file::SortedRun` is one file of records in
//!   ascending comparator order.
//! * [`merge`] — a [loser tree](merge::LoserTree) merging `k` sorted
//!   sources by an arbitrary comparator, plus `merge::merge_runs`
//!   which caps the merge fan-in by compacting surplus runs into larger
//!   ones first (bounded open file handles at any batch size).
//!
//! How each blocking operator degrades under pressure:
//!
//! * **Reduce** (hash + sort grouping) sorts its buffer canonically and
//!   writes it as a run; `finish` merges runs + tail and walks key groups
//!   off the merged stream. Emission order (ascending canonical key
//!   order) is identical to both in-memory algorithms.
//! * **Match** spills each side as key-sorted runs (null join keys are
//!   dropped at spill time — they match nothing) and joins by external
//!   sort-merge regardless of the requested in-memory algorithm.
//! * **CoGroup** spills each side canonically (null keys kept — they
//!   group) and merge-walks the two external group streams.
//! * **StreamAgg** in the *final* role spills its partial table as sorted
//!   runs and re-folds equal-key partials at merge time (legal: the folds
//!   are proven associative + commutative). In the *combiner* role it
//!   never touches disk: it flushes partials **downstream** Hadoop-style —
//!   the final Reduce re-groups them — trading shipped volume for memory.
//!
//! [`CostWeights::mem_budget`]: strato_core::cost::CostWeights

pub mod file;
pub mod governor;
pub mod merge;

pub use file::{RunReader, SortedRun};
pub use governor::{GlobalMemory, MemoryGovernor, MemoryGrant};
pub use merge::{merge_runs, LoserTree};
