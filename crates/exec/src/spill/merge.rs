//! K-way merging of sorted runs with a loser tree.
//!
//! A [`LoserTree`] merges `k` sorted record sources in `O(log k)`
//! comparisons per record: each internal node remembers the *loser* of the
//! comparison played there, so replacing the winner replays exactly one
//! leaf-to-root path. Ties break toward the lower source index, making the
//! merge fully deterministic for any comparator.
//!
//! [`merge_runs`] is the entry point operators use: it bounds the merge
//! fan-in (and thus open file handles) by first compacting surplus runs
//! into larger intermediate runs — classic multi-pass external sorting —
//! then streams the final merge, appending the in-memory tail of
//! still-unspilled records as one extra source.

use crate::engine::ExecError;
use crate::spill::file::RunWriter;
use crate::spill::file::{RunReader, SortedRun};
use crate::spill::governor::{spill_err, MemoryGovernor};
use std::cmp::Ordering;
use strato_record::Record;

/// Maximum sources merged at once (also the open-file-handle bound).
pub const MERGE_FAN_IN: usize = 32;

/// One input of a merge: a spill file on disk or an in-memory tail.
enum RunSource {
    Disk(RunReader),
    Mem(std::vec::IntoIter<Record>),
}

impl Iterator for RunSource {
    type Item = Result<Record, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RunSource::Disk(r) => r.next(),
            RunSource::Mem(it) => it.next().map(Ok),
        }
    }
}

/// Sentinel leaf index meaning "not yet occupied" during tree build.
const NONE: usize = usize::MAX;

/// A k-way merge iterator over sorted sources.
///
/// Yields records in comparator order; a source error (e.g. a truncated
/// spill file) is yielded once and the iterator then fuses. Sources must
/// individually be sorted by the same comparator for the merge to be
/// globally sorted.
pub struct LoserTree<S, F> {
    sources: Vec<S>,
    /// Current head record of each source (`None` = exhausted).
    heads: Vec<Option<Record>>,
    /// `tree[0]` = overall winner; `tree[1..k]` = loser parked per node.
    tree: Vec<usize>,
    cmp: F,
    k: usize,
    failed: bool,
}

impl<S, F> LoserTree<S, F>
where
    S: Iterator<Item = Result<Record, ExecError>>,
    F: Fn(&Record, &Record) -> Ordering,
{
    /// Builds the tree, pulling one head record per source.
    pub fn new(mut sources: Vec<S>, cmp: F) -> Result<Self, ExecError> {
        let k = sources.len();
        let mut heads = Vec::with_capacity(k);
        for s in &mut sources {
            heads.push(s.next().transpose()?);
        }
        let mut t = LoserTree {
            sources,
            heads,
            tree: vec![NONE; k.max(1)],
            cmp,
            k,
            failed: false,
        };
        for leaf in 0..k {
            t.adjust(leaf);
        }
        Ok(t)
    }

    /// Does leaf `a` beat leaf `b`? Exhausted sources always lose; ties go
    /// to the lower index (stable, deterministic merges).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => match (self.cmp)(x, y) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Replays leaf `s`'s path to the root, parking losers. During the
    /// initial build a leaf parks at the first empty node it meets.
    fn adjust(&mut self, mut s: usize) {
        let mut t = (s + self.k) / 2;
        while t > 0 {
            if self.tree[t] == NONE {
                self.tree[t] = s;
                return;
            }
            if self.beats(self.tree[t], s) {
                std::mem::swap(&mut s, &mut self.tree[t]);
            }
            t /= 2;
        }
        self.tree[0] = s;
    }
}

impl<S, F> Iterator for LoserTree<S, F>
where
    S: Iterator<Item = Result<Record, ExecError>>,
    F: Fn(&Record, &Record) -> Ordering,
{
    type Item = Result<Record, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.k == 0 {
            return None;
        }
        let w = self.tree[0];
        let rec = self.heads[w].take()?;
        match self.sources[w].next().transpose() {
            Ok(next) => self.heads[w] = next,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        }
        self.adjust(w);
        Some(Ok(rec))
    }
}

/// Merges `runs` plus an in-memory `tail` (already sorted by `cmp`) into
/// one globally sorted stream.
///
/// When more than [`MERGE_FAN_IN`] runs exist, surplus runs are first
/// compacted into larger intermediate runs (written through `gov` into the
/// same scoped spill directory), so the final streaming merge never holds
/// more than `MERGE_FAN_IN + 1` sources open. Compaction rewrites are
/// merge work, not memory-pressure events: they are deliberately **not**
/// charged to the `ExecStats` spill counters, which count first-generation
/// pressure sheds (see `ExecStats::records_spilled`). Consumed source runs
/// delete their files on drop, so a pass holds at most two generations on
/// disk.
pub fn merge_runs<F>(
    gov: &MemoryGovernor,
    runs: Vec<SortedRun>,
    tail: Vec<Record>,
    cmp: F,
) -> Result<impl Iterator<Item = Result<Record, ExecError>>, ExecError>
where
    F: Fn(&Record, &Record) -> Ordering + Copy,
{
    merge_runs_with_fan_in(gov, runs, tail, cmp, MERGE_FAN_IN)
}

/// [`merge_runs`] with an explicit fan-in bound (tests shrink it to force
/// multi-pass compaction on small inputs).
pub fn merge_runs_with_fan_in<F>(
    gov: &MemoryGovernor,
    mut runs: Vec<SortedRun>,
    tail: Vec<Record>,
    cmp: F,
    fan_in: usize,
) -> Result<impl Iterator<Item = Result<Record, ExecError>>, ExecError>
where
    F: Fn(&Record, &Record) -> Ordering + Copy,
{
    let fan_in = fan_in.max(2);
    while runs.len() > fan_in {
        // Compact the oldest `fan_in` runs (oldest first keeps the pass
        // count logarithmic) into one larger run.
        let t0 = gov.trace().map(|tr| tr.now_ns());
        let batch: Vec<SortedRun> = runs.drain(..fan_in).collect();
        let mut sources = Vec::with_capacity(batch.len());
        for r in &batch {
            sources.push(RunSource::Disk(r.open()?));
        }
        let mut w = RunWriter::create(gov.new_run_path()?).map_err(spill_err)?;
        for rec in LoserTree::new(sources, cmp)? {
            w.write(&rec?).map_err(spill_err)?;
        }
        let compacted = w.finish().map_err(spill_err)?;
        if let (Some(t0), Some(tr)) = (t0, gov.trace()) {
            tr.record(
                "merge-pass",
                "merge",
                t0,
                vec![
                    ("sources", fan_in as u64),
                    ("records", compacted.records()),
                    ("bytes", compacted.bytes()),
                ],
            );
        }
        runs.push(compacted);
    }
    let mut sources = Vec::with_capacity(runs.len() + 1);
    for r in &runs {
        sources.push(RunSource::Disk(r.open()?));
    }
    if !tail.is_empty() {
        sources.push(RunSource::Mem(tail.into_iter()));
    }
    let n_sources = sources.len();
    Ok(TracedMerge {
        span: gov
            .trace()
            .map(|tr| (std::sync::Arc::clone(tr), tr.now_ns(), n_sources)),
        inner: LoserTree::new(sources, cmp)?,
    })
}

/// The final streaming k-way merge, wrapped so a `kway-merge` span covers
/// its whole lifetime. The merge streams interleaved with its consumer, so
/// the span measures the drain window (creation to drop), not pure merge
/// CPU — per-record clock reads on the merge hot path would violate the
/// tracing overhead contract.
struct TracedMerge<I> {
    inner: I,
    /// `(recorder, start, source count)` when the execution is traced.
    span: Option<(std::sync::Arc<crate::trace::TraceRecorder>, u64, usize)>,
}

impl<I: Iterator<Item = Result<Record, ExecError>>> Iterator for TracedMerge<I> {
    type Item = Result<Record, ExecError>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl<I> Drop for TracedMerge<I> {
    fn drop(&mut self) {
        if let Some((tr, t0, sources)) = self.span.take() {
            tr.record("kway-merge", "merge", t0, vec![("sources", sources as u64)]);
        }
    }
}

/// The shared finish-path constructor of the spilling blocking operators:
/// canonically sorts the operator's unspilled in-memory `tail`, merges it
/// with the on-disk `runs`, and walks the merged stream as key groups.
/// Callers only differ in what they feed in (null filtering, partial
/// re-folding) — the sort/merge/group plumbing lives here once.
// The nested `impl Trait` cannot be named in a `type` alias on stable.
#[allow(clippy::type_complexity)]
pub(crate) fn external_group_stream<'k>(
    gov: &MemoryGovernor,
    runs: Vec<SortedRun>,
    mut tail: Vec<Record>,
    key: &'k [strato_record::AttrId],
) -> Result<
    GroupStream<
        impl Iterator<Item = Result<Record, ExecError>> + 'k,
        impl Fn(&Record, &Record) -> bool + 'k,
    >,
    ExecError,
> {
    use crate::operators::{canonical_cmp, key_cmp};
    tail.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
    let merged = merge_runs(gov, runs, tail, move |a, b| canonical_cmp(a, b, key))?;
    GroupStream::new(merged, move |a, b| key_cmp(a, b, key).is_eq())
}

/// Walks a merged, sorted record stream as *groups*: consecutive records
/// for which `same_group` holds. The blocking operators' external paths
/// all finish through this — a group (one key's records) must fit in
/// memory, exactly as the group-at-a-time UDF contract already requires.
pub(crate) struct GroupStream<I, G> {
    inner: I,
    same_group: G,
    peeked: Option<Record>,
}

impl<I, G> GroupStream<I, G>
where
    I: Iterator<Item = Result<Record, ExecError>>,
    G: Fn(&Record, &Record) -> bool,
{
    pub(crate) fn new(mut inner: I, same_group: G) -> Result<Self, ExecError> {
        let peeked = inner.next().transpose()?;
        Ok(GroupStream {
            inner,
            same_group,
            peeked,
        })
    }

    /// The first record of the next group, without consuming it.
    pub(crate) fn peek(&self) -> Option<&Record> {
        self.peeked.as_ref()
    }

    /// Reads the next complete group, or `None` at end of stream.
    pub(crate) fn next_group(&mut self) -> Result<Option<Vec<Record>>, ExecError> {
        let Some(first) = self.peeked.take() else {
            return Ok(None);
        };
        let mut group = vec![first];
        loop {
            match self.inner.next().transpose()? {
                Some(r) if (self.same_group)(&group[0], &r) => group.push(r),
                next => {
                    self.peeked = next;
                    return Ok(Some(group));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    fn rec(v: i64) -> Record {
        Record::from_values([Value::Int(v)])
    }

    fn mem(vals: &[i64]) -> RunSource {
        RunSource::Mem(vals.iter().map(|&v| rec(v)).collect::<Vec<_>>().into_iter())
    }

    fn collect<I: Iterator<Item = Result<Record, ExecError>>>(it: I) -> Vec<i64> {
        it.map(|r| r.unwrap().field(0).as_int().unwrap()).collect()
    }

    #[test]
    fn merges_arbitrary_source_counts() {
        for k in 0..6usize {
            let sources: Vec<RunSource> = (0..k)
                .map(|i| {
                    let vals: Vec<i64> = (0..5).map(|j| (j * k + i) as i64).collect();
                    mem(&vals)
                })
                .collect();
            let merged = collect(LoserTree::new(sources, |a, b| a.cmp(b)).unwrap());
            let expected: Vec<i64> = (0..(5 * k) as i64).collect();
            assert_eq!(merged, expected, "k = {k}");
        }
    }

    #[test]
    fn uneven_and_empty_sources_merge() {
        let sources = vec![mem(&[1, 4, 9]), mem(&[]), mem(&[2]), mem(&[2, 3, 3, 10])];
        let merged = collect(LoserTree::new(sources, |a, b| a.cmp(b)).unwrap());
        assert_eq!(merged, vec![1, 2, 2, 3, 3, 4, 9, 10]);
    }

    #[test]
    fn compaction_bounds_fan_in_without_changing_the_result() {
        let g = MemoryGovernor::with_budget(Some(1));
        // 9 runs of 3 records, fan-in 2 → several compaction passes.
        let mut runs = Vec::new();
        for i in 0..9i64 {
            let recs: Vec<Record> = (0..3).map(|j| rec(i + 9 * j)).collect();
            runs.push(g.write_sorted_run(&recs).unwrap());
        }
        let tail: Vec<Record> = vec![rec(100), rec(101)];
        let merged = collect(merge_runs_with_fan_in(&g, runs, tail, |a, b| a.cmp(b), 2).unwrap());
        let mut expected: Vec<i64> = (0..27).collect();
        expected.extend([100, 101]);
        assert_eq!(merged, expected);
    }

    #[test]
    fn group_stream_walks_runs_of_equal_keys() {
        let src = mem(&[1, 1, 2, 5, 5, 5]);
        let mut gs = GroupStream::new(src, |a, b| a.field(0) == b.field(0)).unwrap();
        assert_eq!(gs.peek().unwrap().field(0), &Value::Int(1));
        let sizes: Vec<usize> = std::iter::from_fn(|| gs.next_group().unwrap())
            .map(|g| g.len())
            .collect();
        assert_eq!(sizes, vec![2, 1, 3]);
        assert!(gs.next_group().unwrap().is_none());
    }
}
