//! The CoGroup operator: sort-merge co-grouping over both key domains,
//! spilling each side to sorted runs under memory pressure.

use super::{canonical_cmp, key_cmp2, records_bytes, run_len, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use crate::spill::merge::external_group_stream;
use crate::spill::SortedRun;
use std::cmp::Ordering;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::{Record, RecordBatch};

/// Blocking CoGroup: buffers both inputs, sorts each side canonically by
/// its key, and merge-walks the two sorted runs. One UDF invocation per
/// key of the *combined* active domain — a key present on only one side
/// still forms a group, with an empty slice for the absent side.
///
/// Both side buffers register with the [`MemoryGovernor`]: under pressure
/// each side is shed to a canonically key-sorted on-disk run (null keys
/// are kept — they group like any other key), and `finish` merge-walks
/// two *external* group streams instead of two in-memory sorted vectors.
/// The walk order — ascending combined key domain — is identical either
/// way.
///
/// [`MemoryGovernor`]: crate::spill::MemoryGovernor
pub struct CoGroupOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
    sides: [Vec<Record>; 2],
    /// Governor-granted bytes per buffered side.
    side_bytes: [u64; 2],
    /// Sorted runs spilled per side (usually empty).
    runs: [Vec<SortedRun>; 2],
}

impl<'a> CoGroupOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, ctx: OpCtx<'a>) -> Self {
        CoGroupOp {
            op,
            ctx,
            sides: [Vec::new(), Vec::new()],
            side_bytes: [0, 0],
            runs: [Vec::new(), Vec::new()],
        }
    }

    /// Sheds one side's buffer to a canonically sorted on-disk run.
    fn spill_side(&mut self, side: usize) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[side];
        self.sides[side].sort_unstable_by(|a, b| canonical_cmp(a, b, key));
        let run = self.ctx.gov.write_sorted_run(&self.sides[side])?;
        self.ctx
            .stats
            .add_spill(self.ctx.op_id, run.records(), run.bytes());
        self.runs[side].push(run);
        self.sides[side].clear();
        self.ctx.gov.release(self.side_bytes[side]);
        self.side_bytes[side] = 0;
        Ok(())
    }

    /// Merge-walk over two external group streams — the out-of-core twin
    /// of the in-memory walk in [`Operator::finish`].
    fn finish_external(&mut self, emitted: &mut Vec<Record>) -> Result<u64, ExecError> {
        let (kl, kr) = (&self.op.key_attrs[0], &self.op.key_attrs[1]);
        let mut streams = Vec::with_capacity(2);
        for side in 0..2 {
            let key = &self.op.key_attrs[side];
            let tail = std::mem::take(&mut self.sides[side]);
            self.ctx.gov.release(self.side_bytes[side]);
            self.side_bytes[side] = 0;
            streams.push(external_group_stream(
                self.ctx.gov,
                std::mem::take(&mut self.runs[side]),
                tail,
                key,
            )?);
        }
        let (mut right_s, mut left_s) = (streams.pop().unwrap(), streams.pop().unwrap());
        let empty: [Record; 0] = [];
        let mut left_keys = 0u64;
        loop {
            let ord = match (left_s.peek(), right_s.peek()) {
                (None, None) => break,
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (Some(l), Some(r)) => key_cmp2(l, kl, r, kr),
            };
            let lg = if ord.is_gt() {
                None
            } else {
                left_s.next_group()?
            };
            let rg = if ord.is_lt() {
                None
            } else {
                right_s.next_group()?
            };
            self.ctx.call(
                self.op,
                Invocation::CoGroup(
                    lg.as_deref().unwrap_or(&empty),
                    rg.as_deref().unwrap_or(&empty),
                ),
                emitted,
            )?;
            if lg.is_some() {
                left_keys += 1;
            }
        }
        Ok(left_keys)
    }
}

impl Operator for CoGroupOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        let start = self.sides[port].len();
        self.sides[port].extend(take_records(batch));
        if self.ctx.gov.bounded() {
            let bytes = records_bytes(&self.sides[port][start..]);
            self.side_bytes[port] += bytes;
            self.ctx.gov.grant(bytes);
            if self.ctx.gov.over_budget() {
                for side in 0..2 {
                    if !self.sides[side].is_empty() {
                        self.spill_side(side)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        if self.runs.iter().any(|r| !r.is_empty()) {
            let mut emitted = Vec::new();
            let left_keys = self.finish_external(&mut emitted)?;
            if self.ctx.stats.detail() {
                self.ctx
                    .stats
                    .add_op_distinct_keys(self.ctx.op_id, left_keys);
            }
            self.ctx.emit(emitted, out);
            return Ok(());
        }
        let (kl, kr) = (&self.op.key_attrs[0], &self.op.key_attrs[1]);
        let [mut left, mut right] = std::mem::take(&mut self.sides);
        left.sort_unstable_by(|a, b| canonical_cmp(a, b, kl));
        right.sort_unstable_by(|a, b| canonical_cmp(a, b, kr));
        let mut emitted = Vec::new();
        let empty: [Record; 0] = [];
        let mut left_keys = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < left.len() || j < right.len() {
            // Which side's next key is smaller (exhausted side = greater)?
            let ord = if i == left.len() {
                Ordering::Greater
            } else if j == right.len() {
                Ordering::Less
            } else {
                key_cmp2(&left[i], kl, &right[j], kr)
            };
            let li = if ord.is_gt() {
                0
            } else {
                run_len(&left, i, kl)
            };
            let rj = if ord.is_lt() {
                0
            } else {
                run_len(&right, j, kr)
            };
            self.ctx.call(
                self.op,
                Invocation::CoGroup(
                    if li > 0 { &left[i..i + li] } else { &empty },
                    if rj > 0 { &right[j..j + rj] } else { &empty },
                ),
                &mut emitted,
            )?;
            if li > 0 {
                left_keys += 1;
            }
            i += li;
            j += rj;
        }
        if self.ctx.stats.detail() {
            // Profiling observation: distinct input-0 keys (the left runs
            // of the merge walk; null keys group like any other).
            self.ctx
                .stats
                .add_op_distinct_keys(self.ctx.op_id, left_keys);
        }
        self.ctx
            .gov
            .release(self.side_bytes[0] + self.side_bytes[1]);
        self.side_bytes = [0, 0];
        self.ctx.emit(emitted, out);
        Ok(())
    }
}
