//! The CoGroup operator: sort-merge co-grouping over both key domains.

use super::{canonical_cmp, key_cmp2, run_len, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use std::cmp::Ordering;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::{Record, RecordBatch};

/// Blocking CoGroup: buffers both inputs, sorts each side canonically by
/// its key, and merge-walks the two sorted runs. One UDF invocation per
/// key of the *combined* active domain — a key present on only one side
/// still forms a group, with an empty slice for the absent side.
pub struct CoGroupOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
    sides: [Vec<Record>; 2],
}

impl<'a> CoGroupOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, ctx: OpCtx<'a>) -> Self {
        CoGroupOp {
            op,
            ctx,
            sides: [Vec::new(), Vec::new()],
        }
    }
}

impl Operator for CoGroupOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        self.sides[port].extend(take_records(batch));
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let (kl, kr) = (&self.op.key_attrs[0], &self.op.key_attrs[1]);
        let [mut left, mut right] = std::mem::take(&mut self.sides);
        left.sort_unstable_by(|a, b| canonical_cmp(a, b, kl));
        right.sort_unstable_by(|a, b| canonical_cmp(a, b, kr));
        let mut emitted = Vec::new();
        let empty: [Record; 0] = [];
        let mut left_keys = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < left.len() || j < right.len() {
            // Which side's next key is smaller (exhausted side = greater)?
            let ord = if i == left.len() {
                Ordering::Greater
            } else if j == right.len() {
                Ordering::Less
            } else {
                key_cmp2(&left[i], kl, &right[j], kr)
            };
            let li = if ord.is_gt() {
                0
            } else {
                run_len(&left, i, kl)
            };
            let rj = if ord.is_lt() {
                0
            } else {
                run_len(&right, j, kr)
            };
            self.ctx.call(
                self.op,
                Invocation::CoGroup(
                    if li > 0 { &left[i..i + li] } else { &empty },
                    if rj > 0 { &right[j..j + rj] } else { &empty },
                ),
                &mut emitted,
            )?;
            if li > 0 {
                left_keys += 1;
            }
            i += li;
            j += rj;
        }
        if self.ctx.stats.detail() {
            // Profiling observation: distinct input-0 keys (the left runs
            // of the merge walk; null keys group like any other).
            self.ctx
                .stats
                .add_op_distinct_keys(self.ctx.op_id, left_keys);
        }
        self.ctx.emit(emitted, out);
        Ok(())
    }
}
