//! The Cross operator: block-nested-loop Cartesian product.

use super::{OpCtx, Operator};
use crate::engine::ExecError;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::RecordBatch;

/// Blocking Cartesian product: buffers both sides as shared batches and
/// pairs every left record with every right record at `finish`. Batches
/// double as the blocks of the nested loop — the inner side is scanned
/// once per outer *record*, batch by batch, entirely over borrowed data.
pub struct CrossOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
    sides: [Vec<Arc<RecordBatch>>; 2],
}

impl<'a> CrossOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, ctx: OpCtx<'a>) -> Self {
        CrossOp {
            op,
            ctx,
            sides: [Vec::new(), Vec::new()],
        }
    }
}

impl Operator for CrossOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        // The nested loop borrows `&Record`s; columnar input materializes
        // to rows once at push time.
        self.sides[port].push(super::rows_arc(batch));
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let mut emitted = Vec::new();
        for lb in &self.sides[0] {
            for l in lb.iter() {
                for rb in &self.sides[1] {
                    for r in rb.iter() {
                        self.ctx
                            .call(self.op, Invocation::Pair(l, r), &mut emitted)?;
                    }
                }
            }
        }
        self.sides = [Vec::new(), Vec::new()];
        self.ctx.emit(emitted, out);
        Ok(())
    }
}
