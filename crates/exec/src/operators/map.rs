//! The Map operator: streaming, record-at-a-time — optionally a fused
//! chain of several Maps running as one operator.

use super::{OpCtx, Operator};
use crate::engine::ExecError;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::RecordBatch;

/// Pipelined Map: every pushed batch is transformed and emitted
/// immediately; nothing is buffered across batches.
///
/// A `MapOp` holds one or more `(op, ctx)` stages. With several stages it
/// is a **fused** chain produced by compile-time Map fusion: records pass
/// from stage to stage as plain vectors, so adjacent Forward-shipped Maps
/// pay neither intermediate batch formation nor a channel hop. Each stage
/// keeps its own [`OpCtx`] (and thus its own `op_id`), so per-operator
/// call/emit attribution is identical to the unfused plan.
pub struct MapOp<'a> {
    stages: Vec<(&'a BoundOp, OpCtx<'a>)>,
}

impl<'a> MapOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, ctx: OpCtx<'a>) -> Self {
        MapOp {
            stages: vec![(op, ctx)],
        }
    }

    /// A fused chain; `stages[0]` runs first.
    pub(crate) fn chained(stages: Vec<(&'a BoundOp, OpCtx<'a>)>) -> Self {
        debug_assert!(!stages.is_empty());
        MapOp { stages }
    }
}

impl Operator for MapOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "Map is unary");
        let (head, head_ctx) = self.stages[0];
        let mut emitted = Vec::new();
        if let Some(cb) = batch.columns() {
            // Columnar input: evaluate the head UDF directly over row views.
            // Field reads resolve straight into the column vectors; the
            // input record is materialized only if the UDF copies it whole.
            for row in 0..cb.len() {
                head_ctx.call(head, Invocation::Row(cb.row(row)), &mut emitted)?;
            }
        } else {
            for r in batch.iter() {
                head_ctx.call(head, Invocation::Record(r), &mut emitted)?;
            }
        }
        for &(op, ctx) in &self.stages[1..] {
            let mut next = Vec::new();
            for r in &emitted {
                ctx.call(op, Invocation::Record(r), &mut next)?;
            }
            emitted = next;
        }
        let (_, last_ctx) = self.stages[self.stages.len() - 1];
        last_ctx.emit(emitted, out);
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        Ok(())
    }
}
