//! The Map operator: streaming, record-at-a-time.

use super::{OpCtx, Operator};
use crate::engine::ExecError;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::RecordBatch;

/// Pipelined Map: every pushed batch is transformed and emitted
/// immediately; nothing is buffered across batches.
pub struct MapOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
}

impl<'a> MapOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, ctx: OpCtx<'a>) -> Self {
        MapOp { op, ctx }
    }
}

impl Operator for MapOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "Map is unary");
        let mut emitted = Vec::new();
        for r in batch.iter() {
            self.ctx
                .call(self.op, Invocation::Record(r), &mut emitted)?;
        }
        self.ctx.emit(emitted, out);
        Ok(())
    }

    fn finish(&mut self, _out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        Ok(())
    }
}
