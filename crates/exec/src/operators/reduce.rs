//! The Reduce operator: hash or sort grouping.

use super::{canonical_cmp, key_hash, run_len, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use std::sync::Arc;
use strato_core::LocalStrategy;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Blocking Reduce: buffers its input, forms key groups at `finish` with
/// the chosen local algorithm, and invokes the UDF once per group.
///
/// Both algorithms present each group in canonical `(key, record)` order
/// and emit groups deterministically — ascending key order, except that a
/// 64-bit key-hash collision may locally reorder the colliding keys on the
/// hash path — so output is a function of the input bag regardless of
/// partitioning or batch boundaries.
pub struct ReduceOp<'a> {
    op: &'a BoundOp,
    strategy: LocalStrategy,
    ctx: OpCtx<'a>,
    buffered: Vec<Record>,
}

impl<'a> ReduceOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, strategy: LocalStrategy, ctx: OpCtx<'a>) -> Self {
        ReduceOp {
            op,
            strategy,
            ctx,
            buffered: Vec::new(),
        }
    }

    /// Walks contiguous key runs of a sorted slice, invoking the UDF per
    /// group. Returns the number of groups walked.
    fn call_groups(&self, recs: &[Record], out: &mut Vec<Record>) -> Result<u64, ExecError> {
        let key = &self.op.key_attrs[0];
        let mut i = 0;
        let mut groups = 0u64;
        while i < recs.len() {
            let n = run_len(recs, i, key);
            self.ctx
                .call(self.op, Invocation::Group(&recs[i..i + n]), out)?;
            i += n;
            groups += 1;
        }
        Ok(groups)
    }
}

impl Operator for ReduceOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "Reduce is unary");
        self.buffered.extend(take_records(batch));
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[0];
        let mut emitted = Vec::new();
        let mut groups = 0u64;
        match self.strategy {
            LocalStrategy::SortGroup => {
                // One global sort; groups are the contiguous key runs.
                let mut recs = std::mem::take(&mut self.buffered);
                recs.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
                groups += self.call_groups(&recs, &mut emitted)?;
            }
            // HashGroup, and the default for `Pipe`.
            _ => {
                // Bucket by key hash, then sort each bucket: records of one
                // key end up contiguous (hash collisions merely share a
                // bucket and are split by the key-run walk).
                let mut table: FxHashMap<u64, Vec<Record>> = FxHashMap::default();
                for r in self.buffered.drain(..) {
                    table.entry(key_hash(&r, key)).or_default().push(r);
                }
                let mut buckets: Vec<Vec<Record>> = table.into_values().collect();
                for b in &mut buckets {
                    b.sort_unstable_by(|a, x| canonical_cmp(a, x, key));
                }
                // Ordering buckets by their (sorted) first record restores
                // the ascending-key emission order of the sort path; each
                // bucket is then a run of one key (or, on a 64-bit hash
                // collision, several sorted keys split by `call_groups`).
                buckets.sort_unstable_by(|a, b| canonical_cmp(&a[0], &b[0], key));
                for b in &buckets {
                    groups += self.call_groups(b, &mut emitted)?;
                }
            }
        }
        if self.ctx.stats.detail() {
            // Groups == distinct input-0 keys for Reduce (nulls group).
            self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
        }
        self.ctx.emit(emitted, out);
        Ok(())
    }
}
