//! The Reduce operator: hash or sort grouping, spilling to sorted runs
//! under memory pressure.

use super::{canonical_cmp, key_hash, records_bytes, run_len, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use crate::spill::merge::external_group_stream;
use crate::spill::SortedRun;
use std::sync::Arc;
use strato_core::LocalStrategy;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Blocking Reduce: buffers its input, forms key groups at `finish` with
/// the chosen local algorithm, and invokes the UDF once per group.
///
/// Both algorithms present each group in canonical `(key, record)` order
/// and emit groups in ascending key order — 64-bit key-hash collisions on
/// the hash path are broken by a full key comparison — so the output
/// sequence is a pure function of the input bag regardless of local
/// algorithm, partitioning or batch boundaries.
///
/// The buffer is registered with the execution's [`MemoryGovernor`]: under
/// memory pressure it is sorted canonically and written as one on-disk
/// run; `finish` then k-way-merges the runs with the in-memory tail and
/// walks key groups off the merged stream — same canonical order, so
/// spilling never changes the output, only where the bytes live.
///
/// [`MemoryGovernor`]: crate::spill::MemoryGovernor
pub struct ReduceOp<'a> {
    op: &'a BoundOp,
    strategy: LocalStrategy,
    ctx: OpCtx<'a>,
    buffered: Vec<Record>,
    /// `encoded_len` of `buffered`, as granted to the governor.
    buffered_bytes: u64,
    /// Sorted runs written under memory pressure (usually empty).
    runs: Vec<SortedRun>,
}

impl<'a> ReduceOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, strategy: LocalStrategy, ctx: OpCtx<'a>) -> Self {
        ReduceOp {
            op,
            strategy,
            ctx,
            buffered: Vec::new(),
            buffered_bytes: 0,
            runs: Vec::new(),
        }
    }

    /// Walks contiguous key runs of a sorted slice, invoking the UDF per
    /// group. Returns the number of groups walked.
    fn call_groups(&self, recs: &[Record], out: &mut Vec<Record>) -> Result<u64, ExecError> {
        let key = &self.op.key_attrs[0];
        let mut i = 0;
        let mut groups = 0u64;
        while i < recs.len() {
            let n = run_len(recs, i, key);
            self.ctx
                .call(self.op, Invocation::Group(&recs[i..i + n]), out)?;
            i += n;
            groups += 1;
        }
        Ok(groups)
    }

    /// Sheds the whole buffer to one canonically sorted on-disk run.
    fn spill(&mut self) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[0];
        self.buffered
            .sort_unstable_by(|a, b| canonical_cmp(a, b, key));
        let run = self.ctx.gov.write_sorted_run(&self.buffered)?;
        self.ctx
            .stats
            .add_spill(self.ctx.op_id, run.records(), run.bytes());
        self.runs.push(run);
        self.buffered.clear();
        self.ctx.gov.release(self.buffered_bytes);
        self.buffered_bytes = 0;
        Ok(())
    }

    /// Out-of-core grouping: merge the on-disk runs with the sorted
    /// in-memory tail and invoke the UDF per merged key group. Emission
    /// order is the same ascending canonical order as both in-memory
    /// algorithms.
    fn finish_external(&mut self, emitted: &mut Vec<Record>) -> Result<u64, ExecError> {
        let key = &self.op.key_attrs[0];
        let tail = std::mem::take(&mut self.buffered);
        self.ctx.gov.release(self.buffered_bytes);
        self.buffered_bytes = 0;
        let mut groups =
            external_group_stream(self.ctx.gov, std::mem::take(&mut self.runs), tail, key)?;
        let mut n = 0u64;
        while let Some(g) = groups.next_group()? {
            self.ctx.call(self.op, Invocation::Group(&g), emitted)?;
            n += 1;
        }
        Ok(n)
    }
}

impl Operator for ReduceOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "Reduce is unary");
        let start = self.buffered.len();
        self.buffered.extend(take_records(batch));
        if self.ctx.gov.bounded() {
            let bytes = records_bytes(&self.buffered[start..]);
            self.buffered_bytes += bytes;
            self.ctx.gov.grant(bytes);
            if self.ctx.gov.over_budget() && !self.buffered.is_empty() {
                self.spill()?;
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[0];
        let mut emitted = Vec::new();
        let mut groups = 0u64;
        if !self.runs.is_empty() {
            groups += self.finish_external(&mut emitted)?;
            if self.ctx.stats.detail() {
                self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
            }
            self.ctx.emit(emitted, out);
            return Ok(());
        }
        match self.strategy {
            LocalStrategy::SortGroup => {
                // One global sort; groups are the contiguous key runs.
                let mut recs = std::mem::take(&mut self.buffered);
                recs.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
                groups += self.call_groups(&recs, &mut emitted)?;
            }
            // HashGroup, and the default for `Pipe`.
            _ => {
                // Bucket by key hash, then sort each bucket: records of one
                // key end up contiguous (hash collisions merely share a
                // bucket and are split into separate key groups below).
                let mut table: FxHashMap<u64, Vec<Record>> = FxHashMap::default();
                for r in self.buffered.drain(..) {
                    table.entry(key_hash(&r, key)).or_default().push(r);
                }
                // Split every bucket into its key groups *before* choosing
                // an emission order, then order the groups by a full key
                // comparison. Ordering whole buckets by their first record
                // would interleave wrongly under a 64-bit hash collision
                // (a bucket holding keys {1, 5} sorts once as a unit and
                // emits 1, 5 ahead of another bucket's 3). The common
                // collision-free bucket moves through unchanged.
                let mut key_groups: Vec<Vec<Record>> = Vec::with_capacity(table.len());
                for mut b in table.into_values() {
                    b.sort_unstable_by(|a, x| canonical_cmp(a, x, key));
                    let first_run = run_len(&b, 0, key);
                    if first_run == b.len() {
                        key_groups.push(b);
                    } else {
                        let mut i = 0;
                        while i < b.len() {
                            let n = run_len(&b, i, key);
                            key_groups.push(b[i..i + n].to_vec());
                            i += n;
                        }
                    }
                }
                // Distinct keys per group, so comparing first records on
                // the key alone is a total order: globally ascending —
                // identical to the sort path's emission order.
                key_groups.sort_unstable_by(|a, b| super::key_cmp(&a[0], &b[0], key));
                for g in &key_groups {
                    groups += self.call_groups(g, &mut emitted)?;
                }
            }
        }
        if self.ctx.stats.detail() {
            // Groups == distinct input-0 keys for Reduce (nulls group).
            self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
        }
        self.ctx.gov.release(self.buffered_bytes);
        self.buffered_bytes = 0;
        self.ctx.emit(emitted, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{apply_single, key_cmp, key_hash, OpCtx};
    use crate::spill::MemoryGovernor;
    use crate::stats::ExecStats;
    use std::hash::Hasher;
    use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
    use strato_ir::interp::Interp;
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};
    use strato_record::hash::FxHasher;
    use strato_record::{DataSet, Value};

    /// Engineers a second key pair `(b, y)` whose 64-bit key hash equals
    /// that of `(a, x)`. Each FxHash step is
    /// `state' = (rotl5(state) ^ word) * SEED` with an odd (invertible)
    /// SEED, so for fixed prefixes the final word is uniquely solvable:
    /// `y = x ^ rotl5(state_a) ^ rotl5(state_b)`.
    fn colliding_second_field(a: i64, x: i64, b: i64) -> i64 {
        let prefix = |k: i64| {
            let mut h = FxHasher::default();
            h.write_u8(2); // Value::Int type rank of the first key field
            h.write_i64(k);
            h.write_u8(2); // type rank of the second key field
            h.finish()
        };
        (x as u64 ^ prefix(a).rotate_left(5) ^ prefix(b).rotate_left(5)) as i64
    }

    /// Sum of field 2, appended as field 3 (two-field grouping key).
    fn sum_appended() -> Function {
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![3]);
        let acc = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 2);
        b.bin_into(acc, BinOp::Add, acc, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, 3, acc);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn hash_collision_does_not_perturb_emission_order() {
        // Regression: the hash path used to sort whole buckets by their
        // first record, so two keys sharing a 64-bit hash were emitted
        // adjacently even when a third key ordered between them — the
        // emission order diverged from the sort path. Engineer keys
        // A = (1, 100) < B = (1, 101) < C = (2, y) with
        // hash(A) == hash(C) ≠ hash(B) and demand identical output.
        let y = colliding_second_field(1, 100, 2);
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k1", "k2", "v"], 16));
        let r = p.reduce("sum", &[0, 1], sum_appended(), CostHints::default(), s);
        let plan: Plan = p.finish(r).unwrap().bind().unwrap();
        let op = &plan.ctx.ops[0];
        let key = op.key_attrs[0].clone();

        let rec = |k1: i64, k2: i64, v: i64| {
            let ds: DataSet = [Record::from_values([
                Value::Int(k1),
                Value::Int(k2),
                Value::Int(v),
            ])]
            .into_iter()
            .collect();
            crate::pipeline::widen(&ds, &plan.ctx.sources[0].attrs, plan.ctx.width())
                .pop()
                .unwrap()
        };
        let (a1, a2) = (rec(1, 100, 5), rec(1, 100, 6));
        let (b1, b2) = (rec(1, 101, 7), rec(1, 101, 8));
        let (c1, c2) = (rec(2, y, 9), rec(2, y, 10));
        // The engineered collision and its preconditions.
        assert_eq!(key_hash(&a1, &key), key_hash(&c1, &key), "A and C collide");
        assert_ne!(key_cmp(&a1, &c1, &key), std::cmp::Ordering::Equal);
        assert_ne!(key_hash(&a1, &key), key_hash(&b1, &key));
        assert!(key_cmp(&a1, &b1, &key).is_lt() && key_cmp(&b1, &c1, &key).is_lt());

        let input = vec![c1, b1, a2, a1, c2, b2];
        let stats = ExecStats::new();
        let gov = MemoryGovernor::unbounded();
        let ctx = || OpCtx {
            interp: Interp::default(),
            stats: &stats,
            gov: &gov,
            batch_size: 64,
            op_id: 0,
        };
        let hash = apply_single(op, LocalStrategy::HashGroup, vec![input.clone()], ctx()).unwrap();
        let sort = apply_single(op, LocalStrategy::SortGroup, vec![input], ctx()).unwrap();
        assert_eq!(
            hash, sort,
            "emission order must be a pure function of the input bag"
        );
        // Globally ascending by key: A (sum 11), B (15), C (19).
        let sums: Vec<i64> = hash.iter().map(|r| r.field(3).as_int().unwrap()).collect();
        assert_eq!(sums, vec![11, 15, 19]);
        assert_eq!(hash.len(), 3);
    }

    #[test]
    fn tiny_budget_spills_and_reproduces_the_in_memory_output_exactly() {
        use crate::operators::{take_records, Operator};
        use crate::testutil::sum_inplace;
        use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};

        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let r = p.reduce("sum", &[0], sum_inplace(2, 1), CostHints::default(), s);
        let plan: Plan = p.finish(r).unwrap().bind().unwrap();
        let op = &plan.ctx.ops[0];
        let ds: DataSet = (0..48i64)
            .map(|i| Record::from_values([Value::Int(i % 5), Value::Int(i)]))
            .collect();
        let input = crate::pipeline::widen(&ds, &plan.ctx.sources[0].attrs, plan.ctx.width());

        // Reference: unbounded in-memory grouping.
        let ref_stats = ExecStats::new();
        let ref_gov = MemoryGovernor::unbounded();
        let reference = apply_single(
            op,
            LocalStrategy::HashGroup,
            vec![input.clone()],
            OpCtx {
                interp: Interp::default(),
                stats: &ref_stats,
                gov: &ref_gov,
                batch_size: 64,
                op_id: 0,
            },
        )
        .unwrap();
        assert_eq!(ref_stats.spill_snapshot(), (0, 0, 0));

        for strategy in [LocalStrategy::HashGroup, LocalStrategy::SortGroup] {
            // A 64-byte budget forces a spill on (nearly) every pushed
            // batch; feed one record per batch to maximize pressure events.
            let stats = ExecStats::with_ops(1);
            let gov = MemoryGovernor::with_budget(Some(64));
            let ctx = OpCtx {
                interp: Interp::default(),
                stats: &stats,
                gov: &gov,
                batch_size: 64,
                op_id: 0,
            };
            let mut oper = ReduceOp::new(op, strategy, ctx);
            oper.open().unwrap();
            let mut out = Vec::new();
            let mut max_resident = 0u64;
            for r in input.clone() {
                let batch_bytes = r.encoded_len() as u64;
                oper.push(0, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                    .unwrap();
                max_resident = max_resident.max(gov.resident());
                // Within one batch of slack: pressure sheds the buffer.
                assert!(gov.resident() <= 64 + batch_bytes);
            }
            oper.finish(&mut out).unwrap();
            let got: Vec<Record> = out.into_iter().flat_map(take_records).collect();
            assert_eq!(got, reference, "{strategy:?} must spill transparently");
            let (rec_spilled, bytes_spilled, runs) = stats.spill_snapshot();
            assert!(runs > 1, "tiny budget must spill repeatedly: {runs}");
            assert!(rec_spilled > 0 && bytes_spilled > 0);
            assert_eq!(gov.resident(), 0, "all grants released at finish");
            let slot = &stats.op_snapshots()[0];
            assert_eq!(slot.spill_runs, runs, "per-op slot mirrors the totals");
        }
    }
}
