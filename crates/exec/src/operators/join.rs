//! The Match operator: equi-join with hash or sort-merge algorithms.

use super::{key_cmp, key_cmp2, key_has_null, key_hash, OpCtx, Operator};
use crate::engine::ExecError;
use std::cmp::Ordering;
use std::sync::Arc;
use strato_core::LocalStrategy;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Blocking equi-join: buffers both sides as shared batches and joins at
/// `finish`. Null join keys match nothing (SQL flavour).
///
/// All algorithms operate on *borrowed* records — buffered batches are
/// never deep-copied, which makes a broadcast build side genuinely
/// zero-copy per partition.
pub struct MatchOp<'a> {
    op: &'a BoundOp,
    strategy: LocalStrategy,
    ctx: OpCtx<'a>,
    sides: [Vec<Arc<RecordBatch>>; 2],
}

impl<'a> MatchOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, strategy: LocalStrategy, ctx: OpCtx<'a>) -> Self {
        MatchOp {
            op,
            strategy,
            ctx,
            sides: [Vec::new(), Vec::new()],
        }
    }
}

/// Hash join over borrowed records. `build_is_left` fixes which input is
/// the build side; probe order follows the probe side's arrival order.
/// Buckets verify key equality exactly, so hash collisions cannot produce
/// false matches.
fn hash_join(
    op: &BoundOp,
    ctx: &OpCtx<'_>,
    left: &[&Record],
    right: &[&Record],
    build_is_left: bool,
    out: &mut Vec<Record>,
) -> Result<(), ExecError> {
    let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
    let (build, probe, kb, kp) = if build_is_left {
        (left, right, kl, kr)
    } else {
        (right, left, kr, kl)
    };
    let mut table: FxHashMap<u64, Vec<&Record>> = FxHashMap::default();
    for &r in build {
        if !key_has_null(r, kb) {
            table.entry(key_hash(r, kb)).or_default().push(r);
        }
    }
    for &p in probe {
        if key_has_null(p, kp) {
            continue;
        }
        if let Some(bucket) = table.get(&key_hash(p, kp)) {
            for &b in bucket {
                if key_cmp2(b, kb, p, kp).is_eq() {
                    let (l, r) = if build_is_left { (b, p) } else { (p, b) };
                    ctx.call(op, Invocation::Pair(l, r), out)?;
                }
            }
        }
    }
    Ok(())
}

/// Sort-merge join over borrowed records.
fn sort_merge_join(
    op: &BoundOp,
    ctx: &OpCtx<'_>,
    left: &[&Record],
    right: &[&Record],
    out: &mut Vec<Record>,
) -> Result<(), ExecError> {
    let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
    let mut l: Vec<&Record> = left
        .iter()
        .copied()
        .filter(|r| !key_has_null(r, kl))
        .collect();
    let mut r: Vec<&Record> = right
        .iter()
        .copied()
        .filter(|x| !key_has_null(x, kr))
        .collect();
    l.sort_unstable_by(|a, b| key_cmp(a, b, kl).then_with(|| a.cmp(b)));
    r.sort_unstable_by(|a, b| key_cmp(a, b, kr).then_with(|| a.cmp(b)));
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match key_cmp2(l[i], kl, r[j], kr) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let mut i2 = i;
                while i2 < l.len() && key_cmp(l[i], l[i2], kl).is_eq() {
                    i2 += 1;
                }
                let mut j2 = j;
                while j2 < r.len() && key_cmp(r[j], r[j2], kr).is_eq() {
                    j2 += 1;
                }
                for &a in &l[i..i2] {
                    for &b in &r[j..j2] {
                        ctx.call(op, Invocation::Pair(a, b), out)?;
                    }
                }
                i = i2;
                j = j2;
            }
        }
    }
    Ok(())
}

impl Operator for MatchOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        self.sides[port].push(batch);
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let left: Vec<&Record> = self.sides[0].iter().flat_map(|b| b.iter()).collect();
        let right: Vec<&Record> = self.sides[1].iter().flat_map(|b| b.iter()).collect();
        if self.ctx.stats.detail() {
            // Profiling observation: distinct input-0 keys (nulls count as
            // one key, matching the runtime profiler's historic rule —
            // unlike the join itself, which drops null keys).
            let kl = &self.op.key_attrs[0];
            let mut refs = left.clone();
            refs.sort_unstable_by(|a, b| key_cmp(a, b, kl));
            let mut n = 0u64;
            let mut i = 0;
            while i < refs.len() {
                n += 1;
                i += super::run_len(&refs, i, kl);
            }
            self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, n);
        }
        let mut emitted = Vec::new();
        match self.strategy {
            LocalStrategy::SortMergeJoin => {
                sort_merge_join(self.op, &self.ctx, &left, &right, &mut emitted)?;
            }
            LocalStrategy::HashJoinBuildRight => {
                hash_join(self.op, &self.ctx, &left, &right, false, &mut emitted)?;
            }
            // Build-left, and the default for `Pipe` (logical oracle).
            _ => {
                hash_join(self.op, &self.ctx, &left, &right, true, &mut emitted)?;
            }
        }
        self.sides = [Vec::new(), Vec::new()];
        self.ctx.emit(emitted, out);
        Ok(())
    }
}
