//! The Match operator: equi-join with hash or sort-merge algorithms,
//! degrading to external sort-merge under memory pressure.

use super::{
    canonical_cmp, key_cmp, key_cmp2, key_has_null, key_hash, take_records, OpCtx, Operator,
};
use crate::engine::ExecError;
use crate::spill::merge::external_group_stream;
use crate::spill::SortedRun;
use std::cmp::Ordering;
use std::sync::Arc;
use strato_core::LocalStrategy;
use strato_dataflow::BoundOp;
use strato_ir::interp::Invocation;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Blocking equi-join: buffers both sides as shared batches and joins at
/// `finish`. Null join keys match nothing (SQL flavour).
///
/// All algorithms operate on *borrowed* records — buffered batches are
/// never deep-copied, which makes a broadcast build side genuinely
/// zero-copy per partition.
///
/// Both sides register with the [`MemoryGovernor`]: under pressure each
/// buffered side is written out as a key-sorted run (null-keyed records
/// are dropped at spill time — they can never match) and, once anything
/// spilled, `finish` joins by **external sort-merge** regardless of the
/// requested in-memory algorithm. Pair order then differs from a hash
/// join's probe order, but the output *bag* — the engine's equivalence
/// contract for joins — is identical.
///
/// [`MemoryGovernor`]: crate::spill::MemoryGovernor
pub struct MatchOp<'a> {
    op: &'a BoundOp,
    strategy: LocalStrategy,
    ctx: OpCtx<'a>,
    /// Buffered batches per side, each with the bytes it was granted for
    /// (a shared broadcast batch is charged a per-holder share, see
    /// [`Operator::push`]).
    sides: [Vec<(Arc<RecordBatch>, u64)>; 2],
    /// Total governor-granted bytes per buffered side.
    side_bytes: [u64; 2],
    /// Key-sorted runs spilled per side (usually empty).
    runs: [Vec<SortedRun>; 2],
    /// Whether a null-keyed input-0 record was seen (dropped at spill
    /// time; the profiling distinct-keys observation counts nulls as one
    /// key, so the external path must remember them).
    left_had_null: bool,
}

impl<'a> MatchOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, strategy: LocalStrategy, ctx: OpCtx<'a>) -> Self {
        MatchOp {
            op,
            strategy,
            ctx,
            sides: [Vec::new(), Vec::new()],
            side_bytes: [0, 0],
            runs: [Vec::new(), Vec::new()],
            left_had_null: false,
        }
    }

    /// Sheds one buffered side's **uniquely held** batches to a key-sorted
    /// on-disk run, dropping null-keyed records (they match nothing).
    ///
    /// Batches still shared with other partitions (a broadcast build side)
    /// stay buffered: spilling a deep copy would free no memory — the
    /// allocation lives until every holder drops it — while multiplying
    /// disk writes by the fan-out. A kept batch becomes spillable once the
    /// other partitions release theirs.
    fn spill_side(&mut self, side: usize) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[side];
        let mut records: Vec<Record> = Vec::new();
        let mut kept: Vec<(Arc<RecordBatch>, u64)> = Vec::new();
        let mut released = 0u64;
        for (b, charge) in self.sides[side].drain(..) {
            if Arc::strong_count(&b) == 1 {
                released += charge;
                records.extend(take_records(b));
            } else {
                kept.push((b, charge));
            }
        }
        self.sides[side] = kept;
        if records.is_empty() {
            return Ok(());
        }
        let had_null = records.iter().any(|r| key_has_null(r, key));
        if side == 0 {
            self.left_had_null |= had_null;
        }
        records.retain(|r| !key_has_null(r, key));
        records.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
        let run = self.ctx.gov.write_sorted_run(&records)?;
        self.ctx
            .stats
            .add_spill(self.ctx.op_id, run.records(), run.bytes());
        self.runs[side].push(run);
        self.ctx.gov.release(released);
        self.side_bytes[side] -= released;
        Ok(())
    }

    /// External sort-merge join: each side's runs merge with its sorted
    /// in-memory remainder, and the two group streams walk in key
    /// lockstep, pairing matching groups.
    fn finish_external(&mut self, emitted: &mut Vec<Record>) -> Result<(), ExecError> {
        let (kl, kr) = (&self.op.key_attrs[0], &self.op.key_attrs[1]);
        let mut streams = Vec::with_capacity(2);
        let mut left_keys = 0u64;
        for side in 0..2 {
            let key = &self.op.key_attrs[side];
            let mut tail: Vec<Record> = Vec::new();
            for (b, _) in self.sides[side].drain(..) {
                tail.extend(take_records(b));
            }
            let had_null = tail.iter().any(|r| key_has_null(r, key));
            if side == 0 {
                self.left_had_null |= had_null;
            }
            tail.retain(|r| !key_has_null(r, key));
            self.ctx.gov.release(self.side_bytes[side]);
            self.side_bytes[side] = 0;
            streams.push(external_group_stream(
                self.ctx.gov,
                std::mem::take(&mut self.runs[side]),
                tail,
                key,
            )?);
        }
        let (mut right_s, mut left_s) = (streams.pop().unwrap(), streams.pop().unwrap());
        loop {
            let ord = match (left_s.peek(), right_s.peek()) {
                (None, None) => break,
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (Some(l), Some(r)) => key_cmp2(l, kl, r, kr),
            };
            match ord {
                Ordering::Less => {
                    left_s.next_group()?;
                    left_keys += 1;
                }
                Ordering::Greater => {
                    right_s.next_group()?;
                }
                Ordering::Equal => {
                    let lg = left_s.next_group()?.expect("peeked");
                    let rg = right_s.next_group()?.expect("peeked");
                    left_keys += 1;
                    for a in &lg {
                        for b in &rg {
                            self.ctx.call(self.op, Invocation::Pair(a, b), emitted)?;
                        }
                    }
                }
            }
        }
        if self.ctx.stats.detail() {
            // Match the in-memory observation rule: distinct input-0 keys
            // with nulls counted as one key.
            self.ctx
                .stats
                .add_op_distinct_keys(self.ctx.op_id, left_keys + self.left_had_null as u64);
        }
        Ok(())
    }
}

/// Hash join over borrowed records. `build_is_left` fixes which input is
/// the build side; probe order follows the probe side's arrival order.
/// Buckets verify key equality exactly, so hash collisions cannot produce
/// false matches.
fn hash_join(
    op: &BoundOp,
    ctx: &OpCtx<'_>,
    left: &[&Record],
    right: &[&Record],
    build_is_left: bool,
    out: &mut Vec<Record>,
) -> Result<(), ExecError> {
    let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
    let (build, probe, kb, kp) = if build_is_left {
        (left, right, kl, kr)
    } else {
        (right, left, kr, kl)
    };
    let mut table: FxHashMap<u64, Vec<&Record>> = FxHashMap::default();
    for &r in build {
        if !key_has_null(r, kb) {
            table.entry(key_hash(r, kb)).or_default().push(r);
        }
    }
    for &p in probe {
        if key_has_null(p, kp) {
            continue;
        }
        if let Some(bucket) = table.get(&key_hash(p, kp)) {
            for &b in bucket {
                if key_cmp2(b, kb, p, kp).is_eq() {
                    let (l, r) = if build_is_left { (b, p) } else { (p, b) };
                    ctx.call(op, Invocation::Pair(l, r), out)?;
                }
            }
        }
    }
    Ok(())
}

/// Sort-merge join over borrowed records.
fn sort_merge_join(
    op: &BoundOp,
    ctx: &OpCtx<'_>,
    left: &[&Record],
    right: &[&Record],
    out: &mut Vec<Record>,
) -> Result<(), ExecError> {
    let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
    let mut l: Vec<&Record> = left
        .iter()
        .copied()
        .filter(|r| !key_has_null(r, kl))
        .collect();
    let mut r: Vec<&Record> = right
        .iter()
        .copied()
        .filter(|x| !key_has_null(x, kr))
        .collect();
    l.sort_unstable_by(|a, b| key_cmp(a, b, kl).then_with(|| a.cmp(b)));
    r.sort_unstable_by(|a, b| key_cmp(a, b, kr).then_with(|| a.cmp(b)));
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match key_cmp2(l[i], kl, r[j], kr) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let mut i2 = i;
                while i2 < l.len() && key_cmp(l[i], l[i2], kl).is_eq() {
                    i2 += 1;
                }
                let mut j2 = j;
                while j2 < r.len() && key_cmp(r[j], r[j2], kr).is_eq() {
                    j2 += 1;
                }
                for &a in &l[i..i2] {
                    for &b in &r[j..j2] {
                        ctx.call(op, Invocation::Pair(a, b), out)?;
                    }
                }
                i = i2;
                j = j2;
            }
        }
    }
    Ok(())
}

impl Operator for MatchOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        // The join algorithms borrow `&Record`s from buffered batches, so
        // columnar input materializes to rows here (before the governor
        // charge — the normalized batch is the one buffered and spilled).
        let batch = super::rows_arc(batch);
        let mut charge = 0u64;
        if self.ctx.gov.bounded() {
            // A broadcast build side is one `Arc`-shared allocation held by
            // every partition: charge each holder its share rather than the
            // full size `dop` times, so a side that genuinely fits resident
            // memory once is not over-counted into spilling. `div_ceil`
            // keeps every non-empty batch's charge positive (truncation
            // would let high fan-outs register as zero bytes); the shares
            // then sum to at least one full charge. Forward/partition
            // batches are unshared and charge in full.
            let share = Arc::strong_count(&batch).max(1) as u64;
            charge = (batch.encoded_len() as u64).div_ceil(share);
            self.side_bytes[port] += charge;
            self.ctx.gov.grant(charge);
        }
        self.sides[port].push((batch, charge));
        if self.ctx.gov.over_budget() {
            for side in 0..2 {
                if !self.sides[side].is_empty() {
                    self.spill_side(side)?;
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        if self.runs.iter().any(|r| !r.is_empty()) {
            let mut emitted = Vec::new();
            self.finish_external(&mut emitted)?;
            self.ctx.emit(emitted, out);
            return Ok(());
        }
        let left: Vec<&Record> = self.sides[0].iter().flat_map(|(b, _)| b.iter()).collect();
        let right: Vec<&Record> = self.sides[1].iter().flat_map(|(b, _)| b.iter()).collect();
        if self.ctx.stats.detail() {
            // Profiling observation: distinct input-0 keys (nulls count as
            // one key, matching the runtime profiler's historic rule —
            // unlike the join itself, which drops null keys).
            let kl = &self.op.key_attrs[0];
            let mut refs = left.clone();
            refs.sort_unstable_by(|a, b| key_cmp(a, b, kl));
            let mut n = 0u64;
            let mut i = 0;
            while i < refs.len() {
                n += 1;
                i += super::run_len(&refs, i, kl);
            }
            self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, n);
        }
        let mut emitted = Vec::new();
        match self.strategy {
            LocalStrategy::SortMergeJoin => {
                sort_merge_join(self.op, &self.ctx, &left, &right, &mut emitted)?;
            }
            LocalStrategy::HashJoinBuildRight => {
                hash_join(self.op, &self.ctx, &left, &right, false, &mut emitted)?;
            }
            // Build-left, and the default for `Pipe` (logical oracle).
            _ => {
                hash_join(self.op, &self.ctx, &left, &right, true, &mut emitted)?;
            }
        }
        self.sides = [Vec::new(), Vec::new()];
        self.ctx
            .gov
            .release(self.side_bytes[0] + self.side_bytes[1]);
        self.side_bytes = [0, 0];
        self.ctx.emit(emitted, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{apply_single, take_records};
    use crate::spill::MemoryGovernor;
    use crate::stats::ExecStats;
    use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
    use strato_ir::interp::Interp;
    use strato_ir::{FuncBuilder, UdfKind};
    use strato_record::{DataSet, Value};

    fn join_plan() -> Plan {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![2, 1]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        let udf = b.finish().unwrap();
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 16));
        let r = p.source(SourceDef::new("r", &["k2"], 8));
        let j = p.match_("j", &[0], &[0], udf, CostHints::default(), l, r);
        p.finish(j).unwrap().bind().unwrap()
    }

    fn wide(plan: &Plan, src: usize, rows: &[&[i64]]) -> Vec<Record> {
        let ds: DataSet = rows
            .iter()
            .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
            .collect();
        crate::pipeline::widen(&ds, &plan.ctx.sources[src].attrs, plan.ctx.width())
    }

    fn ctx<'a>(stats: &'a ExecStats, gov: &'a MemoryGovernor) -> OpCtx<'a> {
        OpCtx {
            interp: Interp::default(),
            stats,
            gov,
            batch_size: 64,
            op_id: 0,
        }
    }

    #[test]
    fn starved_join_spills_and_matches_the_in_memory_result_bag() {
        let plan = join_plan();
        let op = &plan.ctx.ops[0];
        let left = wide(
            &plan,
            0,
            &[&[1, 10], &[2, 20], &[2, 21], &[3, 30], &[5, 50]],
        );
        let right = wide(&plan, 1, &[&[2], &[2], &[3], &[7]]);

        let s_ref = ExecStats::new();
        let g_ref = MemoryGovernor::unbounded();
        let reference = apply_single(
            op,
            LocalStrategy::HashJoinBuildLeft,
            vec![left.clone(), right.clone()],
            ctx(&s_ref, &g_ref),
        )
        .unwrap();

        // One record per batch under a 32-byte budget: the operator spills
        // both sides and joins by external sort-merge.
        let stats = ExecStats::with_ops(1);
        let gov = MemoryGovernor::with_budget(Some(32));
        let mut join = MatchOp::new(op, LocalStrategy::HashJoinBuildLeft, ctx(&stats, &gov));
        join.open().unwrap();
        let mut out = Vec::new();
        for (port, recs) in [left, right].into_iter().enumerate() {
            for r in recs {
                join.push(port, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                    .unwrap();
            }
        }
        join.finish(&mut out).unwrap();
        let got: Vec<Record> = out.into_iter().flat_map(take_records).collect();
        assert_eq!(
            DataSet::from_records(got),
            DataSet::from_records(reference),
            "external sort-merge must reproduce the hash-join bag"
        );
        assert!(stats.spill_snapshot().2 > 0, "tiny budget must spill");
        assert_eq!(gov.resident(), 0, "grants released at finish");
    }

    #[test]
    fn shared_batches_are_kept_resident_not_deep_copied_to_disk() {
        // Spilling an `Arc`-shared (broadcast) batch frees no memory — the
        // allocation lives until every holder drops it — so under pressure
        // only uniquely held batches go to disk.
        let plan = join_plan();
        let op = &plan.ctx.ops[0];
        let left = wide(&plan, 0, &[&[2, 20], &[3, 30]]);
        let right = wide(&plan, 1, &[&[2], &[3]]);

        let stats = ExecStats::with_ops(1);
        let gov = MemoryGovernor::with_budget(Some(1));
        let mut join = MatchOp::new(op, LocalStrategy::HashJoinBuildLeft, ctx(&stats, &gov));
        join.open().unwrap();
        let mut out = Vec::new();
        // The "broadcast" build side: a clone is kept alive, as the other
        // partitions of a broadcast ship would.
        let shared = Arc::new(RecordBatch::from_records(right));
        let other_partition = Arc::clone(&shared);
        join.push(1, shared, &mut out).unwrap();
        let spilled_after_shared = stats.spill_snapshot().2;
        assert_eq!(
            spilled_after_shared, 0,
            "a shared batch must not be deep-copied to disk"
        );
        // The unshared probe side spills even though the build side stays.
        join.push(0, Arc::new(RecordBatch::from_records(left)), &mut out)
            .unwrap();
        assert!(stats.spill_snapshot().2 > 0, "unique batches must spill");
        join.finish(&mut out).unwrap();
        let got: Vec<Record> = out.into_iter().flat_map(take_records).collect();
        assert_eq!(got.len(), 2, "both keys match once");
        drop(other_partition);
        assert_eq!(gov.resident(), 0, "grants released at finish");
    }
}
