//! The composable physical-operator runtime.
//!
//! Every PACT has exactly **one** operator implementation here, shared by
//! the single-partition logical oracle and the parallel engine: both paths
//! lower plans to the same [`Operator`] objects (see
//! [`crate::pipeline`]), so a semantics bug cannot hide in one executor
//! and not the other.
//!
//! ## Contract
//!
//! An operator is driven through three phases:
//!
//! 1. [`Operator::open`] — once, before any data.
//! 2. [`Operator::push`] — once per input [`RecordBatch`], tagged with the
//!    input port (0 for unary PACTs; 0 = left, 1 = right for binary ones).
//!    Streaming operators (Map) emit output batches immediately; blocking
//!    operators (Reduce, Match, Cross, CoGroup) buffer.
//! 3. [`Operator::finish`] — once, after all input; emits any buffered
//!    output.
//!
//! Batches are shared as `Arc<RecordBatch>`: a broadcast ship hands the
//! same allocation to every partition. Operators that need owned records
//! (sorting, grouping) call `take_records`, which moves when the operator
//! holds the last reference and clones only when the batch is genuinely
//! shared.
//!
//! ## Key handling
//!
//! Key extraction never clones `Value`s on the hot path: comparisons go
//! through `key_cmp`/`key_cmp2` (field-by-field, allocation-free) and
//! hash tables are keyed by `key_hash` (a 64-bit FxHash of the key
//! fields) with exact-equality verification per bucket entry, so hash
//! collisions cannot merge distinct keys.

pub mod cogroup;
pub mod cross;
pub mod join;
pub mod map;
pub mod reduce;
pub mod streamagg;

use crate::engine::ExecError;
use crate::spill::MemoryGovernor;
use crate::stats::ExecStats;
use std::cmp::Ordering;
use std::hash::Hasher;
use std::sync::Arc;
use strato_core::LocalStrategy;
use strato_dataflow::{BoundOp, Pact};
use strato_ir::interp::{Interp, Invocation};
use strato_record::hash::FxHasher;
use strato_record::{AttrId, Record, RecordBatch};

/// A physical operator: consumes batches on numbered input ports, emits
/// batches. See the module docs for the open / push / finish contract.
pub trait Operator: Send {
    /// Prepares the operator. Called exactly once, before any `push`.
    fn open(&mut self) -> Result<(), ExecError> {
        Ok(())
    }

    /// Consumes one input batch on `port`. Streaming operators append
    /// output batches to `out`; blocking operators buffer until `finish`.
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError>;

    /// Signals end of input on all ports; emits any buffered output.
    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError>;
}

/// Shared per-worker context: the interpreter and the run's statistics.
/// Cheap to construct; one per operator instance.
#[derive(Clone, Copy)]
pub struct OpCtx<'a> {
    /// The UDF interpreter.
    pub interp: Interp,
    /// Shared counters of the enclosing execution.
    pub stats: &'a ExecStats,
    /// The execution's shared memory budget: blocking operators register
    /// their buffered state here and spill to sorted runs on pressure
    /// (see [`crate::spill`]).
    pub gov: &'a MemoryGovernor,
    /// Target number of records per emitted batch.
    pub batch_size: usize,
    /// Operator id inside the plan — the per-operator counter slot this
    /// instance charges. Harmless when the stats carry no per-op slots.
    pub op_id: usize,
}

impl OpCtx<'_> {
    /// Runs one UDF invocation, charging the stats.
    pub(crate) fn call(
        &self,
        op: &BoundOp,
        inv: Invocation<'_>,
        out: &mut Vec<Record>,
    ) -> Result<(), ExecError> {
        let before = out.len();
        let st = self
            .interp
            .run(&op.udf, inv, &op.layout, out)
            .map_err(|e| ExecError::Udf(op.name.clone(), e))?;
        self.stats.add_call(self.op_id, st.steps, st.emits);
        if self.stats.detail() {
            let bytes: usize = out[before..].iter().map(Record::encoded_len).sum();
            self.stats.add_op_out_bytes(self.op_id, bytes as u64);
        }
        Ok(())
    }

    /// Chunks emitted records into batches and appends them to `out`.
    pub(crate) fn emit(&self, records: Vec<Record>, out: &mut Vec<Arc<RecordBatch>>) {
        out.extend(into_batches(records, self.batch_size));
    }
}

// ---------------------------------------------------------------------------
// Key helpers — allocation-free on the hot path.
// ---------------------------------------------------------------------------

/// Compares two records on the same key attributes, field by field.
#[inline]
pub(crate) fn key_cmp(a: &Record, b: &Record, key: &[AttrId]) -> Ordering {
    for &k in key {
        match a.field(k.index()).cmp(b.field(k.index())) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Compares record `a`'s key `ka` with record `b`'s key `kb` (two-input
/// PACTs: the sides key on different global attributes).
#[inline]
pub(crate) fn key_cmp2(a: &Record, ka: &[AttrId], b: &Record, kb: &[AttrId]) -> Ordering {
    debug_assert_eq!(ka.len(), kb.len());
    for (&x, &y) in ka.iter().zip(kb) {
        match a.field(x.index()).cmp(b.field(y.index())) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `true` iff any key field of the record is null (SQL flavour: such
/// records match nothing in joins).
#[inline]
pub(crate) fn key_has_null(r: &Record, key: &[AttrId]) -> bool {
    key.iter().any(|k| r.field(k.index()).is_null())
}

/// FxHash of the key fields of a record, without materializing the key.
/// Equal keys hash equal (including `Null == Null`); collisions are
/// resolved by exact comparison at the use sites.
#[inline]
pub(crate) fn key_hash(r: &Record, key: &[AttrId]) -> u64 {
    let mut h = FxHasher::default();
    for &k in key {
        std::hash::Hash::hash(r.field(k.index()), &mut h);
    }
    h.finish()
}

/// Canonical ordering inside key groups: `(key, whole record)`. Sorting
/// with this comparator makes group contents a function of the input bag,
/// independent of partitioning and arrival order — the determinism
/// property the paper's equivalence results assume.
#[inline]
pub(crate) fn canonical_cmp(a: &Record, b: &Record, key: &[AttrId]) -> Ordering {
    key_cmp(a, b, key).then_with(|| a.cmp(b))
}

/// Length of the key run starting at `i` in a key-sorted slice — the
/// single run-detection primitive shared by grouping, co-grouping and the
/// profiler's distinct-key count. Works over owned records or references.
#[inline]
pub(crate) fn run_len<R: std::borrow::Borrow<Record>>(
    recs: &[R],
    i: usize,
    key: &[AttrId],
) -> usize {
    let mut j = i + 1;
    while j < recs.len() && key_cmp(recs[i].borrow(), recs[j].borrow(), key).is_eq() {
        j += 1;
    }
    j - i
}

/// Total `encoded_len` of a record slice — the byte measure blocking
/// operators register with the [`MemoryGovernor`] (the same approximation
/// the cost model's `mem_budget` is expressed in).
#[inline]
pub(crate) fn records_bytes(recs: &[Record]) -> u64 {
    recs.iter().map(|r| r.encoded_len() as u64).sum()
}

/// Takes ownership of a batch's records: moves when this is the last
/// reference (the common forward/partition case), clones only for batches
/// still shared with other partitions (broadcast).
pub(crate) fn take_records(batch: Arc<RecordBatch>) -> Vec<Record> {
    match Arc::try_unwrap(batch) {
        Ok(b) => b.into_records(),
        Err(shared) => shared.to_records(),
    }
}

/// Normalizes a batch to row representation for operators that buffer
/// shared batches and join over *borrowed* records (Match, Cross).
/// Columnar batches are materialized once at push time (moving the columns
/// when this is the last reference); row batches pass through untouched,
/// so broadcast sharing of row batches stays zero-copy.
pub(crate) fn rows_arc(batch: Arc<RecordBatch>) -> Arc<RecordBatch> {
    if batch.columns().is_some() {
        Arc::new(RecordBatch::from_records(take_records(batch)))
    } else {
        batch
    }
}

/// Chunks records into `Arc`-wrapped batches of at most `batch_size` — the
/// single batching point used by operator emission, partition shipping and
/// the scan stage.
pub(crate) fn into_batches(records: Vec<Record>, batch_size: usize) -> Vec<Arc<RecordBatch>> {
    RecordBatch::chunked(records, batch_size)
        .into_iter()
        .map(Arc::new)
        .collect()
}

// ---------------------------------------------------------------------------
// Factory + single-shot application.
// ---------------------------------------------------------------------------

/// Builds the operator realizing `(op, strategy)`. This is the single
/// lowering point shared by the logical oracle, the parallel engine and
/// the profiler. `LocalStrategy::Pipe` selects each PACT's default
/// algorithm (hash grouping / build-left hash join).
pub fn build<'a>(
    op: &'a BoundOp,
    strategy: LocalStrategy,
    ctx: OpCtx<'a>,
) -> Box<dyn Operator + 'a> {
    match &op.pact {
        Pact::Map => Box::new(map::MapOp::new(op, ctx)),
        // StreamAgg is only chosen by the optimizer where the schema-level
        // legality holds (structural fold proof, pass-through fields are
        // keys, no fold targets a key); fall back to buffered hash
        // grouping defensively if a hand-built physical plan requests it
        // for a reduce that fails any of those conditions.
        Pact::Reduce { .. } if strategy == LocalStrategy::StreamAgg => {
            if op.stream_aggregable() {
                Box::new(streamagg::StreamAggOp::new(
                    op,
                    streamagg::AggRole::Final,
                    ctx,
                ))
            } else {
                Box::new(reduce::ReduceOp::new(op, LocalStrategy::HashGroup, ctx))
            }
        }
        Pact::Reduce { .. } => Box::new(reduce::ReduceOp::new(op, strategy, ctx)),
        Pact::Match { .. } => Box::new(join::MatchOp::new(op, strategy, ctx)),
        Pact::Cross => Box::new(cross::CrossOp::new(op, ctx)),
        Pact::CoGroup { .. } => Box::new(cogroup::CoGroupOp::new(op, ctx)),
    }
}

/// Builds the pre-ship combiner stage of a combinable Reduce: a streaming
/// pre-aggregator that emits raw partials (no UDF calls). Panics when the
/// operator is not a proven in-place fold — the lowering only inserts
/// combiner stages where `PhysNode::combine` was legally set.
pub(crate) fn build_combiner<'a>(op: &'a BoundOp, ctx: OpCtx<'a>) -> Box<dyn Operator + 'a> {
    Box::new(streamagg::StreamAggOp::new(
        op,
        streamagg::AggRole::Combine,
        ctx,
    ))
}

/// Builds a fused chain of Map operators running as **one** task: records
/// flow stage-to-stage as plain `Vec<Record>`s, skipping intermediate batch
/// formation and channel hops. Every element must be a Map; each carries
/// its own [`OpCtx`] so per-operator stats stay attributed correctly.
pub(crate) fn build_map_chain<'a>(stages: Vec<(&'a BoundOp, OpCtx<'a>)>) -> Box<dyn Operator + 'a> {
    debug_assert!(stages.iter().all(|(op, _)| matches!(op.pact, Pact::Map)));
    Box::new(map::MapOp::chained(stages))
}

/// Applies one operator over fully materialized single-partition inputs:
/// builds it, pushes one batch per input port, finishes, and concatenates
/// the output. Used by the profiler and by strategy-agreement tests.
pub fn apply_single(
    op: &BoundOp,
    strategy: LocalStrategy,
    inputs: Vec<Vec<Record>>,
    ctx: OpCtx<'_>,
) -> Result<Vec<Record>, ExecError> {
    let mut oper = build(op, strategy, ctx);
    oper.open()?;
    let mut out = Vec::new();
    for (port, records) in inputs.into_iter().enumerate() {
        oper.push(port, Arc::new(RecordBatch::from_records(records)), &mut out)?;
    }
    oper.finish(&mut out)?;
    let mut records = Vec::new();
    for b in out {
        records.extend(take_records(b));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    fn rec(vals: &[i64]) -> Record {
        Record::from_values(vals.iter().map(|&v| Value::Int(v)))
    }

    #[test]
    fn key_cmp_orders_by_key_fields_only() {
        let key = [AttrId(1)];
        assert_eq!(key_cmp(&rec(&[9, 1]), &rec(&[0, 2]), &key), Ordering::Less);
        assert_eq!(key_cmp(&rec(&[9, 2]), &rec(&[0, 2]), &key), Ordering::Equal);
    }

    #[test]
    fn key_hash_agrees_with_key_equality() {
        let key = [AttrId(0), AttrId(2)];
        let a = rec(&[5, 1, 7]);
        let b = rec(&[5, 2, 7]);
        assert_eq!(key_cmp(&a, &b, &key), Ordering::Equal);
        assert_eq!(key_hash(&a, &key), key_hash(&b, &key));
        let c = rec(&[5, 1, 8]);
        assert_ne!(key_hash(&a, &key), key_hash(&c, &key));
    }

    #[test]
    fn null_keys_hash_equal_and_group_together() {
        let key = [AttrId(0)];
        let a = Record::from_values([Value::Null, Value::Int(1)]);
        let b = Record::from_values([Value::Null, Value::Int(2)]);
        assert!(key_has_null(&a, &key));
        assert_eq!(key_cmp(&a, &b, &key), Ordering::Equal);
        assert_eq!(key_hash(&a, &key), key_hash(&b, &key));
    }

    #[test]
    fn take_records_moves_unique_and_clones_shared() {
        let batch = Arc::new(RecordBatch::from_records(vec![rec(&[1])]));
        let keep = Arc::clone(&batch);
        // Shared: cloned, original still intact.
        assert_eq!(take_records(batch), vec![rec(&[1])]);
        assert_eq!(keep.len(), 1);
        // Unique: moved.
        assert_eq!(take_records(keep), vec![rec(&[1])]);
    }
}
