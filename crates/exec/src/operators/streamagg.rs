//! Streaming pre-aggregation for *combinable* (decomposable) reduces.
//!
//! When static code analysis proves a reduce UDF is an in-place algebraic
//! fold (see `strato_sca::combine`), the engine does not need to buffer
//! the group at all: it keeps **one partial record per key** in a hash
//! table and folds every arriving record into its partial with the proven
//! `⊕` operator — the engine literally runs the fold the analysis read
//! out of the black box. The same operator serves two roles:
//!
//! * **pre-ship combiner** ([`AggRole::Combine`]): inserted ahead of a
//!   Partition-shipped Reduce; emits the raw partials (no UDF calls), so
//!   only one record per key per producing partition crosses the wire;
//! * **final local strategy** ([`AggRole::Final`],
//!   `LocalStrategy::StreamAgg`): replaces the buffering Reduce; at
//!   `finish` it invokes the UDF once per partial (a singleton group), so
//!   UDF-call accounting matches the buffered path exactly — one call per
//!   distinct key.
//!
//! ## Why the output is byte-identical to the buffered Reduce
//!
//! The combiner legality conditions (`Plan::combinable_reduce`) guarantee
//! every field of a group record is a grouping key (constant within the
//! group), a folded field (`⊕` is associative + commutative, so the fold
//! is independent of arrival order and of how the group was split into
//! partials), or an attribute the input subtree never populates (null in
//! every record). A partial is therefore a pure function of the group
//! *bag*, and `finish` emits partials in ascending canonical key order —
//! the same order the buffered Reduce emits groups. The UDF's constant
//! accumulator init participates exactly once, in the final invocation,
//! because partials are produced by the pure record-value fold.
//!
//! Memory: `O(distinct keys)` instead of `O(input)`, and the `finish`
//! stall shrinks to a sort of the partials — the aggregation work itself
//! streams with the arriving batches.

use super::{canonical_cmp, key_cmp, key_hash, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::{eval_bin, Invocation};
use strato_ir::BinOp;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Which role a [`StreamAggOp`] instance plays (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggRole {
    /// Pre-ship combiner: emit raw partials, no UDF involvement.
    Combine,
    /// Final local strategy: one UDF invocation per partial.
    Final,
}

/// Streaming hash pre-aggregation over input port 0.
///
/// The table is keyed by the 64-bit key hash with exact key comparison
/// per bucket entry, so hash collisions cannot merge distinct keys.
pub struct StreamAggOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
    /// `(global attribute index, ⊕)` per folded field.
    folds: Vec<(usize, BinOp)>,
    role: AggRole,
    /// key hash → partial records of the keys sharing that hash.
    table: FxHashMap<u64, Vec<Record>>,
    records_in: u64,
}

impl<'a> StreamAggOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, role: AggRole, ctx: OpCtx<'a>) -> Self {
        let folds = op
            .combine_folds()
            .expect("StreamAgg requires a combinable reduce UDF")
            .into_iter()
            .map(|(attr, bin)| (attr.index(), bin))
            .collect();
        StreamAggOp {
            op,
            ctx,
            folds,
            role,
            table: FxHashMap::default(),
            records_in: 0,
        }
    }

    /// Folds one record into its key's partial (creating it on first
    /// sight). This is the entire per-record work of the operator.
    fn absorb(&mut self, r: Record) {
        let key = &self.op.key_attrs[0];
        self.records_in += 1;
        let bucket = self.table.entry(key_hash(&r, key)).or_default();
        match bucket.iter_mut().find(|p| key_cmp(p, &r, key).is_eq()) {
            Some(p) => {
                for &(f, bin) in &self.folds {
                    let v = eval_bin(bin, p.field(f), r.field(f));
                    p.set_field(f, v);
                }
            }
            None => bucket.push(r),
        }
    }
}

impl Operator for StreamAggOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        _out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "streaming aggregation is unary");
        for r in take_records(batch) {
            self.absorb(r);
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[0];
        let mut partials: Vec<Record> = self.table.drain().flat_map(|(_, b)| b).collect();
        // Ascending canonical key order: combiner output is deterministic
        // and the Final role matches the buffered Reduce's emission order.
        partials.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
        self.ctx
            .stats
            .add_preagg(self.records_in, partials.len() as u64);
        match self.role {
            AggRole::Combine => self.ctx.emit(partials, out),
            AggRole::Final => {
                let groups = partials.len() as u64;
                let mut emitted = Vec::new();
                for p in &partials {
                    self.ctx.call(
                        self.op,
                        Invocation::Group(std::slice::from_ref(p)),
                        &mut emitted,
                    )?;
                }
                if self.ctx.stats.detail() {
                    // Partials are exactly the distinct input-0 keys.
                    self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
                }
                self.ctx.emit(emitted, out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{apply_single, build_combiner};
    use crate::stats::ExecStats;
    use crate::testutil::sum_inplace;
    use strato_core::LocalStrategy;
    use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
    use strato_ir::interp::Interp;
    use strato_record::{DataSet, Value};

    fn agg_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let r = p.reduce("agg", &[0], sum_inplace(2, 1), CostHints::default(), s);
        p.finish(r).unwrap().bind().unwrap()
    }

    fn wide(plan: &Plan, rows: &[(i64, i64)]) -> Vec<Record> {
        let ds: DataSet = rows
            .iter()
            .map(|&(k, v)| Record::from_values([Value::Int(k), Value::Int(v)]))
            .collect();
        crate::pipeline::widen(&ds, &plan.ctx.sources[0].attrs, plan.ctx.width())
    }

    fn ctx(stats: &ExecStats) -> OpCtx<'_> {
        OpCtx {
            interp: Interp::default(),
            stats,
            batch_size: 64,
            op_id: 0,
        }
    }

    #[test]
    fn stream_agg_matches_buffered_reduce_record_for_record() {
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows = [(3, 10), (1, 1), (3, -4), (2, 7), (1, 5), (3, 9)];
        let input = wide(&plan, &rows);
        let s1 = ExecStats::new();
        let buffered =
            apply_single(op, LocalStrategy::HashGroup, vec![input.clone()], ctx(&s1)).unwrap();
        let s2 = ExecStats::new();
        let streamed = apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2)).unwrap();
        // Same records in the same (ascending-key) order.
        assert_eq!(buffered, streamed);
        // Same UDF-call accounting: one call per distinct key.
        assert_eq!(s1.snapshot().0, s2.snapshot().0);
        assert_eq!(s2.snapshot().0, 3);
        // The streaming path reports its reduction.
        assert_eq!(s2.preagg_snapshot(), (6, 3));
        assert_eq!(s1.preagg_snapshot(), (0, 0));
    }

    #[test]
    fn combiner_role_emits_pure_partials_without_udf_calls() {
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows = [(2, 1), (1, 10), (2, 2), (2, 4), (1, -3)];
        let input = wide(&plan, &rows);
        let stats = ExecStats::new();
        let mut comb = build_combiner(op, ctx(&stats));
        comb.open().unwrap();
        let mut out = Vec::new();
        // Feed one record per batch: folding must happen across batches.
        for r in input {
            comb.push(0, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                .unwrap();
        }
        comb.finish(&mut out).unwrap();
        let partials: Vec<Record> = out
            .into_iter()
            .flat_map(crate::operators::take_records)
            .collect();
        // One partial per key, ascending, with the pure (init-free) fold.
        assert_eq!(partials.len(), 2);
        assert_eq!(partials[0].field(0), &Value::Int(1));
        assert_eq!(partials[0].field(1), &Value::Int(7));
        assert_eq!(partials[1].field(0), &Value::Int(2));
        assert_eq!(partials[1].field(1), &Value::Int(7));
        // No UDF ran; the reduction is accounted.
        assert_eq!(stats.snapshot().0, 0);
        assert_eq!(stats.preagg_snapshot(), (5, 2));
    }

    #[test]
    fn illegal_stream_agg_requests_fall_back_to_buffered_grouping() {
        // Two reduces whose UDF is *structurally* a fold but whose schema
        // makes streaming aggregation illegal: (a) the fold targets the
        // grouping key (partials would re-group by partial sums), (b) a
        // pass-through field is not a key. A hand-built plan requesting
        // StreamAgg must get the buffered ReduceOp instead.
        let cases: Vec<Plan> = vec![
            {
                let mut p = ProgramBuilder::new();
                let s = p.source(SourceDef::new("s", &["k"], 16));
                let r = p.reduce("agg", &[0], sum_inplace(1, 0), CostHints::default(), s);
                p.finish(r).unwrap().bind().unwrap()
            },
            {
                let mut p = ProgramBuilder::new();
                let s = p.source(SourceDef::new("s", &["k", "v", "payload"], 16));
                let r = p.reduce("agg", &[0], sum_inplace(3, 1), CostHints::default(), s);
                p.finish(r).unwrap().bind().unwrap()
            },
        ];
        for plan in &cases {
            let op = &plan.ctx.ops[0];
            assert!(op.combine.is_some(), "structural proof holds");
            assert!(!op.stream_aggregable(), "schema legality refused");
            let src = &plan.ctx.sources[0];
            let ds: DataSet = (0..12i64)
                .map(|i| {
                    Record::from_values(
                        (0..src.attrs.len()).map(|f| Value::Int(if f == 0 { i % 3 } else { i })),
                    )
                })
                .collect();
            let input = crate::pipeline::widen(&ds, &src.attrs, plan.ctx.width());
            let s1 = ExecStats::new();
            let buffered =
                apply_single(op, LocalStrategy::HashGroup, vec![input.clone()], ctx(&s1)).unwrap();
            let s2 = ExecStats::new();
            let requested =
                apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2)).unwrap();
            assert_eq!(buffered, requested, "fallback must be exact");
            // The fallback is the buffered operator: no preagg activity.
            assert_eq!(s2.preagg_snapshot(), (0, 0));
        }
    }

    #[test]
    fn null_and_mixed_keys_group_exactly() {
        // Null keys group together (SQL GROUP BY flavour); the fold's
        // null-absorption matches the UDF's interpreter semantics.
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let mk = |k: Value, v: i64| {
            let mut r = Record::nulls(plan.ctx.width());
            r.set_field(0, k);
            r.set_field(1, Value::Int(v));
            r
        };
        let input = vec![mk(Value::Null, 3), mk(Value::Int(1), 2), mk(Value::Null, 4)];
        let s1 = ExecStats::new();
        let buffered =
            apply_single(op, LocalStrategy::HashGroup, vec![input.clone()], ctx(&s1)).unwrap();
        let s2 = ExecStats::new();
        let streamed = apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2)).unwrap();
        assert_eq!(buffered, streamed);
        assert_eq!(buffered.len(), 2);
    }
}
