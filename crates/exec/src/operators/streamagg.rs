//! Streaming pre-aggregation for *combinable* (decomposable) reduces.
//!
//! When static code analysis proves a reduce UDF is an in-place algebraic
//! fold (see `strato_sca::combine`), the engine does not need to buffer
//! the group at all: it keeps **one partial record per key** in a hash
//! table and folds every arriving record into its partial with the proven
//! `⊕` operator — the engine literally runs the fold the analysis read
//! out of the black box. The same operator serves two roles:
//!
//! * **pre-ship combiner** (`AggRole::Combine`): inserted ahead of a
//!   Partition-shipped Reduce; emits the raw partials (no UDF calls), so
//!   only one record per key per producing partition crosses the wire;
//! * **final local strategy** (`AggRole::Final`,
//!   `LocalStrategy::StreamAgg`): replaces the buffering Reduce; at
//!   `finish` it invokes the UDF once per partial (a singleton group), so
//!   UDF-call accounting matches the buffered path exactly — one call per
//!   distinct key.
//!
//! ## Why the output is byte-identical to the buffered Reduce
//!
//! The combiner legality conditions (`Plan::combinable_reduce`) guarantee
//! every field of a group record is a grouping key (constant within the
//! group), a folded field (`⊕` is associative + commutative, so the fold
//! is independent of arrival order and of how the group was split into
//! partials), or an attribute the input subtree never populates (null in
//! every record). A partial is therefore a pure function of the group
//! *bag*, and `finish` emits partials in ascending canonical key order —
//! the same order the buffered Reduce emits groups. The UDF's constant
//! accumulator init participates exactly once, in the final invocation,
//! because partials are produced by the pure record-value fold.
//!
//! Memory: `O(distinct keys)` instead of `O(input)`, and the `finish`
//! stall shrinks to a sort of the partials — the aggregation work itself
//! streams with the arriving batches.
//!
//! ## Memory governance
//!
//! The partial table registers with the execution's
//! [`MemoryGovernor`](crate::spill::MemoryGovernor). Under pressure the
//! two roles degrade differently:
//!
//! * the **combiner** flushes its partials *downstream* (Hadoop-style
//!   combiner spill): the final Reduce re-groups them, so a skewed or
//!   wide key domain costs shipped volume instead of unbounded memory —
//!   the table never touches disk;
//! * the **final** role spills its partials to canonically sorted on-disk
//!   runs; at `finish` the runs merge with the in-memory table and
//!   equal-key partials are re-folded (legal: `⊕` is associative and
//!   commutative) before the one UDF call per key — call accounting and
//!   emission order stay identical to the unspilled run.

use super::{canonical_cmp, key_cmp, key_hash, take_records, OpCtx, Operator};
use crate::engine::ExecError;
use crate::spill::merge::external_group_stream;
use crate::spill::SortedRun;
use std::sync::Arc;
use strato_dataflow::BoundOp;
use strato_ir::interp::{eval_bin, Invocation};
use strato_ir::BinOp;
use strato_record::hash::FxHashMap;
use strato_record::{Record, RecordBatch};

/// Which role a [`StreamAggOp`] instance plays (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggRole {
    /// Pre-ship combiner: emit raw partials, no UDF involvement.
    Combine,
    /// Final local strategy: one UDF invocation per partial.
    Final,
}

/// Streaming hash pre-aggregation over input port 0.
///
/// The table is keyed by the 64-bit key hash with exact key comparison
/// per bucket entry, so hash collisions cannot merge distinct keys.
pub struct StreamAggOp<'a> {
    op: &'a BoundOp,
    ctx: OpCtx<'a>,
    /// `(global attribute index, ⊕)` per folded field.
    folds: Vec<(usize, BinOp)>,
    role: AggRole,
    /// Key attributes as plain column indices (columnar kernel form).
    key_idx: Vec<usize>,
    /// Scratch hash column reused across columnar batches.
    hashes: Vec<u64>,
    /// key hash → partial records of the keys sharing that hash.
    table: FxHashMap<u64, Vec<Record>>,
    records_in: u64,
    /// Partials emitted or spilled so far (pressure flushes + finish).
    partials_out: u64,
    /// `encoded_len` of the table's partials, as granted to the governor.
    table_bytes: u64,
    /// Sorted partial runs written under pressure (Final role only).
    runs: Vec<SortedRun>,
}

impl<'a> StreamAggOp<'a> {
    pub(crate) fn new(op: &'a BoundOp, role: AggRole, ctx: OpCtx<'a>) -> Self {
        let folds = op
            .combine_folds()
            .expect("StreamAgg requires a combinable reduce UDF")
            .into_iter()
            .map(|(attr, bin)| (attr.index(), bin))
            .collect();
        let key_idx = op.key_attrs[0].iter().map(|k| k.index()).collect();
        StreamAggOp {
            op,
            ctx,
            folds,
            role,
            key_idx,
            hashes: Vec::new(),
            table: FxHashMap::default(),
            records_in: 0,
            partials_out: 0,
            table_bytes: 0,
            runs: Vec::new(),
        }
    }

    /// Folds one record into its key's partial (creating it on first
    /// sight). This is the entire per-record work of the operator.
    fn absorb(&mut self, r: Record) {
        let key = &self.op.key_attrs[0];
        self.records_in += 1;
        let bucket = self.table.entry(key_hash(&r, key)).or_default();
        match bucket.iter_mut().find(|p| key_cmp(p, &r, key).is_eq()) {
            Some(p) => {
                for &(f, bin) in &self.folds {
                    let v = eval_bin(bin, p.field(f), r.field(f));
                    p.set_field(f, v);
                }
            }
            None => {
                if self.ctx.gov.bounded() {
                    let bytes = r.encoded_len() as u64;
                    self.table_bytes += bytes;
                    self.ctx.gov.grant(bytes);
                }
                bucket.push(r);
            }
        }
    }

    /// Columnar twin of [`StreamAggOp::absorb`]: folds one row of a
    /// columnar batch into its key's partial without materializing the row
    /// — a `Record` is built only when the key is seen for the first time.
    /// `hash` is the row's precomputed key hash (vectorized per batch).
    fn absorb_row(&mut self, cb: &strato_record::ColumnBatch, row: usize, hash: u64) {
        self.records_in += 1;
        let bucket = self.table.entry(hash).or_default();
        match bucket
            .iter_mut()
            .find(|p| cb.key_cmp_record(row, p, &self.key_idx).is_eq())
        {
            Some(p) => {
                for &(f, bin) in &self.folds {
                    let v = eval_bin(bin, p.field(f), &cb.value_at(row, f));
                    p.set_field(f, v);
                }
            }
            None => {
                let r = cb.row_record(row);
                if self.ctx.gov.bounded() {
                    let bytes = r.encoded_len() as u64;
                    self.table_bytes += bytes;
                    self.ctx.gov.grant(bytes);
                }
                bucket.push(r);
            }
        }
    }

    /// Drains the table into canonically sorted partials and releases its
    /// governor grant.
    fn drain_sorted(&mut self) -> Vec<Record> {
        let key = &self.op.key_attrs[0];
        let mut partials: Vec<Record> = self.table.drain().flat_map(|(_, b)| b).collect();
        partials.sort_unstable_by(|a, b| canonical_cmp(a, b, key));
        self.ctx.gov.release(self.table_bytes);
        self.table_bytes = 0;
        partials
    }

    /// Sheds the table under memory pressure: the combiner flushes its
    /// partials downstream (the final Reduce re-groups them), the final
    /// role writes them as a sorted on-disk run.
    fn shed(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let partials = self.drain_sorted();
        self.partials_out += partials.len() as u64;
        match self.role {
            AggRole::Combine => self.ctx.emit(partials, out),
            AggRole::Final => {
                let run = self.ctx.gov.write_sorted_run(&partials)?;
                self.ctx
                    .stats
                    .add_spill(self.ctx.op_id, run.records(), run.bytes());
                self.runs.push(run);
            }
        }
        Ok(())
    }

    /// Folds a group of equal-key partials (from different runs/flushes)
    /// into one, mirroring [`StreamAggOp::absorb`]'s in-table fold.
    fn fold_group(&self, mut group: Vec<Record>) -> Record {
        let mut acc = group.swap_remove(0);
        for p in &group {
            for &(f, bin) in &self.folds {
                let v = eval_bin(bin, acc.field(f), p.field(f));
                acc.set_field(f, v);
            }
        }
        acc
    }
}

impl Operator for StreamAggOp<'_> {
    fn push(
        &mut self,
        port: usize,
        batch: Arc<RecordBatch>,
        out: &mut Vec<Arc<RecordBatch>>,
    ) -> Result<(), ExecError> {
        debug_assert_eq!(port, 0, "streaming aggregation is unary");
        if let Some(cb) = batch.columns() {
            // Vectorized: hash the whole key column, then fold row views
            // into the table. Grant accounting matches the row path because
            // a partial's `encoded_len` is layout-independent.
            let mut hashes = std::mem::take(&mut self.hashes);
            cb.key_hash_into(&self.key_idx, &mut hashes);
            for (row, &h) in hashes.iter().enumerate().take(cb.len()) {
                self.absorb_row(cb, row, h);
            }
            self.hashes = hashes;
        } else {
            for r in take_records(batch) {
                self.absorb(r);
            }
        }
        if self.ctx.gov.over_budget() && !self.table.is_empty() {
            self.shed(out)?;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Arc<RecordBatch>>) -> Result<(), ExecError> {
        let key = &self.op.key_attrs[0];
        // Ascending canonical key order: combiner output is deterministic
        // and the Final role matches the buffered Reduce's emission order.
        let partials = self.drain_sorted();
        self.partials_out += partials.len() as u64;
        self.ctx
            .stats
            .add_preagg(self.records_in, self.partials_out);
        match self.role {
            AggRole::Combine => self.ctx.emit(partials, out),
            AggRole::Final if self.runs.is_empty() => {
                let groups = partials.len() as u64;
                let mut emitted = Vec::new();
                for p in &partials {
                    self.ctx.call(
                        self.op,
                        Invocation::Group(std::slice::from_ref(p)),
                        &mut emitted,
                    )?;
                }
                if self.ctx.stats.detail() {
                    // Partials are exactly the distinct input-0 keys.
                    self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
                }
                self.ctx.emit(emitted, out);
            }
            AggRole::Final => {
                // Out-of-core: merge the spilled partial runs with the
                // remaining table, re-fold the flush fragments of each key
                // into one partial, and keep the one-UDF-call-per-key
                // accounting of the in-memory path.
                let mut stream = external_group_stream(
                    self.ctx.gov,
                    std::mem::take(&mut self.runs),
                    partials,
                    key,
                )?;
                let mut groups = 0u64;
                let mut emitted = Vec::new();
                while let Some(g) = stream.next_group()? {
                    let p = self.fold_group(g);
                    self.ctx.call(
                        self.op,
                        Invocation::Group(std::slice::from_ref(&p)),
                        &mut emitted,
                    )?;
                    groups += 1;
                }
                if self.ctx.stats.detail() {
                    self.ctx.stats.add_op_distinct_keys(self.ctx.op_id, groups);
                }
                self.ctx.emit(emitted, out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{apply_single, build_combiner};
    use crate::spill::MemoryGovernor;
    use crate::stats::ExecStats;
    use crate::testutil::sum_inplace;
    use strato_core::LocalStrategy;
    use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
    use strato_ir::interp::Interp;
    use strato_record::{DataSet, Value};

    fn agg_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 64));
        let r = p.reduce("agg", &[0], sum_inplace(2, 1), CostHints::default(), s);
        p.finish(r).unwrap().bind().unwrap()
    }

    fn wide(plan: &Plan, rows: &[(i64, i64)]) -> Vec<Record> {
        let ds: DataSet = rows
            .iter()
            .map(|&(k, v)| Record::from_values([Value::Int(k), Value::Int(v)]))
            .collect();
        crate::pipeline::widen(&ds, &plan.ctx.sources[0].attrs, plan.ctx.width())
    }

    fn ctx<'a>(stats: &'a ExecStats, gov: &'a MemoryGovernor) -> OpCtx<'a> {
        OpCtx {
            interp: Interp::default(),
            stats,
            gov,
            batch_size: 64,
            op_id: 0,
        }
    }

    #[test]
    fn stream_agg_matches_buffered_reduce_record_for_record() {
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows = [(3, 10), (1, 1), (3, -4), (2, 7), (1, 5), (3, 9)];
        let input = wide(&plan, &rows);
        let s1 = ExecStats::new();
        let g1 = MemoryGovernor::unbounded();
        let buffered = apply_single(
            op,
            LocalStrategy::HashGroup,
            vec![input.clone()],
            ctx(&s1, &g1),
        )
        .unwrap();
        let s2 = ExecStats::new();
        let g2 = MemoryGovernor::unbounded();
        let streamed =
            apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2, &g2)).unwrap();
        // Same records in the same (ascending-key) order.
        assert_eq!(buffered, streamed);
        // Same UDF-call accounting: one call per distinct key.
        assert_eq!(s1.snapshot().0, s2.snapshot().0);
        assert_eq!(s2.snapshot().0, 3);
        // The streaming path reports its reduction.
        assert_eq!(s2.preagg_snapshot(), (6, 3));
        assert_eq!(s1.preagg_snapshot(), (0, 0));
    }

    #[test]
    fn combiner_role_emits_pure_partials_without_udf_calls() {
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows = [(2, 1), (1, 10), (2, 2), (2, 4), (1, -3)];
        let input = wide(&plan, &rows);
        let stats = ExecStats::new();
        let gov = MemoryGovernor::unbounded();
        let mut comb = build_combiner(op, ctx(&stats, &gov));
        comb.open().unwrap();
        let mut out = Vec::new();
        // Feed one record per batch: folding must happen across batches.
        for r in input {
            comb.push(0, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                .unwrap();
        }
        comb.finish(&mut out).unwrap();
        let partials: Vec<Record> = out
            .into_iter()
            .flat_map(crate::operators::take_records)
            .collect();
        // One partial per key, ascending, with the pure (init-free) fold.
        assert_eq!(partials.len(), 2);
        assert_eq!(partials[0].field(0), &Value::Int(1));
        assert_eq!(partials[0].field(1), &Value::Int(7));
        assert_eq!(partials[1].field(0), &Value::Int(2));
        assert_eq!(partials[1].field(1), &Value::Int(7));
        // No UDF ran; the reduction is accounted.
        assert_eq!(stats.snapshot().0, 0);
        assert_eq!(stats.preagg_snapshot(), (5, 2));
    }

    #[test]
    fn illegal_stream_agg_requests_fall_back_to_buffered_grouping() {
        // Two reduces whose UDF is *structurally* a fold but whose schema
        // makes streaming aggregation illegal: (a) the fold targets the
        // grouping key (partials would re-group by partial sums), (b) a
        // pass-through field is not a key. A hand-built plan requesting
        // StreamAgg must get the buffered ReduceOp instead.
        let cases: Vec<Plan> = vec![
            {
                let mut p = ProgramBuilder::new();
                let s = p.source(SourceDef::new("s", &["k"], 16));
                let r = p.reduce("agg", &[0], sum_inplace(1, 0), CostHints::default(), s);
                p.finish(r).unwrap().bind().unwrap()
            },
            {
                let mut p = ProgramBuilder::new();
                let s = p.source(SourceDef::new("s", &["k", "v", "payload"], 16));
                let r = p.reduce("agg", &[0], sum_inplace(3, 1), CostHints::default(), s);
                p.finish(r).unwrap().bind().unwrap()
            },
        ];
        for plan in &cases {
            let op = &plan.ctx.ops[0];
            assert!(op.combine.is_some(), "structural proof holds");
            assert!(!op.stream_aggregable(), "schema legality refused");
            let src = &plan.ctx.sources[0];
            let ds: DataSet = (0..12i64)
                .map(|i| {
                    Record::from_values(
                        (0..src.attrs.len()).map(|f| Value::Int(if f == 0 { i % 3 } else { i })),
                    )
                })
                .collect();
            let input = crate::pipeline::widen(&ds, &src.attrs, plan.ctx.width());
            let s1 = ExecStats::new();
            let g1 = MemoryGovernor::unbounded();
            let buffered = apply_single(
                op,
                LocalStrategy::HashGroup,
                vec![input.clone()],
                ctx(&s1, &g1),
            )
            .unwrap();
            let s2 = ExecStats::new();
            let g2 = MemoryGovernor::unbounded();
            let requested =
                apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2, &g2)).unwrap();
            assert_eq!(buffered, requested, "fallback must be exact");
            // The fallback is the buffered operator: no preagg activity.
            assert_eq!(s2.preagg_snapshot(), (0, 0));
        }
    }

    #[test]
    fn final_role_spills_partials_and_refolds_them_exactly() {
        // A 30-byte budget holds roughly one 22-byte partial: the table
        // sheds to disk repeatedly, splitting every key's fold across
        // several runs. The merge must re-fold the fragments so output,
        // UDF-call accounting and emission order match the unspilled run.
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows: Vec<(i64, i64)> = (0..40).map(|i| (i % 4, i)).collect();
        let input = wide(&plan, &rows);

        let s_ref = ExecStats::new();
        let g_ref = MemoryGovernor::unbounded();
        let reference = apply_single(
            op,
            LocalStrategy::StreamAgg,
            vec![input.clone()],
            ctx(&s_ref, &g_ref),
        )
        .unwrap();

        let stats = ExecStats::with_ops(1);
        let gov = MemoryGovernor::with_budget(Some(30));
        let mut agg = StreamAggOp::new(op, AggRole::Final, ctx(&stats, &gov));
        agg.open().unwrap();
        let mut out = Vec::new();
        for r in input {
            agg.push(0, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                .unwrap();
        }
        agg.finish(&mut out).unwrap();
        let got: Vec<Record> = out
            .into_iter()
            .flat_map(crate::operators::take_records)
            .collect();
        assert_eq!(got, reference, "spilled StreamAgg must be exact");
        let (rec_spilled, _, runs) = stats.spill_snapshot();
        assert!(runs > 1, "tiny budget must spill repeatedly: {runs}");
        assert!(rec_spilled > 0);
        // One UDF call per distinct key, exactly like the unspilled run.
        assert_eq!(stats.snapshot().0, 4);
        assert_eq!(s_ref.snapshot().0, 4);
        assert_eq!(gov.resident(), 0, "grants released at finish");
    }

    #[test]
    fn combiner_flushes_partials_downstream_under_pressure_not_to_disk() {
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let rows: Vec<(i64, i64)> = (0..30).map(|i| (i % 3, 1)).collect();
        let input = wide(&plan, &rows);
        let stats = ExecStats::with_ops(1);
        let gov = MemoryGovernor::with_budget(Some(30));
        let mut comb = build_combiner(op, ctx(&stats, &gov));
        comb.open().unwrap();
        let mut out = Vec::new();
        for r in input {
            comb.push(0, Arc::new(RecordBatch::from_records(vec![r])), &mut out)
                .unwrap();
        }
        let flushed_early: usize = out.iter().map(|b| b.len()).sum();
        assert!(flushed_early > 0, "pressure must flush partials mid-stream");
        comb.finish(&mut out).unwrap();
        let partials: Vec<Record> = out
            .into_iter()
            .flat_map(crate::operators::take_records)
            .collect();
        // More than one partial per key (the flushes split the fold), but
        // every input record is represented exactly once in the fold sum.
        assert!(partials.len() > 3, "{} partials", partials.len());
        let total: i64 = partials.iter().map(|p| p.field(1).as_int().unwrap()).sum();
        assert_eq!(total, 30, "flush fragments must partition the fold");
        // Hadoop-style: the combiner never touches disk.
        assert_eq!(stats.spill_snapshot(), (0, 0, 0));
        assert_eq!(gov.spill_dir_path(), None);
        // Accounting balances: 30 in, every emitted partial counted.
        assert_eq!(stats.preagg_snapshot(), (30, partials.len() as u64));
        // No UDF ran in the combiner role.
        assert_eq!(stats.snapshot().0, 0);
    }

    #[test]
    fn null_and_mixed_keys_group_exactly() {
        // Null keys group together (SQL GROUP BY flavour); the fold's
        // null-absorption matches the UDF's interpreter semantics.
        let plan = agg_plan();
        let op = &plan.ctx.ops[0];
        let mk = |k: Value, v: i64| {
            let mut r = Record::nulls(plan.ctx.width());
            r.set_field(0, k);
            r.set_field(1, Value::Int(v));
            r
        };
        let input = vec![mk(Value::Null, 3), mk(Value::Int(1), 2), mk(Value::Null, 4)];
        let s1 = ExecStats::new();
        let g1 = MemoryGovernor::unbounded();
        let buffered = apply_single(
            op,
            LocalStrategy::HashGroup,
            vec![input.clone()],
            ctx(&s1, &g1),
        )
        .unwrap();
        let s2 = ExecStats::new();
        let g2 = MemoryGovernor::unbounded();
        let streamed =
            apply_single(op, LocalStrategy::StreamAgg, vec![input], ctx(&s2, &g2)).unwrap();
        assert_eq!(buffered, streamed);
        assert_eq!(buffered.len(), 2);
    }
}
