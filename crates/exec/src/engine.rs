//! Public execution entry points.
//!
//! The actual runtime lives in [`crate::operators`] (one physical operator
//! per PACT), `crate::ship` (data movement between partitions) and
//! [`crate::pipeline`] (plan lowering + the batch driver). Both entry
//! points here lower to that same runtime:
//!
//! * [`execute_logical`] — single-partition reference execution of a
//!   *logical* plan (default strategies, no shipping). Deterministic; the
//!   oracle the plan-equivalence test harness uses.
//! * [`execute`] — full physical execution of a [`strato_core::PhysPlan`]
//!   with `dop` partitions, streamed as a task graph over a fixed worker
//!   pool (see [`crate::pipeline`]).
//!
//! The `_with` variants take [`ExecOptions`] to tune batch size, worker
//! count, channel capacity, Map fusion, or to enable wire-format
//! validation on hash-partition shipping.

use crate::pipeline::{self, ExecOptions};
use crate::stats::ExecStats;
use std::collections::HashMap;
use strato_core::PhysPlan;
use strato_dataflow::Plan;
use strato_ir::interp::InterpError;
use strato_record::DataSet;

/// Input data sets, keyed by source name. Records are given in the
/// source's *local* schema (arity = number of source fields); the engine
/// widens them into global layout.
pub type Inputs = HashMap<String, DataSet>;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No input data set was supplied for a source.
    MissingInput(String),
    /// A UDF failed to execute (step limit or binding bug).
    Udf(String, InterpError),
    /// Wire-format validation failed (only with
    /// [`ExecOptions::validate_wire`]).
    Wire(String),
    /// Disk IO on the spill path failed (writing, reading or decoding a
    /// spill file of the out-of-core subsystem, see [`crate::spill`]).
    Spill(String),
    /// A worker task panicked — e.g. a buggy third-party component inside
    /// a UDF aborted instead of erroring. The scheduler catches the unwind
    /// at the task boundary, so the panic fails the query (with the
    /// offending operator named) rather than the process.
    Panic {
        /// Name of the operator (or source) whose task panicked.
        op: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingInput(s) => write!(f, "no input data for source {s}"),
            ExecError::Udf(op, e) => write!(f, "UDF of operator {op} failed: {e}"),
            ExecError::Wire(msg) => write!(f, "wire validation failed: {msg}"),
            ExecError::Spill(msg) => write!(f, "spill IO failed: {msg}"),
            ExecError::Panic { op, message } => {
                write!(f, "operator {op} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes a logical plan on one partition, with default local strategies
/// and no shipping. Deterministic; used as the semantics oracle by the
/// plan-equivalence test harness.
pub fn execute_logical(plan: &Plan, inputs: &Inputs) -> Result<(DataSet, ExecStats), ExecError> {
    execute_logical_with(plan, inputs, &ExecOptions::default())
}

/// [`execute_logical`] with explicit execution options.
pub fn execute_logical_with(
    plan: &Plan,
    inputs: &Inputs,
    opts: &ExecOptions,
) -> Result<(DataSet, ExecStats), ExecError> {
    let compiled = pipeline::compile_logical(plan, &plan.root);
    pipeline::run(plan, &compiled, inputs, 1, opts, None)
}

/// Executes a physical plan with `dop` partitions. Every `stage ×
/// partition` pair becomes one task on a fixed worker pool; ship
/// strategies route batches between partitions through bounded channels
/// and account records/bytes on [`ExecStats`].
pub fn execute(
    plan: &Plan,
    phys: &PhysPlan,
    inputs: &Inputs,
    dop: usize,
) -> Result<(DataSet, ExecStats), ExecError> {
    execute_with(plan, phys, inputs, dop, &ExecOptions::default())
}

/// [`execute`] with explicit execution options.
///
/// ```
/// use strato_dataflow::spec::{FlowSpec, FoldOp, NodeSpec, OpSpec, ReduceUdf, SourceSpec};
/// use strato_exec::{execute_with, ExecOptions, Inputs};
/// use strato_record::{DataSet, Record, Value};
///
/// // Build a grouped in-place Σv plan and optimize it for dop 2.
/// let plan = FlowSpec::new(NodeSpec::op(
///     OpSpec::reduce("sum", &[0], ReduceUdf::fold_inplace(FoldOp::Sum, 1)),
///     vec![NodeSpec::source(SourceSpec::new("s", &["k", "v"], 4))],
/// ))
/// .build()
/// .unwrap();
/// let best = strato_core::Optimizer::new(strato_dataflow::PropertyMode::Sca)
///     .with_dop(2)
///     .best(&plan);
///
/// let mut inputs = Inputs::new();
/// inputs.insert(
///     "s".into(),
///     [[1, 10], [1, 5], [2, 7]]
///         .iter()
///         .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
///         .collect::<DataSet>(),
/// );
/// let opts = ExecOptions { batch_size: 2, ..ExecOptions::default() };
/// let (out, stats) = execute_with(&best.plan, &best.phys, &inputs, 2, &opts).unwrap();
/// assert_eq!(out.len(), 2); // one record per key
/// assert_eq!(stats.totals().udf_calls, 2);
/// ```
pub fn execute_with(
    plan: &Plan,
    phys: &PhysPlan,
    inputs: &Inputs,
    dop: usize,
    opts: &ExecOptions,
) -> Result<(DataSet, ExecStats), ExecError> {
    let compiled = pipeline::compile_physical(&phys.root, opts.combine);
    pipeline::run(plan, &compiled, inputs, dop, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{apply_single, OpCtx};
    use strato_core::{cost::CostWeights, physical::best_physical, LocalStrategy, PropTable};
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::interp::Interp;
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};
    use strato_record::{Record, Value};

    fn filter_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn sum_reduce(w: usize) -> Function {
        // Copy first record of the group, append sum of field 1.
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![w]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, w, sum);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn ds(rows: &[&[i64]]) -> DataSet {
        rows.iter()
            .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
            .collect()
    }

    fn sum_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 6));
        let m = p.map("f", filter_map(2, 1), CostHints::default(), s);
        let r = p.reduce("sum", &[0], sum_reduce(2), CostHints::default(), m);
        p.finish(r).unwrap().bind().unwrap()
    }

    /// Widens a data set into global layout the way the scan stage does.
    fn widen(plan: &Plan, src: usize, ds: &DataSet) -> Vec<Record> {
        pipeline::widen(ds, &plan.ctx.sources[src].attrs, plan.ctx.width())
    }

    #[test]
    fn logical_execution_end_to_end() {
        let plan = sum_plan();
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[&[1, 10], &[1, 20], &[2, 5], &[2, -7], &[3, -1]]),
        );
        let (out, stats) = execute_logical(&plan, &inputs).unwrap();
        // Filter drops negatives; groups: k=1 sum 30, k=2 sum 5; k=3 gone.
        assert_eq!(out.len(), 2);
        let sums: Vec<(i64, i64)> = out
            .sorted()
            .iter()
            .map(|r| (r.field(0).as_int().unwrap(), r.field(2).as_int().unwrap()))
            .collect();
        assert_eq!(sums, vec![(1, 30), (2, 5)]);
        let (calls, ..) = stats.snapshot();
        // 5 map calls + 2 reduce groups.
        assert_eq!(calls, 7);
    }

    #[test]
    fn physical_execution_matches_logical() {
        let plan = sum_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 4);
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[
                &[1, 10],
                &[1, 20],
                &[2, 5],
                &[2, -7],
                &[3, -1],
                &[7, 2],
                &[7, 3],
                &[9, 4],
            ]),
        );
        let (logical, _) = execute_logical(&plan, &inputs).unwrap();
        let (physical, stats) = execute(&plan, &phys, &inputs, 4).unwrap();
        assert_eq!(logical, physical, "physical must agree with logical");
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert!(shipped > 0, "reduce must repartition");
        assert!(bytes > 0);
    }

    #[test]
    fn batch_size_one_and_wire_validation_agree_with_defaults() {
        let plan = sum_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 3);
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[&[1, 10], &[1, 20], &[2, 5], &[3, 4], &[3, 9]]),
        );
        let (reference, ref_stats) = execute(&plan, &phys, &inputs, 3).unwrap();
        let opts = ExecOptions {
            batch_size: 1,
            validate_wire: true,
            ..ExecOptions::default()
        };
        let (out, stats) = execute_with(&plan, &phys, &inputs, 3, &opts).unwrap();
        assert_eq!(reference, out);
        // Shipping accounting is independent of batch size and validation.
        assert_eq!(ref_stats.snapshot().2, stats.snapshot().2);
        assert_eq!(ref_stats.snapshot().3, stats.snapshot().3);
    }

    #[test]
    fn match_join_logical_and_physical_agree() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 10));
        let r = p.source(SourceDef::new("r", &["k2", "w"], 4).with_unique_key(&[0]));
        let j = p.match_("j", &[0], &[0], join_udf(2, 2), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert(
            "l".into(),
            ds(&[&[1, 100], &[2, 200], &[2, 201], &[5, 500]]),
        );
        inputs.insert("r".into(), ds(&[&[1, -1], &[2, -2], &[3, -3]]));
        let (logical, _) = execute_logical(&plan, &inputs).unwrap();
        // k=1: 1 pair; k=2: 2 pairs; k=5 no match → 3 records.
        assert_eq!(logical.len(), 3);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 3);
        let (physical, _) = execute(&plan, &phys, &inputs, 3).unwrap();
        assert_eq!(logical, physical);
    }

    #[test]
    fn null_join_keys_match_nothing() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k"], 2));
        let r = p.source(SourceDef::new("r", &["k2"], 2));
        let j = p.match_("j", &[0], &[0], join_udf(1, 1), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        let mut left = DataSet::new();
        left.push(Record::from_values([Value::Null]));
        left.push(Record::from_values([Value::Int(1)]));
        inputs.insert("l".into(), left);
        let mut right = DataSet::new();
        right.push(Record::from_values([Value::Null]));
        right.push(Record::from_values([Value::Int(1)]));
        inputs.insert("r".into(), right);
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert_eq!(out.len(), 1, "only the non-null key matches");
    }

    /// RAII guard silencing the default panic hook while deliberate
    /// panics fire (the unwinds themselves are caught at the task
    /// boundary); dropping it restores the previous hook even when an
    /// assertion fails in between.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

    struct HookGuard(Option<PanicHook>);

    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                std::panic::set_hook(prev);
            }
        }
    }

    fn silence_panics() -> HookGuard {
        let guard = HookGuard(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        guard
    }

    /// Map UDF that calls `abort_if(field)` — panics on any truthy field,
    /// modelling a buggy third-party component crashing mid-query.
    fn abort_on_truthy(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("boom", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        b.call(strato_ir::Intrinsic::AbortIf, vec![v]);
        let or = b.copy_input(0);
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn panicking_udf_fails_the_query_not_the_process() {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["v"], 8));
        let m = p.map("boom", abort_on_truthy(1, 0), CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds(&[&[0], &[0], &[7], &[0]]));

        let _guard = silence_panics();

        // Inline single-worker path.
        let err = execute_logical(&plan, &inputs).unwrap_err();
        // Pooled path, parallel partitions.
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
        let opts = ExecOptions {
            workers: Some(2),
            ..ExecOptions::default()
        };
        let pooled = execute_with(&plan, &phys, &inputs, 2, &opts).unwrap_err();
        drop(_guard);

        match err {
            ExecError::Panic { op, message } => {
                assert_eq!(op, "boom", "panic names the operator");
                assert!(message.contains("abort_if"), "payload preserved: {message}");
            }
            other => panic!("expected Panic, got {other}"),
        }
        assert!(matches!(pooled, ExecError::Panic { .. }), "{pooled}");

        // Falsy inputs do not trip it, and the engine stays usable after a
        // contained panic.
        inputs.insert("s".into(), ds(&[&[0], &[0]]));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn spill_files_are_cleaned_up_even_when_a_worker_panics() {
        // source → sum reduce (spills under a 48-byte budget) → a UDF that
        // panics on the aggregated sum. The reduce writes real runs before
        // the panic fires; the failed execution must still remove its
        // scoped spill directory (the `ExecError::Panic` path).
        let build = |boom: bool| {
            let mut p = ProgramBuilder::new();
            let s = p.source(SourceDef::new("s", &["k", "v"], 32));
            let r = p.reduce("sum", &[0], sum_reduce(2), CostHints::default(), s);
            let out = if boom {
                p.map("boom", abort_on_truthy(3, 2), CostHints::default(), r)
            } else {
                r
            };
            p.finish(out).unwrap().bind().unwrap()
        };
        let rows: Vec<Vec<i64>> = (0..32).map(|i| vec![i % 4, 1]).collect();
        let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds(&rows_ref));

        let base =
            std::env::temp_dir().join(format!("strato-spill-cleanup-test-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let opts = ExecOptions {
            mem_budget: Some(48),
            spill_dir: Some(base.clone()),
            ..ExecOptions::default()
        };

        // Sanity half: without the panicking map, this budget really does
        // spill — so the panic run below had spill files to clean up.
        let (_, stats) = execute_logical_with(&build(false), &inputs, &opts).unwrap();
        assert!(stats.spill_snapshot().2 > 0, "budget must force spills");
        let emptied = |base: &std::path::Path| std::fs::read_dir(base).unwrap().next().is_none();
        assert!(emptied(&base), "successful run removed its directory");

        // Panic half: same budget, with the aborting UDF downstream.
        let _guard = silence_panics();
        let err = execute_logical_with(&build(true), &inputs, &opts).unwrap_err();
        drop(_guard);
        assert!(matches!(err, ExecError::Panic { .. }), "{err}");
        assert!(emptied(&base), "panicked run removed its directory too");
        std::fs::remove_dir(&base).unwrap();
    }

    #[test]
    fn missing_input_is_an_error() {
        let plan = sum_plan();
        let inputs = Inputs::new();
        assert_eq!(
            execute_logical(&plan, &inputs).unwrap_err(),
            ExecError::MissingInput("s".into())
        );
    }

    #[test]
    fn cross_product_execution() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a"], 3));
        let r = p.source(SourceDef::new("r", &["b"], 2));
        let c = p.cross("x", join_udf(1, 1), CostHints::default(), l, r);
        let plan = p.finish(c).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert("l".into(), ds(&[&[1], &[2], &[3]]));
        inputs.insert("r".into(), ds(&[&[10], &[20]]));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert_eq!(out.len(), 6);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
        let (out2, _) = execute(&plan, &phys, &inputs, 2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn cogroup_execution_covers_both_domains() {
        // CoGroup UDF: emit one record with key-side count difference.
        let mut b = FuncBuilder::new("cg", UdfKind::CoGroup, vec![1, 1]);
        let nl = b.group_count(0);
        let nr = b.group_count(1);
        let d = b.bin(BinOp::Sub, nl, nr);
        let or = b.new_rec();
        b.set(or, 2, d);
        b.emit(or);
        b.ret();
        let udf = b.finish().unwrap();
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k"], 3));
        let r = p.source(SourceDef::new("r", &["k2"], 3));
        let cg = p.cogroup("cg", &[0], &[0], udf, CostHints::default(), l, r);
        let plan = p.finish(cg).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert("l".into(), ds(&[&[1], &[1], &[2]]));
        inputs.insert("r".into(), ds(&[&[2], &[3]]));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        // Keys 1, 2, 3 → three groups.
        assert_eq!(out.len(), 3);
        let diffs: Vec<i64> = out
            .sorted()
            .iter()
            .map(|r| r.field(2).as_int().unwrap())
            .collect();
        // key1: 2-0; key2: 1-1; key3: 0-1.
        assert_eq!(diffs, vec![-1, 0, 2]);
    }

    fn apply(
        plan: &Plan,
        op_name: &str,
        strategy: LocalStrategy,
        inputs: Vec<Vec<Record>>,
    ) -> Vec<Record> {
        let stats = ExecStats::new();
        let gov = crate::spill::MemoryGovernor::unbounded();
        let ctx = OpCtx {
            interp: Interp::default(),
            stats: &stats,
            gov: &gov,
            batch_size: 64,
            op_id: 0,
        };
        let op = plan.ctx.ops.iter().find(|o| o.name == op_name).unwrap();
        apply_single(op, strategy, inputs, ctx).unwrap()
    }

    #[test]
    fn sort_strategies_agree_with_hash() {
        let plan = sum_plan();
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[&[5, 1], &[5, 2], &[4, 3], &[4, 4], &[1, 9]]),
        );
        let wide = widen(&plan, 0, inputs.get("s").unwrap());
        let hash = apply(&plan, "sum", LocalStrategy::HashGroup, vec![wide.clone()]);
        let sort = apply(&plan, "sum", LocalStrategy::SortGroup, vec![wide]);
        // Same bag — and same canonical group order, record for record.
        assert_eq!(hash, sort);
    }

    #[test]
    fn sort_merge_join_agrees_with_hash_join() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 10));
        let r = p.source(SourceDef::new("r", &["k2"], 5));
        let j = p.match_("j", &[0], &[0], join_udf(2, 1), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let left = widen(&plan, 0, &ds(&[&[1, 10], &[2, 20], &[2, 21], &[3, 30]]));
        let right = widen(&plan, 1, &ds(&[&[2], &[2], &[3]]));
        let h = apply(
            &plan,
            "j",
            LocalStrategy::HashJoinBuildLeft,
            vec![left.clone(), right.clone()],
        );
        let hr = apply(
            &plan,
            "j",
            LocalStrategy::HashJoinBuildRight,
            vec![left.clone(), right.clone()],
        );
        let smj = apply(&plan, "j", LocalStrategy::SortMergeJoin, vec![left, right]);
        let hd = DataSet::from_records(h);
        assert_eq!(hd, DataSet::from_records(hr));
        assert_eq!(hd, DataSet::from_records(smj));
        assert_eq!(hd.len(), 5); // k2: 2×2 pairs, k3: 1 pair.
    }
}
