//! The executor: logical (single-partition) and physical (parallel).

use crate::stats::ExecStats;
use bytes::BytesMut;
use std::collections::BTreeMap;
use std::collections::HashMap;
use strato_core::{LocalStrategy, PhysNode, PhysPlan, Ship};
use strato_dataflow::{BoundOp, NodeKind, Pact, Plan, PlanNode};
use strato_ir::interp::{Interp, InterpError, Invocation};
use strato_record::hash::fx_hash;
use strato_record::{wire, AttrId, DataSet, Record, Value};

/// Input data sets, keyed by source name. Records are given in the
/// source's *local* schema (arity = number of source fields); the engine
/// widens them into global layout.
pub type Inputs = HashMap<String, DataSet>;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No input data set was supplied for a source.
    MissingInput(String),
    /// A UDF failed to execute (step limit or binding bug).
    Udf(String, InterpError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingInput(s) => write!(f, "no input data for source {s}"),
            ExecError::Udf(op, e) => write!(f, "UDF of operator {op} failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Key of a record: the values of the key attributes, in order.
fn key_of(rec: &Record, key: &[AttrId]) -> Vec<Value> {
    key.iter().map(|a| rec.field(a.index()).clone()).collect()
}

fn has_null(key: &[Value]) -> bool {
    key.iter().any(Value::is_null)
}

/// Widens source records to global layout: field `i` of the source goes to
/// its global attribute position.
fn widen(ds: &DataSet, attrs: &[AttrId], width: usize) -> Vec<Record> {
    ds.iter()
        .map(|r| {
            let mut out = Record::nulls(width);
            for (i, &a) in attrs.iter().enumerate() {
                out.set_field(a.index(), r.field(i).clone());
            }
            out
        })
        .collect()
}

/// Groups records by key. Both the group order (`BTreeMap`) and the record
/// order *within* each group (sorted) are canonical: key-at-a-time UDFs see
/// a deterministic list regardless of partitioning or arrival order, so
/// their output is a function of the input **bag** — the property the
/// paper's equivalence results assume ("the execution path of a UDF is
/// uniquely determined by its input data").
fn group_by(records: Vec<Record>, key: &[AttrId]) -> BTreeMap<Vec<Value>, Vec<Record>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<Record>> = BTreeMap::new();
    for r in records {
        groups.entry(key_of(&r, key)).or_default().push(r);
    }
    for g in groups.values_mut() {
        g.sort_unstable();
    }
    groups
}

// ---------------------------------------------------------------------------
// Operator application (shared by logical and physical execution).
// ---------------------------------------------------------------------------

struct OpRunner<'a> {
    interp: Interp,
    stats: &'a ExecStats,
}

impl OpRunner<'_> {
    fn call(
        &self,
        op: &BoundOp,
        inv: Invocation<'_>,
        out: &mut Vec<Record>,
    ) -> Result<(), ExecError> {
        let st = self
            .interp
            .run(&op.udf, inv, &op.layout, out)
            .map_err(|e| ExecError::Udf(op.name.clone(), e))?;
        self.stats.add_call(st.steps, st.emits);
        Ok(())
    }

    fn run_map(&self, op: &BoundOp, input: Vec<Record>) -> Result<Vec<Record>, ExecError> {
        let mut out = Vec::new();
        for r in &input {
            self.call(op, Invocation::Record(r), &mut out)?;
        }
        Ok(out)
    }

    fn run_reduce(
        &self,
        op: &BoundOp,
        input: Vec<Record>,
        strategy: LocalStrategy,
    ) -> Result<Vec<Record>, ExecError> {
        let key = &op.key_attrs[0];
        let mut out = Vec::new();
        match strategy {
            LocalStrategy::SortGroup => {
                // Sort by (key, record) — full-record order keeps group
                // contents canonical (see `group_by`).
                let mut recs = input;
                recs.sort_by(|a, b| key_of(a, key).cmp(&key_of(b, key)).then_with(|| a.cmp(b)));
                let mut i = 0;
                while i < recs.len() {
                    let k = key_of(&recs[i], key);
                    let mut j = i + 1;
                    while j < recs.len() && key_of(&recs[j], key) == k {
                        j += 1;
                    }
                    self.call(op, Invocation::Group(&recs[i..j]), &mut out)?;
                    i = j;
                }
            }
            _ => {
                for (_, group) in group_by(input, key) {
                    self.call(op, Invocation::Group(&group), &mut out)?;
                }
            }
        }
        Ok(out)
    }

    fn run_match(
        &self,
        op: &BoundOp,
        left: Vec<Record>,
        right: Vec<Record>,
        strategy: LocalStrategy,
    ) -> Result<Vec<Record>, ExecError> {
        let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
        let mut out = Vec::new();
        match strategy {
            LocalStrategy::SortMergeJoin => {
                let mut l = left;
                let mut r = right;
                l.retain(|rec| !has_null(&key_of(rec, kl)));
                r.retain(|rec| !has_null(&key_of(rec, kr)));
                l.sort_by_key(|a| key_of(a, kl));
                r.sort_by_key(|a| key_of(a, kr));
                let (mut i, mut j) = (0, 0);
                while i < l.len() && j < r.len() {
                    let ki = key_of(&l[i], kl);
                    let kj = key_of(&r[j], kr);
                    match ki.cmp(&kj) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let mut i2 = i;
                            while i2 < l.len() && key_of(&l[i2], kl) == ki {
                                i2 += 1;
                            }
                            let mut j2 = j;
                            while j2 < r.len() && key_of(&r[j2], kr) == ki {
                                j2 += 1;
                            }
                            for a in &l[i..i2] {
                                for b in &r[j..j2] {
                                    self.call(op, Invocation::Pair(a, b), &mut out)?;
                                }
                            }
                            i = i2;
                            j = j2;
                        }
                    }
                }
            }
            LocalStrategy::HashJoinBuildRight => {
                let mut table: BTreeMap<Vec<Value>, Vec<Record>> = BTreeMap::new();
                for r in right {
                    let k = key_of(&r, kr);
                    if !has_null(&k) {
                        table.entry(k).or_default().push(r);
                    }
                }
                for l in &left {
                    let k = key_of(l, kl);
                    if has_null(&k) {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for r in matches {
                            self.call(op, Invocation::Pair(l, r), &mut out)?;
                        }
                    }
                }
            }
            // Build-left (also the default for logical execution).
            _ => {
                let mut table: BTreeMap<Vec<Value>, Vec<Record>> = BTreeMap::new();
                for l in left {
                    let k = key_of(&l, kl);
                    if !has_null(&k) {
                        table.entry(k).or_default().push(l);
                    }
                }
                for r in &right {
                    let k = key_of(r, kr);
                    if has_null(&k) {
                        continue;
                    }
                    if let Some(matches) = table.get(&k) {
                        for l in matches {
                            self.call(op, Invocation::Pair(l, r), &mut out)?;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn run_cross(
        &self,
        op: &BoundOp,
        left: Vec<Record>,
        right: Vec<Record>,
    ) -> Result<Vec<Record>, ExecError> {
        let mut out = Vec::new();
        for l in &left {
            for r in &right {
                self.call(op, Invocation::Pair(l, r), &mut out)?;
            }
        }
        Ok(out)
    }

    fn run_cogroup(
        &self,
        op: &BoundOp,
        left: Vec<Record>,
        right: Vec<Record>,
    ) -> Result<Vec<Record>, ExecError> {
        let (kl, kr) = (&op.key_attrs[0], &op.key_attrs[1]);
        let lgroups = group_by(left, kl);
        let rgroups = group_by(right, kr);
        let mut keys: Vec<&Vec<Value>> = lgroups.keys().chain(rgroups.keys()).collect();
        keys.sort();
        keys.dedup();
        let empty: Vec<Record> = Vec::new();
        let mut out = Vec::new();
        for k in keys {
            let lg = lgroups.get(k).unwrap_or(&empty);
            let rg = rgroups.get(k).unwrap_or(&empty);
            self.call(op, Invocation::CoGroup(lg, rg), &mut out)?;
        }
        Ok(out)
    }

    fn apply(
        &self,
        op: &BoundOp,
        strategy: LocalStrategy,
        mut inputs: Vec<Vec<Record>>,
    ) -> Result<Vec<Record>, ExecError> {
        match &op.pact {
            Pact::Map => self.run_map(op, inputs.swap_remove(0)),
            Pact::Reduce { .. } => self.run_reduce(op, inputs.swap_remove(0), strategy),
            Pact::Match { .. } => {
                let right = inputs.pop().expect("two inputs");
                let left = inputs.pop().expect("two inputs");
                self.run_match(op, left, right, strategy)
            }
            Pact::Cross => {
                let right = inputs.pop().expect("two inputs");
                let left = inputs.pop().expect("two inputs");
                self.run_cross(op, left, right)
            }
            Pact::CoGroup { .. } => {
                let right = inputs.pop().expect("two inputs");
                let left = inputs.pop().expect("two inputs");
                self.run_cogroup(op, left, right)
            }
        }
    }
}

/// Profiler shim: applies one operator over materialized single-partition
/// inputs with the default local strategy, charging the shared stats.
pub(crate) fn apply_for_profiler(
    op: &BoundOp,
    interp: &Interp,
    strategy: LocalStrategy,
    inputs: Vec<Vec<Record>>,
    stats: &ExecStats,
) -> Result<Vec<Record>, ExecError> {
    let runner = OpRunner {
        interp: *interp,
        stats,
    };
    runner.apply(op, strategy, inputs)
}

// ---------------------------------------------------------------------------
// Logical execution (single partition) — the equivalence oracle.
// ---------------------------------------------------------------------------

/// Executes a logical plan on one partition, with default local strategies
/// and no shipping. Deterministic; used as the semantics oracle by the
/// plan-equivalence test harness.
pub fn execute_logical(plan: &Plan, inputs: &Inputs) -> Result<(DataSet, ExecStats), ExecError> {
    let stats = ExecStats::new();
    let runner = OpRunner {
        interp: Interp::default(),
        stats: &stats,
    };
    let out = exec_node_logical(plan, &plan.root, inputs, &runner)?;
    Ok((DataSet::from_records(out), stats))
}

fn exec_node_logical(
    plan: &Plan,
    node: &PlanNode,
    inputs: &Inputs,
    runner: &OpRunner<'_>,
) -> Result<Vec<Record>, ExecError> {
    match node.kind {
        NodeKind::Source(s) => {
            let src = &plan.ctx.sources[s];
            let ds = inputs
                .get(&src.name)
                .ok_or_else(|| ExecError::MissingInput(src.name.clone()))?;
            Ok(widen(ds, &src.attrs, plan.ctx.width()))
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            let child_outs: Result<Vec<Vec<Record>>, ExecError> = node
                .children
                .iter()
                .map(|c| exec_node_logical(plan, c, inputs, runner))
                .collect();
            runner.apply(op, LocalStrategy::Pipe, child_outs?)
        }
    }
}

// ---------------------------------------------------------------------------
// Physical execution (dop partitions, one worker thread each).
// ---------------------------------------------------------------------------

/// Executes a physical plan with `dop` partitions. Local operator work runs
/// on one thread per partition (std scoped threads); ship strategies
/// move serialized records between partitions and account their bytes.
pub fn execute(
    plan: &Plan,
    phys: &PhysPlan,
    inputs: &Inputs,
    dop: usize,
) -> Result<(DataSet, ExecStats), ExecError> {
    let stats = ExecStats::new();
    let parts = exec_phys(plan, &phys.root, inputs, dop.max(1), &stats)?;
    let mut all = Vec::new();
    for p in parts {
        all.extend(p);
    }
    Ok((DataSet::from_records(all), stats))
}

/// Applies a ship strategy to partitioned data.
fn ship(
    parts: Vec<Vec<Record>>,
    strategy: &Ship,
    dop: usize,
    stats: &ExecStats,
) -> Vec<Vec<Record>> {
    match strategy {
        Ship::Forward => parts,
        Ship::Partition(key) => {
            let mut out: Vec<Vec<Record>> = (0..dop).map(|_| Vec::new()).collect();
            let mut buf = BytesMut::new();
            for p in parts {
                for r in p {
                    // Serialize across the "wire" and account the bytes.
                    buf.clear();
                    let n = wire::encode_record(&r, &mut buf) as u64;
                    stats.add_shipped(1, n);
                    let k = key_of(&r, key);
                    let h = fx_hash(&k) as usize;
                    let decoded =
                        wire::decode_record(&mut buf.split().freeze()).expect("roundtrip");
                    out[h % dop].push(decoded);
                }
            }
            out
        }
        Ship::Broadcast => {
            let mut all = Vec::new();
            let mut bytes = 0u64;
            for p in parts {
                for r in p {
                    bytes += r.encoded_len() as u64;
                    all.push(r);
                }
            }
            stats.add_shipped(all.len() as u64 * dop as u64, bytes * dop as u64);
            (0..dop).map(|_| all.clone()).collect()
        }
    }
}

fn exec_phys(
    plan: &Plan,
    node: &PhysNode,
    inputs: &Inputs,
    dop: usize,
    stats: &ExecStats,
) -> Result<Vec<Vec<Record>>, ExecError> {
    match node.logical.kind {
        NodeKind::Source(s) => {
            let src = &plan.ctx.sources[s];
            let ds = inputs
                .get(&src.name)
                .ok_or_else(|| ExecError::MissingInput(src.name.clone()))?;
            let wide = widen(ds, &src.attrs, plan.ctx.width());
            // Round-robin initial placement, as a scan over splits would.
            let mut parts: Vec<Vec<Record>> = (0..dop).map(|_| Vec::new()).collect();
            for (i, r) in wide.into_iter().enumerate() {
                parts[i % dop].push(r);
            }
            Ok(parts)
        }
        NodeKind::Op(o) => {
            let op = &plan.ctx.ops[o];
            // Execute children, then ship.
            let mut shipped: Vec<Vec<Vec<Record>>> = Vec::new();
            for (i, c) in node.children.iter().enumerate() {
                let parts = exec_phys(plan, c, inputs, dop, stats)?;
                shipped.push(ship(parts, &node.ships[i], dop, stats));
            }
            // Local work: one thread per partition.
            let mut results: Vec<Result<Vec<Record>, ExecError>> =
                (0..dop).map(|_| Ok(Vec::new())).collect();
            // Pull each partition's inputs out (consume `shipped`).
            let mut per_part: Vec<Vec<Vec<Record>>> = (0..dop).map(|_| Vec::new()).collect();
            for input_parts in shipped {
                for (pi, recs) in input_parts.into_iter().enumerate() {
                    per_part[pi].push(recs);
                }
            }
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (pi, part_inputs) in per_part.into_iter().enumerate() {
                    let local = node.local;
                    handles.push((
                        pi,
                        scope.spawn(move || {
                            let runner = OpRunner {
                                interp: Interp::default(),
                                stats,
                            };
                            runner.apply(op, local, part_inputs)
                        }),
                    ));
                }
                for (pi, h) in handles {
                    results[pi] = h.join().expect("worker panicked");
                }
            });
            results.into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_core::{cost::CostWeights, physical::best_physical, PropTable};
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};

    fn filter_map(w: usize, field: usize) -> Function {
        let mut b = FuncBuilder::new("filter", UdfKind::Map, vec![w]);
        let v = b.get_input(0, field);
        let z = b.konst(0i64);
        let c = b.bin(BinOp::Lt, v, z);
        let end = b.new_label();
        b.branch(c, end);
        let or = b.copy_input(0);
        b.emit(or);
        b.place(end);
        b.ret();
        b.finish().unwrap()
    }

    fn sum_reduce(w: usize) -> Function {
        // Copy first record of the group, append sum of field 1.
        let mut b = FuncBuilder::new("sum", UdfKind::Group, vec![w]);
        let sum = b.konst(0i64);
        let it = b.iter_open(0);
        let done = b.new_label();
        let head = b.new_label();
        b.place(head);
        let r = b.iter_next(it, done);
        let v = b.get(r, 1);
        b.bin_into(sum, BinOp::Add, sum, v);
        b.jump(head);
        b.place(done);
        let it2 = b.iter_open(0);
        let nil = b.new_label();
        let first = b.iter_next(it2, nil);
        let or = b.copy(first);
        b.set(or, w, sum);
        b.emit(or);
        b.place(nil);
        b.ret();
        b.finish().unwrap()
    }

    fn join_udf(l: usize, r: usize) -> Function {
        let mut b = FuncBuilder::new("join", UdfKind::Pair, vec![l, r]);
        let or = b.concat_inputs();
        b.emit(or);
        b.ret();
        b.finish().unwrap()
    }

    fn ds(rows: &[&[i64]]) -> DataSet {
        rows.iter()
            .map(|r| Record::from_values(r.iter().map(|&v| Value::Int(v))))
            .collect()
    }

    fn sum_plan() -> Plan {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], 6));
        let m = p.map("f", filter_map(2, 1), CostHints::default(), s);
        let r = p.reduce("sum", &[0], sum_reduce(2), CostHints::default(), m);
        p.finish(r).unwrap().bind().unwrap()
    }

    #[test]
    fn logical_execution_end_to_end() {
        let plan = sum_plan();
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[&[1, 10], &[1, 20], &[2, 5], &[2, -7], &[3, -1]]),
        );
        let (out, stats) = execute_logical(&plan, &inputs).unwrap();
        // Filter drops negatives; groups: k=1 sum 30, k=2 sum 5; k=3 gone.
        assert_eq!(out.len(), 2);
        let sums: Vec<(i64, i64)> = out
            .sorted()
            .iter()
            .map(|r| (r.field(0).as_int().unwrap(), r.field(2).as_int().unwrap()))
            .collect();
        assert_eq!(sums, vec![(1, 30), (2, 5)]);
        let (calls, ..) = stats.snapshot();
        // 5 map calls + 2 reduce groups.
        assert_eq!(calls, 7);
    }

    #[test]
    fn physical_execution_matches_logical() {
        let plan = sum_plan();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 4);
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[
                &[1, 10],
                &[1, 20],
                &[2, 5],
                &[2, -7],
                &[3, -1],
                &[7, 2],
                &[7, 3],
                &[9, 4],
            ]),
        );
        let (logical, _) = execute_logical(&plan, &inputs).unwrap();
        let (physical, stats) = execute(&plan, &phys, &inputs, 4).unwrap();
        assert_eq!(logical, physical, "physical must agree with logical");
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert!(shipped > 0, "reduce must repartition");
        assert!(bytes > 0);
    }

    #[test]
    fn match_join_logical_and_physical_agree() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 10));
        let r = p.source(SourceDef::new("r", &["k2", "w"], 4).with_unique_key(&[0]));
        let j = p.match_("j", &[0], &[0], join_udf(2, 2), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert(
            "l".into(),
            ds(&[&[1, 100], &[2, 200], &[2, 201], &[5, 500]]),
        );
        inputs.insert("r".into(), ds(&[&[1, -1], &[2, -2], &[3, -3]]));
        let (logical, _) = execute_logical(&plan, &inputs).unwrap();
        // k=1: 1 pair; k=2: 2 pairs; k=5 no match → 3 records.
        assert_eq!(logical.len(), 3);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 3);
        let (physical, _) = execute(&plan, &phys, &inputs, 3).unwrap();
        assert_eq!(logical, physical);
    }

    #[test]
    fn null_join_keys_match_nothing() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k"], 2));
        let r = p.source(SourceDef::new("r", &["k2"], 2));
        let j = p.match_("j", &[0], &[0], join_udf(1, 1), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        let mut left = DataSet::new();
        left.push(Record::from_values([Value::Null]));
        left.push(Record::from_values([Value::Int(1)]));
        inputs.insert("l".into(), left);
        let mut right = DataSet::new();
        right.push(Record::from_values([Value::Null]));
        right.push(Record::from_values([Value::Int(1)]));
        inputs.insert("r".into(), right);
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert_eq!(out.len(), 1, "only the non-null key matches");
    }

    #[test]
    fn missing_input_is_an_error() {
        let plan = sum_plan();
        let inputs = Inputs::new();
        assert_eq!(
            execute_logical(&plan, &inputs).unwrap_err(),
            ExecError::MissingInput("s".into())
        );
    }

    #[test]
    fn cross_product_execution() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["a"], 3));
        let r = p.source(SourceDef::new("r", &["b"], 2));
        let c = p.cross("x", join_udf(1, 1), CostHints::default(), l, r);
        let plan = p.finish(c).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert("l".into(), ds(&[&[1], &[2], &[3]]));
        inputs.insert("r".into(), ds(&[&[10], &[20]]));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert_eq!(out.len(), 6);
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 2);
        let (out2, _) = execute(&plan, &phys, &inputs, 2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn cogroup_execution_covers_both_domains() {
        // CoGroup UDF: emit one record with key-side count difference.
        let mut b = FuncBuilder::new("cg", UdfKind::CoGroup, vec![1, 1]);
        let nl = b.group_count(0);
        let nr = b.group_count(1);
        let d = b.bin(BinOp::Sub, nl, nr);
        let or = b.new_rec();
        b.set(or, 2, d);
        b.emit(or);
        b.ret();
        let udf = b.finish().unwrap();
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k"], 3));
        let r = p.source(SourceDef::new("r", &["k2"], 3));
        let cg = p.cogroup("cg", &[0], &[0], udf, CostHints::default(), l, r);
        let plan = p.finish(cg).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert("l".into(), ds(&[&[1], &[1], &[2]]));
        inputs.insert("r".into(), ds(&[&[2], &[3]]));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        // Keys 1, 2, 3 → three groups.
        assert_eq!(out.len(), 3);
        let diffs: Vec<i64> = out
            .sorted()
            .iter()
            .map(|r| r.field(2).as_int().unwrap())
            .collect();
        // key1: 2-0; key2: 1-1; key3: 0-1.
        assert_eq!(diffs, vec![-1, 0, 2]);
    }

    #[test]
    fn sort_strategies_agree_with_hash() {
        let plan = sum_plan();
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            ds(&[&[5, 1], &[5, 2], &[4, 3], &[4, 4], &[1, 9]]),
        );
        let stats = ExecStats::new();
        let runner = OpRunner {
            interp: Interp::default(),
            stats: &stats,
        };
        let wide = widen(
            inputs.get("s").unwrap(),
            &plan.ctx.sources[0].attrs,
            plan.ctx.width(),
        );
        let op = plan.ctx.ops.iter().find(|o| o.name == "sum").unwrap();
        let hash = runner
            .run_reduce(op, wide.clone(), LocalStrategy::HashGroup)
            .unwrap();
        let sort = runner
            .run_reduce(op, wide, LocalStrategy::SortGroup)
            .unwrap();
        assert_eq!(DataSet::from_records(hash), DataSet::from_records(sort));
    }

    #[test]
    fn sort_merge_join_agrees_with_hash_join() {
        let mut p = ProgramBuilder::new();
        let l = p.source(SourceDef::new("l", &["k", "v"], 10));
        let r = p.source(SourceDef::new("r", &["k2"], 5));
        let j = p.match_("j", &[0], &[0], join_udf(2, 1), CostHints::default(), l, r);
        let plan = p.finish(j).unwrap().bind().unwrap();
        let op = &plan.ctx.ops[0];
        let stats = ExecStats::new();
        let runner = OpRunner {
            interp: Interp::default(),
            stats: &stats,
        };
        let left = widen(
            &ds(&[&[1, 10], &[2, 20], &[2, 21], &[3, 30]]),
            &plan.ctx.sources[0].attrs,
            plan.ctx.width(),
        );
        let right = widen(
            &ds(&[&[2], &[2], &[3]]),
            &plan.ctx.sources[1].attrs,
            plan.ctx.width(),
        );
        let h = runner
            .run_match(
                op,
                left.clone(),
                right.clone(),
                LocalStrategy::HashJoinBuildLeft,
            )
            .unwrap();
        let hr = runner
            .run_match(
                op,
                left.clone(),
                right.clone(),
                LocalStrategy::HashJoinBuildRight,
            )
            .unwrap();
        let smj = runner
            .run_match(op, left, right, LocalStrategy::SortMergeJoin)
            .unwrap();
        let hd = DataSet::from_records(h);
        assert_eq!(hd, DataSet::from_records(hr));
        assert_eq!(hd, DataSet::from_records(smj));
        assert_eq!(hd.len(), 5); // k2: 2×2 pairs, k3: 1 pair.
    }
}
