//! The shared engine runtime: one worker pool and one memory budget for
//! all concurrent executions of a process.
//!
//! Without a runtime, every call to [`crate::execute_with`] spins up its
//! own worker pool and owns a private memory budget — N concurrent
//! queries oversubscribe the machine N-fold. [`EngineRuntime`] inverts
//! that: the pool is created **once**, queries *register* with it, and
//! the same fixed set of workers drives every in-flight execution.
//!
//! ## Fair scheduling
//!
//! Each registered query exposes its ready-task count through the
//! `QueryTasks` trait (crate-internal). Workers pick **round-robin across
//! queries**, one
//! cooperative task step per pick: a heavy query with hundreds of ready
//! tasks gets exactly one step before the cursor moves on to the next
//! query with work, so it can never starve a light neighbor. Within a
//! query, the task order is the execution's own scheduler queue —
//! identical to the standalone path, which is why results stay
//! byte-identical (the single-query path is literally the shared path
//! with one slot).
//!
//! ## Hierarchical memory
//!
//! The runtime owns a [`GlobalMemory`] pool
//! ([`RuntimeOptions::mem_budget`]). Each submitted query carves a
//! [`MemoryGrant`](crate::spill::MemoryGrant) out of the unpromised
//! remainder — capped by its own
//! `ExecOptions::mem_budget` — and its
//! [`MemoryGovernor`] enforces *that*
//! grant. The sum of grants never exceeds the pool, and pressure in one
//! query spills its own state, never a neighbor's.
//!
//! ```
//! use strato_exec::{EngineRuntime, RuntimeOptions};
//!
//! let rt = EngineRuntime::new(RuntimeOptions {
//!     workers: Some(2),
//!     mem_budget: Some(64 << 20), // 64 MiB shared by every query
//!     ..RuntimeOptions::default()
//! });
//! assert_eq!(rt.snapshot().workers, 2);
//! assert_eq!(rt.memory().budget(), Some(64 << 20));
//! // rt.execute_with(...) runs queries on the shared pool; see the
//! // equivalence suite for concurrent submissions.
//! ```

use crate::engine::{ExecError, Inputs};
use crate::pipeline::{self, ExecOptions};
use crate::spill::{GlobalMemory, MemoryGovernor};
use crate::stats::ExecStats;
use crate::trace::{HistoSnapshot, LatencyHisto};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use strato_core::PhysPlan;
use strato_dataflow::Plan;
use strato_record::DataSet;

/// Configuration of a shared [`EngineRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Worker threads in the shared pool. `None` picks the machine's
    /// available parallelism. Per-query `ExecOptions::workers` is ignored
    /// on a runtime — the pool's size governs everything it runs.
    pub workers: Option<usize>,
    /// The machine-wide memory budget all queries share
    /// ([`GlobalMemory`]). Per-query `ExecOptions::mem_budget` becomes a
    /// *cap* on the slice a query may carve from this pool. `None` =
    /// unbounded pool (each query's own cap applies unchanged). Defaults
    /// to [`strato_core::cost::DEFAULT_GLOBAL_MEM_BUDGET_BYTES`].
    pub mem_budget: Option<u64>,
    /// Parent directory for every query's scoped spill directory (`None`
    /// = the OS temp dir). Per-query `ExecOptions::spill_dir` overrides.
    pub spill_dir: Option<PathBuf>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            workers: None,
            mem_budget: Some(strato_core::cost::DEFAULT_GLOBAL_MEM_BUDGET_BYTES),
            spill_dir: None,
        }
    }
}

/// Point-in-time view of a runtime's pool and memory gauges (the server's
/// `/metrics` endpoint renders this).
#[derive(Debug, Clone, Default)]
pub struct RuntimeSnapshot {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Workers currently executing a task step.
    pub busy_workers: usize,
    /// Queries currently registered with the pool.
    pub active_queries: usize,
    /// Ready (runnable) task steps across all registered queries.
    pub queued_tasks: usize,
    /// Task steps executed since the runtime started.
    pub tasks_executed: u64,
    /// Queries ever submitted.
    pub queries_started: u64,
    /// Queries that finished (successfully or not).
    pub queries_finished: u64,
    /// The pool budget (`None` = unbounded).
    pub mem_budget: Option<u64>,
    /// Bytes currently promised to in-flight queries' grants.
    pub mem_granted: u64,
    /// Bytes currently buffered across all queries.
    pub mem_resident: u64,
    /// High-water mark of `mem_resident`.
    pub mem_peak_resident: u64,
    /// `(query id, ready tasks)` per registered query.
    pub per_query_queued: Vec<(u64, usize)>,
    /// Ids of recently finished queries, oldest first (bounded window of
    /// [`RECENT_QUERIES`] — the metrics renderer uses it to terminate
    /// per-query series without unbounded cardinality).
    pub recent_queries: Vec<u64>,
    /// Log-bucketed histogram of memory-grant carve waits (time spent
    /// acquiring a [`MemoryGrant`](crate::spill::MemoryGrant) from the
    /// shared pool, lock contention included).
    pub grant_wait: HistoSnapshot,
}

/// Bound of the [`RuntimeSnapshot::recent_queries`] window.
pub const RECENT_QUERIES: usize = 8;

/// What the pool needs from a registered execution: how much runnable
/// work it has, a way to run one cooperative step, and a way for the
/// submitter to block until the query drains.
///
/// Implemented by `pipeline::ExecState`; object-safe so the pool can hold
/// queries of erased lifetime.
pub(crate) trait QueryTasks: Sync {
    /// Ready (runnable) task count — a racy hint; workers re-check under
    /// the query's own lock in [`QueryTasks::run_one`].
    fn ready_hint(&self) -> usize;
    /// Pops and runs one cooperative task step. Returns `false` when
    /// nothing was ready (stale hint) or the query is aborting.
    fn run_one(&self) -> bool;
    /// Blocks the submitter until every task finished or the query failed.
    fn wait_done(&self);
}

/// Drain latch of one registered query: counts workers inside
/// [`QueryTasks::run_one`] so deregistration can wait until no worker
/// still holds the (lifetime-erased) query reference.
#[derive(Debug, Default)]
struct SlotPin {
    /// Workers currently inside `run_one` for this query.
    active: AtomicUsize,
    /// Pure rendezvous for the drain wait; holds no data.
    drained: Mutex<()>,
    cv: Condvar,
}

/// One registered query in the pool's slot table.
struct SlotEntry {
    /// The execution, lifetime-erased. Sound: `run_query` removes the
    /// slot and drains `pin.active` to zero before its borrow ends.
    query: &'static (dyn QueryTasks + 'static),
    pin: Arc<SlotPin>,
    query_id: u64,
}

/// The pool's scheduling state: the slot table plus the fairness cursor.
struct RtSched {
    /// Registered queries; freed slots are reused.
    slots: Vec<Option<SlotEntry>>,
    /// Round-robin position: the slot *after* the last one picked.
    cursor: usize,
    shutdown: bool,
    /// Ids of recently deregistered queries, oldest first (bounded to
    /// [`RECENT_QUERIES`]).
    recent: VecDeque<u64>,
}

/// State shared between the pool's workers, submitters and observers.
pub(crate) struct RtShared {
    sched: Mutex<RtSched>,
    cv: Condvar,
    memory: Arc<GlobalMemory>,
    workers: usize,
    busy: AtomicUsize,
    tasks_run: AtomicU64,
    queries_started: AtomicU64,
    queries_finished: AtomicU64,
    /// Memory-grant carve wait times (see
    /// [`RuntimeSnapshot::grant_wait`]).
    grant_wait: LatencyHisto,
}

impl RtShared {
    /// Wakes sleeping workers after a query's ready count rose. Taking
    /// the scheduler mutex (even for an empty critical section) is what
    /// prevents a lost wakeup: a worker that scanned the hints and is
    /// about to sleep still holds the mutex, so the notification cannot
    /// slip between its scan and its wait.
    pub(crate) fn poke(&self) {
        let _guard = self.sched.lock().unwrap();
        self.cv.notify_all();
    }
}

/// A process-wide shared execution runtime: one worker pool, one memory
/// pool, any number of concurrent queries (see the module docs).
///
/// Dropping the runtime shuts the pool down (workers join). Queries must
/// not be in flight at that point — in practice the runtime is held in an
/// `Arc` that every submitter clones.
pub struct EngineRuntime {
    shared: Arc<RtShared>,
    spill_dir: Option<PathBuf>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EngineRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRuntime")
            .field("workers", &self.shared.workers)
            .field("mem_budget", &self.shared.memory.budget())
            .finish()
    }
}

impl EngineRuntime {
    /// Starts the shared pool: `opts.workers` threads (available
    /// parallelism when `None`, always at least 1) and a
    /// [`GlobalMemory`] pool of `opts.mem_budget` bytes.
    pub fn new(opts: RuntimeOptions) -> EngineRuntime {
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        let shared = Arc::new(RtShared {
            sched: Mutex::new(RtSched {
                slots: Vec::new(),
                cursor: 0,
                shutdown: false,
                recent: VecDeque::new(),
            }),
            cv: Condvar::new(),
            memory: GlobalMemory::new(opts.mem_budget),
            workers,
            busy: AtomicUsize::new(0),
            tasks_run: AtomicU64::new(0),
            queries_started: AtomicU64::new(0),
            queries_finished: AtomicU64::new(0),
            grant_wait: LatencyHisto::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("strato-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        EngineRuntime {
            shared,
            spill_dir: opts.spill_dir,
            handles,
        }
    }

    /// The runtime's shared memory pool.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.shared.memory
    }

    /// Point-in-time pool and memory gauges.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let (active, queued, per_query, recent) = {
            let sched = self.shared.sched.lock().unwrap();
            let mut per_query = Vec::new();
            let mut queued = 0usize;
            for s in sched.slots.iter().flatten() {
                let ready = s.query.ready_hint();
                queued += ready;
                per_query.push((s.query_id, ready));
            }
            let recent: Vec<u64> = sched.recent.iter().copied().collect();
            (per_query.len(), queued, per_query, recent)
        };
        RuntimeSnapshot {
            workers: self.shared.workers,
            busy_workers: self.shared.busy.load(Ordering::Relaxed),
            active_queries: active,
            queued_tasks: queued,
            tasks_executed: self.shared.tasks_run.load(Ordering::Relaxed),
            queries_started: self.shared.queries_started.load(Ordering::Relaxed),
            queries_finished: self.shared.queries_finished.load(Ordering::Relaxed),
            mem_budget: self.shared.memory.budget(),
            mem_granted: self.shared.memory.granted(),
            mem_resident: self.shared.memory.resident(),
            mem_peak_resident: self.shared.memory.peak_resident(),
            per_query_queued: per_query,
            recent_queries: recent,
            grant_wait: self.shared.grant_wait.snapshot(),
        }
    }

    /// Builds one execution's governor by carving its grant out of the
    /// shared pool (capped by the query's own `mem_budget`).
    pub(crate) fn governor_for(&self, opts: &ExecOptions) -> MemoryGovernor {
        let base = opts.spill_dir.clone().or_else(|| self.spill_dir.clone());
        let t0 = Instant::now();
        let grant = self.shared.memory.carve(opts.mem_budget);
        self.shared
            .grant_wait
            .observe_ns(t0.elapsed().as_nanos() as u64);
        if let Some(tr) = &opts.trace {
            tr.record(
                "mem-grant",
                "mem",
                tr.rel_ns(t0),
                vec![("granted_bytes", grant.bytes().unwrap_or(0))],
            );
        }
        MemoryGovernor::with_grant(grant, base)
    }

    /// Handle for the pipeline's wakeup path.
    pub(crate) fn shared_handle(&self) -> Arc<RtShared> {
        Arc::clone(&self.shared)
    }

    /// Registers `query` with the pool, blocks until it drains, then
    /// deregisters it. Errors surface through the query's own state; this
    /// only choreographs scheduling.
    pub(crate) fn run_query(&self, query: &(dyn QueryTasks + '_)) {
        let query_id = self.shared.queries_started.fetch_add(1, Ordering::Relaxed) + 1;
        let pin = Arc::new(SlotPin::default());
        // SAFETY: the erased reference is only reachable through the slot
        // table. Before this function returns (and with it the borrow of
        // `query` ends), the slot is removed under the scheduler lock — no
        // new picks — and `pin.active` is drained to zero — no worker is
        // still inside `run_one`. Observers (`snapshot`) read the
        // reference only while holding the lock that slot removal takes.
        let erased = unsafe {
            std::mem::transmute::<&(dyn QueryTasks + '_), &'static (dyn QueryTasks + 'static)>(
                query,
            )
        };
        {
            let mut sched = self.shared.sched.lock().unwrap();
            let entry = SlotEntry {
                query: erased,
                pin: Arc::clone(&pin),
                query_id,
            };
            match sched.slots.iter_mut().find(|s| s.is_none()) {
                Some(free) => *free = Some(entry),
                None => sched.slots.push(Some(entry)),
            }
            self.shared.cv.notify_all();
        }

        query.wait_done();

        // Deregister first (no new picks), then wait out workers already
        // inside `run_one`.
        {
            let mut sched = self.shared.sched.lock().unwrap();
            for s in sched.slots.iter_mut() {
                if s.as_ref().is_some_and(|e| e.query_id == query_id) {
                    *s = None;
                    break;
                }
            }
            // Remember the finished id in the bounded recently-completed
            // window (how the metrics renderer terminates per-query series
            // without leaking one series per query ever run).
            if sched.recent.len() >= RECENT_QUERIES {
                sched.recent.pop_front();
            }
            sched.recent.push_back(query_id);
        }
        let mut guard = pin.drained.lock().unwrap();
        while pin.active.load(Ordering::SeqCst) > 0 {
            guard = pin.cv.wait(guard).unwrap();
        }
        drop(guard);
        self.shared.queries_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// [`crate::execute`] on the shared pool.
    pub fn execute(
        &self,
        plan: &Plan,
        phys: &PhysPlan,
        inputs: &Inputs,
        dop: usize,
    ) -> Result<(DataSet, ExecStats), ExecError> {
        self.execute_with(plan, phys, inputs, dop, &ExecOptions::default())
    }

    /// [`crate::execute_with`] on the shared pool: same lowering, same
    /// scheduler, same results — only the workers and the memory budget
    /// are shared with every other in-flight query.
    pub fn execute_with(
        &self,
        plan: &Plan,
        phys: &PhysPlan,
        inputs: &Inputs,
        dop: usize,
        opts: &ExecOptions,
    ) -> Result<(DataSet, ExecStats), ExecError> {
        let compiled = pipeline::compile_physical(&phys.root, opts.combine);
        pipeline::run(plan, &compiled, inputs, dop, opts, Some(self))
    }

    /// [`crate::execute_logical`] on the shared pool.
    pub fn execute_logical(
        &self,
        plan: &Plan,
        inputs: &Inputs,
    ) -> Result<(DataSet, ExecStats), ExecError> {
        self.execute_logical_with(plan, inputs, &ExecOptions::default())
    }

    /// [`crate::execute_logical_with`] on the shared pool.
    pub fn execute_logical_with(
        &self,
        plan: &Plan,
        inputs: &Inputs,
        opts: &ExecOptions,
    ) -> Result<(DataSet, ExecStats), ExecError> {
        let compiled = pipeline::compile_logical(plan, &plan.root);
        pipeline::run(plan, &compiled, inputs, 1, opts, Some(self))
    }
}

impl Drop for EngineRuntime {
    fn drop(&mut self) {
        {
            let mut sched = self.shared.sched.lock().unwrap();
            sched.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker of the shared pool: round-robin across registered queries,
/// one cooperative task step per pick.
fn worker_loop(shared: &RtShared) {
    loop {
        let (query, pin) = {
            let mut sched = shared.sched.lock().unwrap();
            'pick: loop {
                if sched.shutdown {
                    return;
                }
                let n = sched.slots.len();
                for k in 0..n {
                    let i = (sched.cursor + k) % n;
                    if let Some(slot) = &sched.slots[i] {
                        if slot.query.ready_hint() > 0 {
                            // Pin before releasing the lock: deregistration
                            // waits for this count, so the erased reference
                            // stays valid through `run_one`.
                            slot.pin.active.fetch_add(1, Ordering::SeqCst);
                            let picked = (slot.query, Arc::clone(&slot.pin));
                            sched.cursor = (i + 1) % n;
                            break 'pick picked;
                        }
                    }
                }
                sched = shared.cv.wait(sched).unwrap();
            }
        };
        shared.busy.fetch_add(1, Ordering::Relaxed);
        let ran = query.run_one();
        shared.busy.fetch_sub(1, Ordering::Relaxed);
        if ran {
            shared.tasks_run.fetch_add(1, Ordering::Relaxed);
        }
        if pin.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last worker out: rendezvous through the mutex so a
            // deregistration that just checked the count cannot miss the
            // notification.
            let _guard = pin.drained.lock().unwrap();
            pin.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute_logical, execute_with};
    use strato_core::{cost::CostWeights, physical::best_physical, PropTable};
    use strato_dataflow::{CostHints, ProgramBuilder, PropertyMode, SourceDef};
    use strato_record::{Record, Value};

    fn sum_plan(rows: i64) -> (Plan, PhysPlan, Inputs) {
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["k", "v"], rows as u64));
        let r = p.reduce(
            "sum",
            &[0],
            crate::testutil::sum_inplace(2, 1),
            CostHints::default().with_distinct_keys(8),
            s,
        );
        let plan = p.finish(r).unwrap().bind().unwrap();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let phys = best_physical(&plan, &props, &CostWeights::default(), 4);
        let ds: DataSet = (0..rows)
            .map(|i| Record::from_values([Value::Int(i % 8), Value::Int(i)]))
            .collect();
        let mut inputs = Inputs::new();
        inputs.insert("s".into(), ds);
        (plan, phys, inputs)
    }

    #[test]
    fn runtime_execution_matches_standalone_and_reuses_the_pool() {
        let (plan, phys, inputs) = sum_plan(200);
        let (reference, ref_stats) =
            execute_with(&plan, &phys, &inputs, 4, &ExecOptions::default()).unwrap();

        let rt = EngineRuntime::new(RuntimeOptions {
            workers: Some(2),
            ..RuntimeOptions::default()
        });
        // Sequential reuse: the pool survives across queries.
        for _ in 0..3 {
            let (out, stats) = rt
                .execute_with(&plan, &phys, &inputs, 4, &ExecOptions::default())
                .unwrap();
            assert_eq!(out, reference, "shared pool must be byte-identical");
            assert_eq!(stats.snapshot(), ref_stats.snapshot());
        }
        let (logical, _) = rt.execute_logical(&plan, &inputs).unwrap();
        assert_eq!(logical, execute_logical(&plan, &inputs).unwrap().0);

        let snap = rt.snapshot();
        assert_eq!(snap.workers, 2);
        assert_eq!(snap.queries_started, 4);
        assert_eq!(snap.queries_finished, 4);
        assert_eq!(snap.active_queries, 0, "all slots freed");
        assert!(snap.tasks_executed > 0, "the pool really ran the tasks");
        assert_eq!(snap.mem_resident, 0, "all operator state released");
        assert_eq!(snap.mem_granted, 0, "all grants returned");
    }

    #[test]
    fn runtime_contains_worker_panics_and_stays_usable() {
        // A panicking UDF fails its own query; the pool workers survive
        // (the unwind is caught at the task boundary, inside `run_one`).
        let mut p = ProgramBuilder::new();
        let s = p.source(SourceDef::new("s", &["v"], 4));
        let boom = {
            use strato_ir::{FuncBuilder, UdfKind};
            let mut b = FuncBuilder::new("boom", UdfKind::Map, vec![1]);
            let v = b.get_input(0, 0);
            b.call(strato_ir::Intrinsic::AbortIf, vec![v]);
            let or = b.copy_input(0);
            b.emit(or);
            b.ret();
            b.finish().unwrap()
        };
        let m = p.map("boom", boom, CostHints::default(), s);
        let plan = p.finish(m).unwrap().bind().unwrap();
        let mut inputs = Inputs::new();
        inputs.insert(
            "s".into(),
            [0i64, 7, 0, 0]
                .iter()
                .map(|&v| Record::from_values([Value::Int(v)]))
                .collect::<DataSet>(),
        );

        let rt = EngineRuntime::new(RuntimeOptions {
            workers: Some(2),
            ..RuntimeOptions::default()
        });
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = rt.execute_logical(&plan, &inputs).unwrap_err();
        std::panic::set_hook(prev);
        assert!(matches!(err, ExecError::Panic { .. }), "{err}");

        // The pool is still alive: a healthy query runs fine after.
        let (plan2, phys2, inputs2) = sum_plan(50);
        let (out, _) = rt.execute(&plan2, &phys2, &inputs2, 2).unwrap();
        let (reference, _) = crate::engine::execute(&plan2, &phys2, &inputs2, 2).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn grants_are_carved_and_returned_per_query() {
        let (plan, phys, inputs) = sum_plan(100);
        let rt = EngineRuntime::new(RuntimeOptions {
            workers: Some(1),
            mem_budget: Some(1 << 20),
            ..RuntimeOptions::default()
        });
        let opts = ExecOptions {
            mem_budget: Some(4096),
            ..ExecOptions::default()
        };
        let (out, _) = rt.execute_with(&plan, &phys, &inputs, 2, &opts).unwrap();
        let (reference, _) = execute_with(&plan, &phys, &inputs, 2, &opts).unwrap();
        assert_eq!(out, reference);
        assert_eq!(rt.memory().granted(), 0, "grant returned after the run");
        assert_eq!(rt.memory().resident(), 0);
    }
}
