//! Execution statistics.
//!
//! Two granularities share one thread-safe structure:
//!
//! * **Global counters** — UDF calls, emitted/shipped records, bytes and
//!   interpreter steps across the whole execution. Always collected.
//! * **Per-operator counters** — the same call/emit numbers broken down by
//!   operator id, plus wall-clock nanoseconds attributed *per task* by the
//!   worker-pool scheduler (a task is one `stage × partition` unit of the
//!   compiled graph; its step time is charged to the stage's operator).
//!   Allocated by [`ExecStats::with_ops`]; the extra profiling detail
//!   (emitted bytes, observed distinct keys) only when the stats were
//!   created with [`ExecStats::for_profiling`].
//!
//! Workers update every counter concurrently with relaxed atomics; totals
//! are exact because each record/call is charged exactly once, by exactly
//! one task.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-operator counter slots. All relaxed atomics, charged by whichever
/// worker runs the operator's tasks.
#[derive(Debug, Default)]
struct OpSlot {
    calls: AtomicU64,
    emits: AtomicU64,
    /// Wall-clock nanoseconds of scheduler steps attributed to this
    /// operator's tasks (operator work + outbound routing; blocking time is
    /// excluded — steps never wait).
    nanos: AtomicU64,
    /// Total `encoded_len` of UDF-emitted records (profiling detail only).
    out_bytes: AtomicU64,
    /// Distinct key values observed on input 0 by keyed operators
    /// (profiling detail only).
    distinct_keys: AtomicU64,
    /// Records this operator wrote to sorted runs on disk.
    records_spilled: AtomicU64,
    /// On-disk bytes of those runs (frame headers included).
    spilled_bytes: AtomicU64,
    /// Sorted runs this operator wrote under memory pressure.
    spill_runs: AtomicU64,
    /// Records this operator's output shipped across partition boundaries.
    shipped_records: AtomicU64,
    /// Serialized bytes of those shipped records.
    shipped_bytes: AtomicU64,
}

/// Plain-integer snapshot of one operator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// UDF invocations of this operator.
    pub calls: u64,
    /// Records emitted by this operator's UDF.
    pub emits: u64,
    /// Task step nanoseconds attributed to this operator.
    pub nanos: u64,
    /// Total emitted bytes (0 unless profiling detail was enabled).
    pub out_bytes: u64,
    /// Distinct input-0 keys (0 unless profiling detail was enabled and the
    /// operator is keyed).
    pub distinct_keys: u64,
    /// Records this operator spilled to disk under memory pressure.
    pub records_spilled: u64,
    /// On-disk bytes of this operator's sorted runs.
    pub spilled_bytes: u64,
    /// Sorted runs this operator wrote under memory pressure.
    pub spill_runs: u64,
    /// Records of this operator's output shipped by a Partition/Broadcast
    /// router (same accounting rule as [`StatsSnapshot::records_shipped`]).
    pub shipped_records: u64,
    /// Serialized bytes of those shipped records.
    pub shipped_bytes: u64,
}

/// Plain-integer snapshot of every global counter of an execution — the
/// stable read surface monitoring systems consume (the `strato-server`
/// `/metrics` endpoint renders exactly these fields).
///
/// Obtained via [`ExecStats::totals`]; unlike the positional tuples of
/// [`ExecStats::snapshot`] / [`ExecStats::spill_snapshot`] /
/// [`ExecStats::preagg_snapshot`], every counter is a named field, so new
/// counters can be added without breaking callers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// UDF invocations across all operators.
    pub udf_calls: u64,
    /// Records emitted by UDFs.
    pub records_emitted: u64,
    /// Records moved by Partition/Broadcast ship strategies.
    pub records_shipped: u64,
    /// Serialized bytes moved by Partition/Broadcast ship strategies.
    pub bytes_shipped: u64,
    /// Records absorbed by streaming pre-aggregation tables.
    pub records_preagg_in: u64,
    /// Partial records those tables produced.
    pub records_preagg_out: u64,
    /// Records written to sorted runs on disk under memory pressure.
    pub records_spilled: u64,
    /// On-disk bytes of those first-generation sorted runs.
    pub spilled_bytes: u64,
    /// Sorted runs written under memory pressure (= pressure events).
    pub spill_runs: u64,
    /// IR interpreter steps executed.
    pub interp_steps: u64,
    /// Records scattered row-by-row out of columnar batches by the
    /// vectorized Partition router (a subset of `records_shipped`).
    pub rows_scattered: u64,
    /// Null cells observed while building columnar batches.
    pub null_cells: u64,
    /// Total cells observed while building columnar batches (`null_cells /
    /// total_cells` is the null-mask density of the scanned data).
    pub total_cells: u64,
}

/// Counters collected during one plan execution. Thread-safe; workers
/// update them concurrently.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// UDF invocations across all operators.
    pub udf_calls: AtomicU64,
    /// Records emitted by UDFs.
    pub records_emitted: AtomicU64,
    /// Records moved by Partition/Broadcast ship strategies.
    pub records_shipped: AtomicU64,
    /// Serialized bytes moved by Partition/Broadcast ship strategies.
    pub bytes_shipped: AtomicU64,
    /// Records absorbed by streaming pre-aggregation tables (pre-ship
    /// combiners and StreamAgg local strategies).
    pub records_preagg_in: AtomicU64,
    /// Partial records those tables produced (one per key per instance, plus
    /// any partials flushed early under memory pressure).
    pub records_preagg_out: AtomicU64,
    /// Records written to sorted runs on disk by memory-governed blocking
    /// operators (see `strato-exec`'s `spill` module). Counts **pressure
    /// sheds** (first-generation runs) only: a `spill_runs` increment is
    /// one memory-pressure event, so the multi-pass fan-in compaction a
    /// large merge may perform does not re-count the same records.
    pub records_spilled: AtomicU64,
    /// On-disk bytes of those first-generation sorted runs (frame headers
    /// included; compaction rewrites are not re-counted).
    pub spilled_bytes: AtomicU64,
    /// Number of sorted runs written under memory pressure (= pressure
    /// events, not total run files across merge generations).
    pub spill_runs: AtomicU64,
    /// IR interpreter steps executed.
    pub interp_steps: AtomicU64,
    /// Records scattered out of columnar batches by the vectorized
    /// Partition router. Always ≤ `records_shipped`; the difference is the
    /// row-at-a-time routed volume.
    pub rows_scattered: AtomicU64,
    /// Null cells observed while building columnar batches.
    pub null_cells: AtomicU64,
    /// Total cells observed while building columnar batches.
    pub total_cells: AtomicU64,
    /// Per-operator slots (empty unless created via [`ExecStats::with_ops`]
    /// or [`ExecStats::for_profiling`]).
    per_op: Vec<OpSlot>,
    /// Collect profiling detail (emitted bytes, distinct keys)?
    detail: bool,
}

impl ExecStats {
    /// Fresh zeroed stats, global counters only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh stats with per-operator slots for `n_ops` operators.
    pub fn with_ops(n_ops: usize) -> Self {
        ExecStats {
            per_op: (0..n_ops).map(|_| OpSlot::default()).collect(),
            ..ExecStats::default()
        }
    }

    /// [`ExecStats::with_ops`] plus profiling detail: operators additionally
    /// record emitted bytes and observed distinct keys (the runtime
    /// profiler's inputs). Slightly slows the UDF hot path; off everywhere
    /// else.
    pub fn for_profiling(n_ops: usize) -> Self {
        ExecStats {
            detail: true,
            ..ExecStats::with_ops(n_ops)
        }
    }

    /// Whether profiling detail should be collected.
    #[inline]
    pub(crate) fn detail(&self) -> bool {
        self.detail
    }

    pub(crate) fn add_call(&self, op: usize, steps: u64, emits: u64) {
        self.udf_calls.fetch_add(1, Ordering::Relaxed);
        self.interp_steps.fetch_add(steps, Ordering::Relaxed);
        self.records_emitted.fetch_add(emits, Ordering::Relaxed);
        if let Some(slot) = self.per_op.get(op) {
            slot.calls.fetch_add(1, Ordering::Relaxed);
            slot.emits.fetch_add(emits, Ordering::Relaxed);
        }
    }

    /// Charges task step time to an operator.
    pub(crate) fn add_op_nanos(&self, op: usize, nanos: u64) {
        if let Some(slot) = self.per_op.get(op) {
            slot.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Charges emitted bytes to an operator (profiling detail).
    pub(crate) fn add_op_out_bytes(&self, op: usize, bytes: u64) {
        if let Some(slot) = self.per_op.get(op) {
            slot.out_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records distinct input-0 keys observed by a keyed operator
    /// (profiling detail).
    pub(crate) fn add_op_distinct_keys(&self, op: usize, n: u64) {
        if let Some(slot) = self.per_op.get(op) {
            slot.distinct_keys.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Accounts shipped data. The accounting rule is "count each record
    /// copy that crosses a partition boundary":
    ///
    /// * `Forward` ships nothing and must not call this;
    /// * `Partition` charges every routed record once — hash routing is
    ///   data-dependent, and the cost model prices a repartition as the
    ///   full input volume;
    /// * `Broadcast` charges `dop - 1` copies per record: a partition does
    ///   not ship to itself.
    ///
    /// Bytes are the `encoded_len` approximation of the wire size (null
    /// fields cost nothing), matching the cost model's byte estimates.
    /// The totals are a sum over individual records, so they are identical
    /// whether shipping happens batch-by-batch (the streaming runtime) or
    /// over a whole materialized partition.
    pub(crate) fn add_shipped(&self, records: u64, bytes: u64) {
        self.records_shipped.fetch_add(records, Ordering::Relaxed);
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Attributes shipped data to the producing operator's slot (same
    /// accounting rule as [`ExecStats::add_shipped`], which still charges
    /// the global counters; this adds the per-op breakdown the
    /// `EXPLAIN ANALYZE` report prints).
    pub(crate) fn add_op_shipped(&self, op: usize, records: u64, bytes: u64) {
        if let Some(slot) = self.per_op.get(op) {
            slot.shipped_records.fetch_add(records, Ordering::Relaxed);
            slot.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Accounts records routed by the vectorized columnar scatter path of
    /// the Partition router. Called *in addition to* [`ExecStats::add_shipped`]
    /// for the same records; this counter only classifies how the routing
    /// was performed, it does not change ship accounting.
    pub(crate) fn add_scattered(&self, records: u64) {
        self.rows_scattered.fetch_add(records, Ordering::Relaxed);
    }

    /// Accounts the null-mask density of a freshly built columnar batch:
    /// `nulls` null cells out of `cells` total.
    pub(crate) fn add_batch_cells(&self, nulls: u64, cells: u64) {
        self.null_cells.fetch_add(nulls, Ordering::Relaxed);
        self.total_cells.fetch_add(cells, Ordering::Relaxed);
    }

    /// Accounts one streaming pre-aggregation instance: `records` absorbed
    /// into the table, `partials` partial records out. The reduction
    /// `records − partials` is exactly the record count the combiner kept
    /// off the wire (for pre-ship instances) or out of the reduce buffer
    /// (for StreamAgg local strategies).
    pub(crate) fn add_preagg(&self, records: u64, partials: u64) {
        self.records_preagg_in.fetch_add(records, Ordering::Relaxed);
        self.records_preagg_out
            .fetch_add(partials, Ordering::Relaxed);
    }

    /// Accounts one sorted run spilled to disk by an operator: `records`
    /// written, `bytes` on disk. Charged both globally and to the
    /// operator's slot (when slots exist).
    pub(crate) fn add_spill(&self, op: usize, records: u64, bytes: u64) {
        self.records_spilled.fetch_add(records, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_runs.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.per_op.get(op) {
            slot.records_spilled.fetch_add(records, Ordering::Relaxed);
            slot.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
            slot.spill_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spill totals as `(records spilled, bytes spilled, runs written)`.
    /// `(0, 0, 0)` when the execution stayed within its memory budget (or
    /// ran unbounded) — the shape mirrors [`ExecStats::preagg_snapshot`].
    pub fn spill_snapshot(&self) -> (u64, u64, u64) {
        (
            self.records_spilled.load(Ordering::Relaxed),
            self.spilled_bytes.load(Ordering::Relaxed),
            self.spill_runs.load(Ordering::Relaxed),
        )
    }

    /// Streaming pre-aggregation totals as `(records in, partials out)`.
    /// `(0, 0)` when no combiner or StreamAgg instance ran.
    pub fn preagg_snapshot(&self) -> (u64, u64) {
        (
            self.records_preagg_in.load(Ordering::Relaxed),
            self.records_preagg_out.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of **every** global counter as a named-field struct — the
    /// monitoring surface. See [`StatsSnapshot`].
    ///
    /// ```
    /// use strato_exec::ExecStats;
    /// let stats = ExecStats::new();
    /// let t = stats.totals();
    /// assert_eq!(t.udf_calls, 0);
    /// assert_eq!(t.records_shipped + t.records_spilled, 0);
    /// ```
    pub fn totals(&self) -> StatsSnapshot {
        StatsSnapshot {
            udf_calls: self.udf_calls.load(Ordering::Relaxed),
            records_emitted: self.records_emitted.load(Ordering::Relaxed),
            records_shipped: self.records_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            records_preagg_in: self.records_preagg_in.load(Ordering::Relaxed),
            records_preagg_out: self.records_preagg_out.load(Ordering::Relaxed),
            records_spilled: self.records_spilled.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_runs: self.spill_runs.load(Ordering::Relaxed),
            interp_steps: self.interp_steps.load(Ordering::Relaxed),
            rows_scattered: self.rows_scattered.load(Ordering::Relaxed),
            null_cells: self.null_cells.load(Ordering::Relaxed),
            total_cells: self.total_cells.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the counters as plain integers
    /// `(udf_calls, records_emitted, records_shipped, bytes_shipped,
    /// interp_steps)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.udf_calls.load(Ordering::Relaxed),
            self.records_emitted.load(Ordering::Relaxed),
            self.records_shipped.load(Ordering::Relaxed),
            self.bytes_shipped.load(Ordering::Relaxed),
            self.interp_steps.load(Ordering::Relaxed),
        )
    }

    /// Per-operator snapshots, indexed by operator id. Empty when the stats
    /// were created without per-op slots.
    pub fn op_snapshots(&self) -> Vec<OpSnapshot> {
        self.per_op
            .iter()
            .map(|s| OpSnapshot {
                calls: s.calls.load(Ordering::Relaxed),
                emits: s.emits.load(Ordering::Relaxed),
                nanos: s.nanos.load(Ordering::Relaxed),
                out_bytes: s.out_bytes.load(Ordering::Relaxed),
                distinct_keys: s.distinct_keys.load(Ordering::Relaxed),
                records_spilled: s.records_spilled.load(Ordering::Relaxed),
                spilled_bytes: s.spilled_bytes.load(Ordering::Relaxed),
                spill_runs: s.spill_runs.load(Ordering::Relaxed),
                shipped_records: s.shipped_records.load(Ordering::Relaxed),
                shipped_bytes: s.shipped_bytes.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (calls, emitted, shipped, bytes, steps) = self.snapshot();
        write!(
            f,
            "udf_calls={calls} emitted={emitted} shipped={shipped} net_bytes={bytes} steps={steps}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ExecStats::new();
        s.add_call(0, 100, 2);
        s.add_call(0, 50, 0);
        s.add_shipped(10, 640);
        let (calls, emitted, shipped, bytes, steps) = s.snapshot();
        assert_eq!(calls, 2);
        assert_eq!(emitted, 2);
        assert_eq!(shipped, 10);
        assert_eq!(bytes, 640);
        assert_eq!(steps, 150);
    }

    #[test]
    fn preagg_counters_accumulate_separately() {
        let s = ExecStats::new();
        assert_eq!(s.preagg_snapshot(), (0, 0));
        s.add_preagg(100, 7);
        s.add_preagg(50, 7);
        assert_eq!(s.preagg_snapshot(), (150, 14));
        // Pre-aggregation does not touch the global ship/call counters.
        assert_eq!(s.snapshot(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn spill_counters_accumulate_globally_and_per_op() {
        let s = ExecStats::with_ops(2);
        assert_eq!(s.spill_snapshot(), (0, 0, 0));
        s.add_spill(0, 100, 2_048);
        s.add_spill(0, 50, 1_024);
        s.add_spill(1, 10, 300);
        assert_eq!(s.spill_snapshot(), (160, 3_372, 3));
        let ops = s.op_snapshots();
        assert_eq!(
            (
                ops[0].records_spilled,
                ops[0].spilled_bytes,
                ops[0].spill_runs
            ),
            (150, 3_072, 2)
        );
        assert_eq!(
            (
                ops[1].records_spilled,
                ops[1].spilled_bytes,
                ops[1].spill_runs
            ),
            (10, 300, 1)
        );
        // Spilling does not touch the global ship/call counters.
        assert_eq!(s.snapshot(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn per_op_ship_attribution_is_separate_from_globals() {
        let s = ExecStats::with_ops(2);
        s.add_shipped(10, 640);
        s.add_op_shipped(1, 10, 640);
        let ops = s.op_snapshots();
        assert_eq!((ops[0].shipped_records, ops[0].shipped_bytes), (0, 0));
        assert_eq!((ops[1].shipped_records, ops[1].shipped_bytes), (10, 640));
        let t = s.totals();
        assert_eq!((t.records_shipped, t.bytes_shipped), (10, 640));
    }

    #[test]
    fn per_op_slots_track_by_operator() {
        let s = ExecStats::with_ops(2);
        s.add_call(0, 10, 1);
        s.add_call(1, 20, 3);
        s.add_call(1, 30, 0);
        s.add_op_nanos(1, 500);
        let ops = s.op_snapshots();
        assert_eq!(ops.len(), 2);
        assert_eq!((ops[0].calls, ops[0].emits), (1, 1));
        assert_eq!((ops[1].calls, ops[1].emits, ops[1].nanos), (2, 3, 500));
        // Globals see the union.
        assert_eq!(s.snapshot().0, 3);
    }

    #[test]
    fn per_op_is_safe_without_slots() {
        let s = ExecStats::new();
        // Out-of-range ops are ignored, not a panic.
        s.add_call(7, 1, 1);
        s.add_op_nanos(7, 1);
        s.add_op_out_bytes(7, 1);
        s.add_op_distinct_keys(7, 1);
        s.add_op_shipped(7, 1, 1);
        s.add_spill(7, 1, 1);
        assert!(s.op_snapshots().is_empty());
        assert_eq!(s.snapshot().0, 1);
        // Global spill totals still accumulate without slots.
        assert_eq!(s.spill_snapshot(), (1, 1, 1));
    }

    #[test]
    fn totals_mirrors_every_global_counter() {
        let s = ExecStats::new();
        s.add_call(0, 100, 2);
        s.add_shipped(10, 640);
        s.add_preagg(50, 7);
        s.add_spill(0, 20, 999);
        let t = s.totals();
        assert_eq!(t.udf_calls, 1);
        assert_eq!(t.records_emitted, 2);
        assert_eq!(t.records_shipped, 10);
        assert_eq!(t.bytes_shipped, 640);
        assert_eq!(t.records_preagg_in, 50);
        assert_eq!(t.records_preagg_out, 7);
        assert_eq!(t.records_spilled, 20);
        assert_eq!(t.spilled_bytes, 999);
        assert_eq!(t.spill_runs, 1);
        assert_eq!(t.interp_steps, 100);
        // The named snapshot agrees with the positional ones.
        assert_eq!(
            (
                t.udf_calls,
                t.records_emitted,
                t.records_shipped,
                t.bytes_shipped,
                t.interp_steps
            ),
            s.snapshot()
        );
        assert_eq!(
            (t.records_spilled, t.spilled_bytes, t.spill_runs),
            s.spill_snapshot()
        );
        assert_eq!(
            (t.records_preagg_in, t.records_preagg_out),
            s.preagg_snapshot()
        );
    }

    #[test]
    fn columnar_counters_accumulate() {
        let s = ExecStats::new();
        s.add_scattered(100);
        s.add_scattered(28);
        s.add_batch_cells(3, 40);
        s.add_batch_cells(0, 60);
        let t = s.totals();
        assert_eq!(t.rows_scattered, 128);
        assert_eq!(t.null_cells, 3);
        assert_eq!(t.total_cells, 100);
        // Scatter classification does not itself count as shipping.
        assert_eq!(t.records_shipped, 0);
    }

    #[test]
    fn profiling_detail_flag() {
        assert!(!ExecStats::new().detail());
        assert!(!ExecStats::with_ops(1).detail());
        assert!(ExecStats::for_profiling(1).detail());
    }

    #[test]
    fn display_renders() {
        let s = ExecStats::new();
        s.add_call(0, 1, 1);
        assert!(format!("{s}").contains("udf_calls=1"));
    }
}
