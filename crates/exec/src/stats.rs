//! Execution statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters collected during one plan execution. Thread-safe; workers
/// update them concurrently.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// UDF invocations across all operators.
    pub udf_calls: AtomicU64,
    /// Records emitted by UDFs.
    pub records_emitted: AtomicU64,
    /// Records moved by Partition/Broadcast ship strategies.
    pub records_shipped: AtomicU64,
    /// Serialized bytes moved by Partition/Broadcast ship strategies.
    pub bytes_shipped: AtomicU64,
    /// IR interpreter steps executed.
    pub interp_steps: AtomicU64,
}

impl ExecStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_call(&self, steps: u64, emits: u64) {
        self.udf_calls.fetch_add(1, Ordering::Relaxed);
        self.interp_steps.fetch_add(steps, Ordering::Relaxed);
        self.records_emitted.fetch_add(emits, Ordering::Relaxed);
    }

    /// Accounts shipped data. The accounting rule is "count each record
    /// copy that crosses a partition boundary":
    ///
    /// * `Forward` ships nothing and must not call this;
    /// * `Partition` charges every routed record once — hash routing is
    ///   data-dependent, and the cost model prices a repartition as the
    ///   full input volume;
    /// * `Broadcast` charges `dop - 1` copies per record: a partition does
    ///   not ship to itself.
    ///
    /// Bytes are the `encoded_len` approximation of the wire size (null
    /// fields cost nothing), matching the cost model's byte estimates.
    pub(crate) fn add_shipped(&self, records: u64, bytes: u64) {
        self.records_shipped.fetch_add(records, Ordering::Relaxed);
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot of the counters as plain integers
    /// `(udf_calls, records_emitted, records_shipped, bytes_shipped,
    /// interp_steps)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.udf_calls.load(Ordering::Relaxed),
            self.records_emitted.load(Ordering::Relaxed),
            self.records_shipped.load(Ordering::Relaxed),
            self.bytes_shipped.load(Ordering::Relaxed),
            self.interp_steps.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (calls, emitted, shipped, bytes, steps) = self.snapshot();
        write!(
            f,
            "udf_calls={calls} emitted={emitted} shipped={shipped} net_bytes={bytes} steps={steps}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ExecStats::new();
        s.add_call(100, 2);
        s.add_call(50, 0);
        s.add_shipped(10, 640);
        let (calls, emitted, shipped, bytes, steps) = s.snapshot();
        assert_eq!(calls, 2);
        assert_eq!(emitted, 2);
        assert_eq!(shipped, 10);
        assert_eq!(bytes, 640);
        assert_eq!(steps, 150);
    }

    #[test]
    fn display_renders() {
        let s = ExecStats::new();
        s.add_call(1, 1);
        assert!(format!("{s}").contains("udf_calls=1"));
    }
}
