//! Ship strategies: routing batches between partitions, one batch at a
//! time.
//!
//! Shipping is where the simulated engine accounts "network" traffic. In
//! the streaming runtime every producer task owns one [`Router`] for its
//! (single) consumer edge; as the task emits batches, the router charges
//! the shipping stats and appends `(channel, batch)` pairs to the task's
//! outbound queue — there is no whole-dataset ship step anymore, so ship
//! overlaps the local work of both producer and consumer stages.
//!
//! Byte accounting uses [`Record::encoded_len`] — the same approximation
//! the cost model optimizes against — instead of serializing every record;
//! the opt-in [`crate::ExecOptions::validate_wire`] mode additionally
//! round-trips each hash-partitioned record through the wire format and
//! asserts the decode reproduces the original, preserving the seed
//! engine's serialization check for tests and debugging.
//!
//! Accounting rule (see [`ExecStats::add_shipped`]):
//!
//! * [`Ship::Forward`] ships nothing.
//! * [`Ship::Partition`] counts every routed record once, including those
//!   hash-routed back to their own partition — hash routing is
//!   data-dependent, and the cost model prices a repartition as the full
//!   input volume (cf. `ship_cost`'s "approximate with 1").
//! * [`Ship::Broadcast`] counts `dop - 1` copies of every record: a
//!   partition does not ship to itself. The batches themselves are shared
//!   via [`Arc`], so broadcast performs **zero** record copies no matter
//!   the fan-out.
//!
//! All three totals are per-record sums, so routing batch-by-batch charges
//! exactly what the old stage-synchronous driver charged for the whole
//! partition — the equivalence suite pins this byte-for-byte.

use crate::engine::ExecError;
use crate::stats::ExecStats;
use bytes::BytesMut;
use std::collections::VecDeque;
use std::sync::Arc;
use strato_record::{wire, AttrId, BatchBuilder, Record, RecordBatch};

/// A producer task's outbound queue: batches routed to scheduler channels
/// but not yet accepted (bounded channels apply backpressure).
pub(crate) type Outbound = VecDeque<(usize, Arc<RecordBatch>)>;

/// Per-task incremental ship router. Channels of one consumer edge are
/// contiguous: partition `p` of the consumer reads channel `first + p`.
pub(crate) enum Router<'a> {
    /// Stay put: partition `p` feeds the consumer's partition `p` directly.
    Forward {
        /// The single channel this producer feeds.
        chan: usize,
    },
    /// Hash-repartition records by key; batches rebuilt per destination.
    ///
    /// Row-major batches are routed record-at-a-time into per-destination
    /// record vectors. Columnar batches take the vectorized path: the
    /// full key-hash column and per-row byte sizes are computed with the
    /// columnar kernels, then rows are scattered into per-destination
    /// [`BatchBuilder`]s without ever materializing a [`Record`]. Both
    /// paths charge identical per-record ship accounting and flush at
    /// the same `batch_size` boundaries; when the two kinds interleave,
    /// the pending builder of the other kind is flushed first so each
    /// destination still sees rows in arrival order.
    Partition {
        first: usize,
        dop: usize,
        /// Producing operator id for per-op ship attribution (`None` for
        /// scan-fed edges without an operator slot).
        op: Option<usize>,
        key: &'a [AttrId],
        /// Key attribute positions (for the columnar kernels).
        key_idx: Vec<usize>,
        /// Per-destination records accumulated up to `batch_size`.
        builders: Vec<Vec<Record>>,
        /// Per-destination columnar builders (lazy: allocated on the
        /// first columnar batch).
        col_builders: Vec<Option<BatchBuilder>>,
        batch_size: usize,
        validate: bool,
        buf: BytesMut,
        /// Scratch: the per-row hash column of the batch being routed.
        hashes: Vec<u64>,
        /// Scratch: per-row `encoded_len` of the batch being routed.
        row_bytes: Vec<usize>,
        /// Scratch: per-row destination partition of the batch being
        /// routed.
        dests: Vec<u32>,
    },
    /// Every consumer partition gets the same `Arc`'d batch.
    Broadcast {
        first: usize,
        dop: usize,
        /// Producing operator id for per-op ship attribution.
        op: Option<usize>,
    },
}

impl<'a> Router<'a> {
    pub(crate) fn forward(chan: usize) -> Self {
        Router::Forward { chan }
    }

    pub(crate) fn partition(
        first: usize,
        dop: usize,
        op: Option<usize>,
        key: &'a [AttrId],
        batch_size: usize,
        validate: bool,
    ) -> Self {
        Router::Partition {
            first,
            dop,
            op,
            key,
            key_idx: key.iter().map(|a| a.index()).collect(),
            builders: (0..dop).map(|_| Vec::new()).collect(),
            col_builders: (0..dop).map(|_| None).collect(),
            batch_size: batch_size.max(1),
            validate,
            buf: BytesMut::new(),
            hashes: Vec::new(),
            row_bytes: Vec::new(),
            dests: Vec::new(),
        }
    }

    pub(crate) fn broadcast(first: usize, dop: usize, op: Option<usize>) -> Self {
        Router::Broadcast { first, dop, op }
    }

    /// Whether this router actually moves data across partitions (the
    /// tracing hook only records ship spans for non-Forward routers).
    pub(crate) fn ships(&self) -> bool {
        !matches!(self, Router::Forward { .. })
    }

    /// Routes one produced batch, charging shipping stats and appending the
    /// resulting `(channel, batch)` pairs to `out`.
    pub(crate) fn route(
        &mut self,
        batch: Arc<RecordBatch>,
        out: &mut Outbound,
        stats: &ExecStats,
    ) -> Result<(), ExecError> {
        match self {
            Router::Forward { chan } => {
                out.push_back((*chan, batch));
            }
            Router::Partition {
                first,
                dop,
                op,
                key,
                key_idx,
                builders,
                col_builders,
                batch_size,
                validate,
                buf,
                hashes,
                row_bytes,
                dests,
            } => {
                if batch.columns().is_some() {
                    // Vectorized scatter: hash the key columns, size
                    // every row and compute the destination column in
                    // tight column-wise loops, then scatter the whole
                    // batch into per-destination columnar builders —
                    // moving payloads when this router holds the only
                    // reference (the common case).
                    let (n, width, bytes) = {
                        let cb = batch.columns().expect("checked above");
                        let n = cb.len();
                        cb.key_hash_into(key_idx, hashes);
                        cb.row_encoded_lens(row_bytes);
                        let bytes: u64 = row_bytes.iter().map(|&b| b as u64).sum();
                        if *validate {
                            for row in 0..n {
                                validate_roundtrip(&cb.row_record(row), buf)?;
                            }
                        }
                        (n, cb.width(), bytes)
                    };
                    dests.clear();
                    dests.extend(hashes.iter().map(|&h| (h as usize % *dop) as u32));
                    for p in 0..*dop {
                        // Keep per-destination arrival order: flush row
                        // records already pending for a destination this
                        // batch touches.
                        let touched = dests.contains(&(p as u32));
                        if touched && !builders[p].is_empty() {
                            let rest = std::mem::take(&mut builders[p]);
                            out.push_back((*first + p, Arc::new(RecordBatch::from_records(rest))));
                        }
                        // A width change mid-stream (not expected from a
                        // single producer) must not drop pending rows.
                        if let Some(b) = &mut col_builders[p] {
                            if b.width() != width && !b.is_empty() {
                                let pending = RecordBatch::from_columns(b.take());
                                out.push_back((*first + p, Arc::new(pending)));
                            }
                        }
                        match &mut col_builders[p] {
                            Some(b) if b.width() == width => {}
                            slot => {
                                let _ = slot.insert(BatchBuilder::new(width));
                            }
                        }
                    }
                    {
                        let mut refs: Vec<&mut BatchBuilder> = col_builders
                            .iter_mut()
                            .map(|o| o.as_mut().expect("ensured above"))
                            .collect();
                        match Arc::try_unwrap(batch) {
                            // Sole owner: scatter owned columns (string
                            // payloads move, no refcount traffic).
                            Ok(rb) => {
                                let owned = rb.into_columns().expect("checked columnar");
                                owned.scatter_into(dests, &mut refs);
                            }
                            // Shared (e.g. a re-routed broadcast batch):
                            // gather row-by-row from the borrowed columns.
                            Err(shared) => {
                                let cb = shared.columns().expect("checked columnar");
                                for (row, &d) in dests.iter().enumerate() {
                                    refs[d as usize].append_row(cb, row);
                                }
                            }
                        }
                    }
                    for (p, slot) in col_builders.iter_mut().enumerate().take(*dop) {
                        if let Some(bld) = slot {
                            if bld.len() >= *batch_size {
                                let full = RecordBatch::from_columns(bld.take());
                                out.push_back((*first + p, Arc::new(full)));
                            }
                        }
                    }
                    stats.add_shipped(n as u64, bytes);
                    stats.add_scattered(n as u64);
                    if let Some(op) = op {
                        stats.add_op_shipped(*op, n as u64, bytes);
                    }
                } else {
                    let mut records = 0u64;
                    let mut bytes = 0u64;
                    for r in crate::operators::take_records(batch) {
                        records += 1;
                        bytes += r.encoded_len() as u64;
                        if *validate {
                            validate_roundtrip(&r, buf)?;
                        }
                        let p = (crate::operators::key_hash(&r, key) as usize) % *dop;
                        // Keep per-destination arrival order if columnar
                        // rows are already pending for `p`.
                        if let Some(bld) = &mut col_builders[p] {
                            if !bld.is_empty() {
                                let pending = RecordBatch::from_columns(bld.take());
                                out.push_back((*first + p, Arc::new(pending)));
                            }
                        }
                        builders[p].push(r);
                        if builders[p].len() >= *batch_size {
                            let full = std::mem::take(&mut builders[p]);
                            out.push_back((*first + p, Arc::new(RecordBatch::from_records(full))));
                        }
                    }
                    stats.add_shipped(records, bytes);
                    if let Some(op) = op {
                        stats.add_op_shipped(*op, records, bytes);
                    }
                }
            }
            Router::Broadcast { first, dop, op } => {
                // A columnar batch is materialized to rows **once** here so
                // every consumer shares the same row allocation — joins
                // borrow records from broadcast build sides zero-copy.
                let batch = crate::operators::rows_arc(batch);
                // `dop - 1` remote copies: a partition does not ship to
                // itself.
                let copies = dop.saturating_sub(1) as u64;
                stats.add_shipped(
                    batch.len() as u64 * copies,
                    batch.encoded_len() as u64 * copies,
                );
                if let Some(op) = op {
                    stats.add_op_shipped(
                        *op,
                        batch.len() as u64 * copies,
                        batch.encoded_len() as u64 * copies,
                    );
                }
                for p in 0..*dop {
                    out.push_back((*first + p, Arc::clone(&batch)));
                }
            }
        }
        Ok(())
    }

    /// Flushes any partially filled destination batches (end of the
    /// producer's output).
    pub(crate) fn finish(&mut self, out: &mut Outbound) {
        if let Router::Partition {
            first,
            builders,
            col_builders,
            ..
        } = self
        {
            for (p, b) in builders.iter_mut().enumerate() {
                if !b.is_empty() {
                    let rest = std::mem::take(b);
                    out.push_back((*first + p, Arc::new(RecordBatch::from_records(rest))));
                }
            }
            for (p, b) in col_builders.iter_mut().enumerate() {
                if let Some(bld) = b {
                    if !bld.is_empty() {
                        let rest = RecordBatch::from_columns(bld.take());
                        out.push_back((*first + p, Arc::new(rest)));
                    }
                }
            }
        }
    }
}

/// Encodes `r` with the shared length-framing helper (the same framing
/// the spill subsystem writes), decodes it back, and checks the
/// round-trip is lossless.
fn validate_roundtrip(r: &Record, buf: &mut BytesMut) -> Result<(), ExecError> {
    buf.clear();
    wire::encode_framed(r, buf);
    let decoded = wire::decode_framed(&mut buf.split().freeze())
        .map_err(|e| ExecError::Wire(e.to_string()))?;
    if &decoded != r {
        return Err(ExecError::Wire(format!(
            "round-trip mismatch: {r} decoded as {decoded}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::Value;

    fn batch(vals: &[i64]) -> Arc<RecordBatch> {
        Arc::new(
            vals.iter()
                .map(|&v| Record::from_values([Value::Int(v)]))
                .collect(),
        )
    }

    fn flat(out: &Outbound) -> Vec<(usize, Vec<i64>)> {
        out.iter()
            .map(|(c, b)| (*c, b.iter().map(|r| r.field(0).as_int().unwrap()).collect()))
            .collect()
    }

    #[test]
    fn forward_is_identity_and_free() {
        let stats = ExecStats::new();
        let mut out = Outbound::new();
        let mut r = Router::forward(3);
        r.route(batch(&[1, 2]), &mut out, &stats).unwrap();
        r.finish(&mut out);
        assert_eq!(flat(&out), vec![(3, vec![1, 2])]);
        assert_eq!(stats.snapshot().2, 0);
    }

    #[test]
    fn partition_routes_by_key_hash_and_counts_all_records() {
        let stats = ExecStats::new();
        let key = [AttrId(0)];
        let mut out = Outbound::new();
        let mut r = Router::partition(10, 4, Some(0), &key, 1024, false);
        r.route(batch(&[1, 2, 3]), &mut out, &stats).unwrap();
        r.route(batch(&[1, 4]), &mut out, &stats).unwrap();
        r.finish(&mut out);
        // All 5 records accounted; equal keys land on the same channel.
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert_eq!(shipped, 5);
        assert_eq!(bytes, 5 * 13); // 4-byte header + 9-byte int each
        let routed = flat(&out);
        assert_eq!(routed.iter().map(|(_, v)| v.len()).sum::<usize>(), 5);
        assert!(routed.iter().all(|(c, _)| (10..14).contains(c)));
        let ones: Vec<usize> = routed
            .iter()
            .filter(|(_, v)| v.contains(&1))
            .map(|(c, _)| *c)
            .collect();
        assert!(
            ones.iter().all(|&c| c == ones[0]),
            "both key=1 records on one channel"
        );
    }

    #[test]
    fn partition_respects_batch_size_incrementally() {
        let stats = ExecStats::new();
        let key = [AttrId(0)];
        let mut out = Outbound::new();
        // Same key → same destination; batch_size 2 → flush every 2 records.
        let mut r = Router::partition(0, 2, Some(0), &key, 2, false);
        r.route(batch(&[7, 7, 7, 7, 7]), &mut out, &stats).unwrap();
        assert_eq!(out.len(), 2, "two full batches flushed eagerly");
        r.finish(&mut out);
        assert_eq!(out.len(), 3, "remainder flushed at finish");
        assert_eq!(out.iter().map(|(_, b)| b.len()).sum::<usize>(), 5);
    }

    #[test]
    fn broadcast_shares_batches_and_counts_remote_copies_only() {
        let stats = ExecStats::new();
        let b = batch(&[7, 8]);
        let mut out = Outbound::new();
        let mut r = Router::broadcast(5, 3, Some(0));
        r.route(Arc::clone(&b), &mut out, &stats).unwrap();
        r.finish(&mut out);
        assert_eq!(out.len(), 3);
        // Zero-copy: every destination sees the same allocation.
        for (c, sent) in &out {
            assert!((5..8).contains(c));
            assert!(Arc::ptr_eq(sent, &b));
        }
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert_eq!(shipped, 2 * 2, "2 records × (dop-1) copies");
        assert_eq!(bytes, 2 * 13 * 2);
    }

    #[test]
    fn broadcast_dop1_ships_nothing() {
        let stats = ExecStats::new();
        let mut out = Outbound::new();
        let mut r = Router::broadcast(0, 1, None);
        r.route(batch(&[1]), &mut out, &stats).unwrap();
        assert_eq!(out.len(), 1, "still delivered to the one partition");
        assert_eq!(stats.snapshot().2, 0);
    }

    #[test]
    fn validate_wire_mode_roundtrips_cleanly() {
        let stats = ExecStats::new();
        let key = [AttrId(0)];
        let mut out = Outbound::new();
        let mut r = Router::partition(0, 2, None, &key, 1024, true);
        r.route(
            Arc::new(
                [Record::from_values([
                    Value::Int(1),
                    Value::Null,
                    Value::str("x"),
                    Value::Float(2.5),
                    Value::Bool(true),
                ])]
                .into_iter()
                .collect::<RecordBatch>(),
            ),
            &mut out,
            &stats,
        )
        .unwrap();
        r.finish(&mut out);
        assert_eq!(out.iter().map(|(_, b)| b.len()).sum::<usize>(), 1);
    }
}
