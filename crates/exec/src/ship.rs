//! Ship strategies: moving batches between partitions.
//!
//! Shipping is where the simulated engine accounts "network" traffic.
//! Byte accounting uses [`Record::encoded_len`] — the same approximation
//! the cost model optimizes against — instead of serializing every record;
//! the opt-in [`crate::ExecOptions::validate_wire`] mode additionally
//! round-trips each hash-partitioned record through the wire format and
//! asserts the decode reproduces the original, preserving the seed
//! engine's serialization check for tests and debugging.
//!
//! Accounting rule (see [`ExecStats::add_shipped`]):
//!
//! * [`Ship::Forward`] ships nothing.
//! * [`Ship::Partition`] counts every routed record once, including those
//!   hash-routed back to their own partition — hash routing is
//!   data-dependent, and the cost model prices a repartition as the full
//!   input volume (cf. `ship_cost`'s "approximate with 1").
//! * [`Ship::Broadcast`] counts `dop - 1` copies of every record: a
//!   partition does not ship to itself. The batches themselves are shared
//!   via [`Arc`], so broadcast performs **zero** record copies no matter
//!   the fan-out.

use crate::engine::ExecError;
use crate::stats::ExecStats;
use crate::ExecOptions;
use bytes::BytesMut;
use std::sync::Arc;
use strato_core::Ship;
use strato_record::{wire, Record, RecordBatch};

/// Per-partition streams of batches: `parts[p]` is partition `p`'s data.
pub(crate) type PartedBatches = Vec<Vec<Arc<RecordBatch>>>;

/// Applies one ship strategy to partitioned data, accounting stats.
pub(crate) fn ship(
    parts: PartedBatches,
    strategy: &Ship,
    dop: usize,
    stats: &ExecStats,
    opts: &ExecOptions,
) -> Result<PartedBatches, ExecError> {
    match strategy {
        Ship::Forward => Ok(parts),
        Ship::Partition(key) => {
            let mut routed: Vec<Vec<Record>> = (0..dop).map(|_| Vec::new()).collect();
            let mut records = 0u64;
            let mut bytes = 0u64;
            let mut buf = BytesMut::new();
            for part in parts {
                for batch in part {
                    for r in crate::operators::take_records(batch) {
                        records += 1;
                        bytes += r.encoded_len() as u64;
                        if opts.validate_wire {
                            validate_roundtrip(&r, &mut buf)?;
                        }
                        let h = crate::operators::key_hash(&r, key) as usize;
                        routed[h % dop].push(r);
                    }
                }
            }
            stats.add_shipped(records, bytes);
            Ok(routed
                .into_iter()
                .map(|recs| crate::operators::into_batches(recs, opts.batch_size))
                .collect())
        }
        Ship::Broadcast => {
            let mut all: Vec<Arc<RecordBatch>> = Vec::new();
            let mut records = 0u64;
            let mut bytes = 0u64;
            for part in parts {
                for batch in part {
                    records += batch.len() as u64;
                    bytes += batch.encoded_len() as u64;
                    all.push(batch);
                }
            }
            // `dop - 1` remote copies: a partition does not ship to itself.
            let copies = dop.saturating_sub(1) as u64;
            stats.add_shipped(records * copies, bytes * copies);
            Ok((0..dop).map(|_| all.clone()).collect())
        }
    }
}

/// Encodes `r`, decodes it back, and checks the round-trip is lossless.
fn validate_roundtrip(r: &Record, buf: &mut BytesMut) -> Result<(), ExecError> {
    buf.clear();
    wire::encode_record(r, buf);
    let decoded = wire::decode_record(&mut buf.split().freeze())
        .map_err(|e| ExecError::Wire(e.to_string()))?;
    if &decoded != r {
        return Err(ExecError::Wire(format!(
            "round-trip mismatch: {r} decoded as {decoded}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_record::{AttrId, Value};

    fn batch(vals: &[i64]) -> Arc<RecordBatch> {
        Arc::new(
            vals.iter()
                .map(|&v| Record::from_values([Value::Int(v)]))
                .collect(),
        )
    }

    fn opts() -> ExecOptions {
        ExecOptions::default()
    }

    #[test]
    fn forward_is_identity_and_free() {
        let stats = ExecStats::new();
        let parts = vec![vec![batch(&[1])], vec![batch(&[2])]];
        let out = ship(parts.clone(), &Ship::Forward, 2, &stats, &opts()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.snapshot().2, 0);
    }

    #[test]
    fn partition_routes_by_key_hash_and_counts_all_records() {
        let stats = ExecStats::new();
        let parts = vec![vec![batch(&[1, 2, 3])], vec![batch(&[1, 4])]];
        let out = ship(parts, &Ship::Partition(vec![AttrId(0)]), 4, &stats, &opts()).unwrap();
        // All 5 records accounted; equal keys land on the same partition.
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert_eq!(shipped, 5);
        assert_eq!(bytes, 5 * 13); // 4-byte header + 9-byte int each
        let flat: Vec<Vec<i64>> = out
            .iter()
            .map(|p| {
                p.iter()
                    .flat_map(|b| b.iter())
                    .map(|r| r.field(0).as_int().unwrap())
                    .collect()
            })
            .collect();
        assert_eq!(flat.iter().map(Vec::len).sum::<usize>(), 5);
        let ones: Vec<usize> = flat
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains(&1))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ones.len(), 1, "both key=1 records on one partition");
    }

    #[test]
    fn broadcast_shares_batches_and_counts_remote_copies_only() {
        let stats = ExecStats::new();
        let b = batch(&[7, 8]);
        let out = ship(
            vec![vec![Arc::clone(&b)]],
            &Ship::Broadcast,
            3,
            &stats,
            &opts(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        // Zero-copy: every partition sees the same allocation.
        for p in &out {
            assert!(Arc::ptr_eq(&p[0], &b));
        }
        let (_, _, shipped, bytes, _) = stats.snapshot();
        assert_eq!(shipped, 2 * 2, "2 records × (dop-1) copies");
        assert_eq!(bytes, 2 * 13 * 2);
    }

    #[test]
    fn broadcast_dop1_ships_nothing() {
        let stats = ExecStats::new();
        ship(
            vec![vec![batch(&[1])]],
            &Ship::Broadcast,
            1,
            &stats,
            &opts(),
        )
        .unwrap();
        assert_eq!(stats.snapshot().2, 0);
    }

    #[test]
    fn validate_wire_mode_roundtrips_cleanly() {
        let stats = ExecStats::new();
        let o = ExecOptions {
            validate_wire: true,
            ..ExecOptions::default()
        };
        let parts = vec![vec![Arc::new(
            [Record::from_values([
                Value::Int(1),
                Value::Null,
                Value::str("x"),
                Value::Float(2.5),
                Value::Bool(true),
            ])]
            .into_iter()
            .collect::<RecordBatch>(),
        )]];
        let out = ship(parts, &Ship::Partition(vec![AttrId(0)]), 2, &stats, &o).unwrap();
        assert_eq!(out.iter().map(|p| p.len()).sum::<usize>(), 1);
    }
}
