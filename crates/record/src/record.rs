//! Records: ordered tuples of values.

use crate::value::Value;
use std::fmt;
use std::ops::{Index, IndexMut};

/// An ordered tuple of values `r = ⟨v1, …, vm⟩` (Section 2.2 of the paper).
///
/// Two records are equal iff they have the same arity and all fields compare
/// equal under [`Value`]'s total equality.
///
/// In global-record layout (the representation the engine executes on), the
/// arity of every record equals the number of global attributes and fields
/// the record does not carry are [`Value::Null`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Record {
    fields: Vec<Value>,
}

impl Record {
    /// Creates a record from a vector of field values.
    pub fn new(fields: Vec<Value>) -> Self {
        Record { fields }
    }

    /// Creates an all-null record of the given arity (an "empty" record in
    /// global layout).
    pub fn nulls(arity: usize) -> Self {
        Record {
            fields: vec![Value::Null; arity],
        }
    }

    /// Creates a record from anything convertible to values.
    ///
    /// ```
    /// use strato_record::Record;
    /// let r = Record::from_values([1i64.into(), "a".into()]);
    /// assert_eq!(r.arity(), 2);
    /// ```
    pub fn from_values(fields: impl IntoIterator<Item = Value>) -> Self {
        Record {
            fields: fields.into_iter().collect(),
        }
    }

    /// Number of fields in this record.
    #[inline]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Returns field `n`, or `Value::Null` when out of range.
    ///
    /// Out-of-range reads return null rather than panicking because the
    /// engine's global layout guarantees in-range access; lenience here keeps
    /// black-box UDF interpretation total.
    #[inline]
    pub fn field(&self, n: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.fields.get(n).unwrap_or(&NULL)
    }

    /// Sets field `n`, growing the record with nulls if needed.
    pub fn set_field(&mut self, n: usize, v: Value) {
        if n >= self.fields.len() {
            self.fields.resize(n + 1, Value::Null);
        }
        self.fields[n] = v;
    }

    /// Read-only view of all fields.
    #[inline]
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Consumes the record, returning its fields.
    pub fn into_fields(self) -> Vec<Value> {
        self.fields
    }

    /// Projects the record onto the given field indices (π in the paper).
    pub fn project(&self, indices: &[usize]) -> Record {
        Record {
            fields: indices.iter().map(|&i| self.field(i).clone()).collect(),
        }
    }

    /// Merges another record into this one, field-wise: absent (null) fields
    /// of `self` take the corresponding field of `other`.
    ///
    /// This is the global-layout implementation of record concatenation
    /// `r|s`: the attribute sets of the two sides are disjoint, so for every
    /// attribute at most one side is non-null.
    pub fn merge_absent(&mut self, other: &Record) {
        if other.fields.len() > self.fields.len() {
            self.fields.resize(other.fields.len(), Value::Null);
        }
        for (i, v) in other.fields.iter().enumerate() {
            if self.fields[i].is_null() && !v.is_null() {
                self.fields[i] = v.clone();
            }
        }
    }

    /// Approximate serialized size in bytes, counting only present
    /// (non-null) fields plus a per-record header. Used for cost accounting.
    pub fn encoded_len(&self) -> usize {
        4 + self
            .fields
            .iter()
            .filter(|v| !v.is_null())
            .map(Value::encoded_len)
            .sum::<usize>()
    }
}

impl Index<usize> for Record {
    type Output = Value;
    fn index(&self, n: usize) -> &Value {
        self.field(n)
    }
}

impl IndexMut<usize> for Record {
    fn index_mut(&mut self, n: usize) -> &mut Value {
        if n >= self.fields.len() {
            self.fields.resize(n + 1, Value::Null);
        }
        &mut self.fields[n]
    }
}

impl FromIterator<Value> for Record {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Record::from_values(iter)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[i64]) -> Record {
        Record::from_values(vals.iter().map(|&v| Value::Int(v)))
    }

    #[test]
    fn arity_and_access() {
        let r = rec(&[1, 2, 3]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.field(0), &Value::Int(1));
        assert_eq!(r.field(99), &Value::Null);
        assert_eq!(r[2], Value::Int(3));
    }

    #[test]
    fn set_field_grows() {
        let mut r = rec(&[1]);
        r.set_field(3, Value::Int(9));
        assert_eq!(r.arity(), 4);
        assert_eq!(r.field(1), &Value::Null);
        assert_eq!(r.field(3), &Value::Int(9));
    }

    #[test]
    fn index_mut_grows() {
        let mut r = Record::default();
        r[2] = Value::str("x");
        assert_eq!(r.arity(), 3);
        assert_eq!(r.field(2), &Value::str("x"));
    }

    #[test]
    fn record_equality_is_fieldwise() {
        assert_eq!(rec(&[1, 2]), rec(&[1, 2]));
        assert_ne!(rec(&[1, 2]), rec(&[2, 1]));
        assert_ne!(rec(&[1]), rec(&[1, 2]));
    }

    #[test]
    fn projection() {
        let r = rec(&[10, 20, 30]);
        assert_eq!(r.project(&[2, 0]), rec(&[30, 10]));
        assert_eq!(r.project(&[]), Record::default());
    }

    #[test]
    fn merge_absent_takes_other_side() {
        let mut left = Record::from_values([Value::Int(1), Value::Null, Value::Null]);
        let right = Record::from_values([Value::Null, Value::Int(2), Value::Null]);
        left.merge_absent(&right);
        assert_eq!(
            left,
            Record::from_values([Value::Int(1), Value::Int(2), Value::Null])
        );
    }

    #[test]
    fn merge_absent_does_not_overwrite_present_fields() {
        let mut left = Record::from_values([Value::Int(1)]);
        let right = Record::from_values([Value::Int(9), Value::Int(2)]);
        left.merge_absent(&right);
        assert_eq!(left, Record::from_values([Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn nulls_constructor() {
        let r = Record::nulls(4);
        assert_eq!(r.arity(), 4);
        assert!(r.fields().iter().all(Value::is_null));
    }

    #[test]
    fn encoded_len_ignores_nulls() {
        let r = Record::from_values([Value::Int(1), Value::Null, Value::str("ab")]);
        assert_eq!(r.encoded_len(), 4 + 9 + (1 + 4 + 2));
    }

    #[test]
    fn display_format() {
        let r = Record::from_values([Value::Int(2), Value::Int(-3)]);
        assert_eq!(format!("{r}"), "⟨2, -3⟩");
    }
}
