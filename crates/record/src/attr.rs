//! Global record, attribute identities and attribute sets.
//!
//! Definition 1 of the paper: *the global record `A` is a unique naming of
//! all base and intermediate attributes in the data flow*, together with a
//! *redirection map* `α(D, n)` mapping every local field index `n` of every
//! data set `D` to the corresponding entry of `A`.

use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// Identity of one attribute of the global record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's index into the global record.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A set of global attributes, stored as a growable bitset.
///
/// All reordering conditions of the paper are set-algebra over attribute
/// sets (read sets, write sets, keys, subtree attribute coverage), so this
/// type provides the full algebra: union, intersection, difference,
/// disjointness and subset tests — each O(words).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from attribute ids.
    pub fn from_iter_ids(ids: impl IntoIterator<Item = AttrId>) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Singleton set.
    pub fn singleton(id: AttrId) -> Self {
        let mut s = Self::new();
        s.insert(id);
        s
    }

    /// Inserts an attribute; returns `true` if it was not present.
    pub fn insert(&mut self, id: AttrId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes an attribute; returns `true` if it was present.
    pub fn remove(&mut self, id: AttrId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: AttrId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∩ other = ∅` — the workhorse of every conflict check.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &AttrSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Union, producing a new set.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Intersection, producing a new set.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        AttrSet { words }.normalized()
    }

    /// Difference `self \ other`, producing a new set.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let words = self
            .words
            .iter()
            .enumerate()
            .map(|(i, &a)| a & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        AttrSet { words }.normalized()
    }

    /// Iterates over the contained attribute ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| AttrId((wi * 64 + b) as u32))
        })
    }

    /// Drops trailing zero words so that equality/hash are canonical.
    fn normalized(mut self) -> Self {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        self
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        Self::from_iter_ids(iter)
    }
}

impl BitOr for &AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: &AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl BitAnd for &AttrSet {
    type Output = AttrSet;
    fn bitand(self, rhs: &AttrSet) -> AttrSet {
        self.intersection(rhs)
    }
}

impl Sub for &AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: &AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// One attribute of the global record: its display name and provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrInfo {
    /// Human-readable name, e.g. `lineitem.l_shipdate` or `op3.$new0`.
    pub name: String,
}

/// The global record `A` (Definition 1): the unique naming of all base and
/// intermediate attributes of a bound data flow.
#[derive(Debug, Clone, Default)]
pub struct GlobalRecord {
    attrs: Vec<AttrInfo>,
}

impl GlobalRecord {
    /// An empty global record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new attribute and returns its id.
    pub fn add(&mut self, name: impl Into<String>) -> AttrId {
        let id = AttrId(self.attrs.len() as u32);
        self.attrs.push(AttrInfo { name: name.into() });
        id
    }

    /// Number of attributes, `|A|` — also the width of tuples in global
    /// layout.
    pub fn width(&self) -> usize {
        self.attrs.len()
    }

    /// Name of an attribute.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Looks an attribute up by name.
    pub fn by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
    }

    /// All attribute ids.
    pub fn all(&self) -> AttrSet {
        (0..self.attrs.len() as u32).map(AttrId).collect()
    }

    /// Renders a set of attributes with names, for diagnostics.
    pub fn render(&self, set: &AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|a| self.name(a)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// A redirection map α for one operator input or output: local field index →
/// global attribute (Definition 1).
///
/// UDF code addresses fields by *static local indices*; binding a program
/// computes one `Redirection` per operator input/output so the engine can
/// execute the unchanged UDF against global-layout tuples regardless of how
/// operators were reordered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Redirection {
    map: Vec<AttrId>,
}

impl Redirection {
    /// Creates a redirection from the local-index-ordered list of global
    /// attribute ids.
    pub fn new(map: Vec<AttrId>) -> Self {
        Redirection { map }
    }

    /// α(D, n): the global attribute for local field `n`.
    #[inline]
    pub fn get(&self, n: usize) -> Option<AttrId> {
        self.map.get(n).copied()
    }

    /// Number of local fields covered, `#D`.
    pub fn arity(&self) -> usize {
        self.map.len()
    }

    /// The set of all global attributes reachable through this map.
    pub fn attr_set(&self) -> AttrSet {
        self.map.iter().copied().collect()
    }

    /// The raw local→global table.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.map
    }

    /// Appends a mapping for the next local index; returns that local index.
    pub fn push(&mut self, id: AttrId) -> usize {
        self.map.push(id);
        self.map.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AttrSet::new();
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(!s.contains(AttrId(2)));
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), set(&[3]));
        assert_eq!(a.difference(&b), set(&[1, 2]));
        assert_eq!(&a | &b, set(&[1, 2, 3, 4]));
        assert_eq!(&a & &b, set(&[3]));
        assert_eq!(&a - &b, set(&[1, 2]));
    }

    #[test]
    fn disjoint_and_subset() {
        assert!(set(&[1, 2]).is_disjoint(&set(&[3, 4])));
        assert!(!set(&[1, 2]).is_disjoint(&set(&[2])));
        assert!(set(&[1]).is_subset(&set(&[1, 2])));
        assert!(!set(&[1, 5]).is_subset(&set(&[1, 2])));
        assert!(AttrSet::new().is_subset(&set(&[])));
        assert!(AttrSet::new().is_disjoint(&AttrSet::new()));
    }

    #[test]
    fn works_across_word_boundaries() {
        let a = set(&[0, 63, 64, 127, 128]);
        assert_eq!(a.len(), 5);
        assert!(a.contains(AttrId(127)));
        let b = set(&[127]);
        assert!(!a.is_disjoint(&b));
        assert!(b.is_subset(&a));
        assert_eq!(a.difference(&b).len(), 4);
    }

    #[test]
    fn canonical_equality_after_difference() {
        // Removing high bits must not leave trailing words that break Eq.
        let a = set(&[200]);
        let b = set(&[200]);
        let d = a.difference(&b);
        assert_eq!(d, AttrSet::new());
        assert_eq!(a.intersection(&set(&[1])), AttrSet::new());
    }

    #[test]
    fn iter_ascending() {
        let ids: Vec<u32> = set(&[65, 2, 130]).iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![2, 65, 130]);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", set(&[1, 3])), "{a1,a3}");
        assert_eq!(format!("{}", AttrId(7)), "a7");
    }

    #[test]
    fn global_record_naming() {
        let mut g = GlobalRecord::new();
        let a = g.add("li.date");
        let b = g.add("li.qty");
        assert_eq!(g.width(), 2);
        assert_eq!(g.name(a), "li.date");
        assert_eq!(g.by_name("li.qty"), Some(b));
        assert_eq!(g.by_name("nope"), None);
        assert_eq!(g.all(), set(&[0, 1]));
        assert_eq!(g.render(&set(&[0])), "{li.date}");
    }

    #[test]
    fn redirection_maps_local_to_global() {
        let r = Redirection::new(vec![AttrId(5), AttrId(9)]);
        assert_eq!(r.get(0), Some(AttrId(5)));
        assert_eq!(r.get(1), Some(AttrId(9)));
        assert_eq!(r.get(2), None);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.attr_set(), set(&[5, 9]));
    }

    #[test]
    fn redirection_push() {
        let mut r = Redirection::default();
        assert_eq!(r.push(AttrId(1)), 0);
        assert_eq!(r.push(AttrId(4)), 1);
        assert_eq!(r.as_slice(), &[AttrId(1), AttrId(4)]);
    }
}
