//! Columnar batch storage: per-attribute value vectors with null masks.
//!
//! A [`ColumnBatch`] stores the same logical content as a run of
//! global-layout [`Record`]s — every row has arity equal to the batch
//! width — but holds each attribute in its own typed vector so the hot
//! engine kernels (key hashing, key comparison, scatter routing, byte
//! accounting) run as tight loops over primitive slices instead of
//! chasing per-record `Vec<Value>` allocations.
//!
//! Columns are type-adaptive: a column starts as [`Column::Null`]
//! (zero storage — common for widened global layouts where most
//! attributes are absent), is promoted to a typed vector on the first
//! non-null value, and falls back to [`Column::Mixed`] (a plain value
//! vector) if a second type shows up. Null cells in typed columns are
//! recorded in a [`NullMask`] bitmap with a placeholder in the data
//! vector.
//!
//! All kernels are bit-faithful to the row path: hashing mirrors
//! [`Value`]'s `Hash` impl folded through [`crate::hash::FxHasher`],
//! comparison mirrors [`Value::cmp`]'s total order, and
//! [`ColumnBatch::encoded_len`] equals the sum of
//! [`Record::encoded_len`] over the materialized rows.

use crate::hash::{fx_add, fx_add_bytes};
use crate::record::Record;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// A null bitmap for one typed column: bit set ⇒ the cell is null and
/// the data vector holds a placeholder at that position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMask {
    words: Vec<u64>,
    count: usize,
}

impl NullMask {
    /// A mask with the first `rows` cells all null.
    fn all_null(rows: usize) -> Self {
        let mut words = vec![u64::MAX; rows / 64];
        let rem = rows % 64;
        if rem != 0 {
            words.push((1u64 << rem) - 1);
        }
        NullMask { words, count: rows }
    }

    /// `true` iff cell `row` is null.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.words
            .get(row / 64)
            .is_some_and(|w| (w >> (row % 64)) & 1 == 1)
    }

    /// Number of null cells recorded.
    #[inline]
    pub fn null_count(&self) -> usize {
        self.count
    }

    /// Appends one cell's nullness; `row` must be the column length
    /// before the push.
    #[inline]
    fn push(&mut self, row: usize, null: bool) {
        let w = row / 64;
        if w >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[w] |= 1 << (row % 64);
            self.count += 1;
        }
    }
}

/// One attribute's cells across a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Every cell is null. Stores nothing but the count.
    Null {
        /// Number of (all-null) cells.
        rows: usize,
    },
    /// Boolean cells with a null bitmap.
    Bool {
        /// Cell payloads (`false` placeholder at null positions).
        data: Vec<bool>,
        /// Which cells are null.
        nulls: NullMask,
    },
    /// Integer cells with a null bitmap.
    Int {
        /// Cell payloads (`0` placeholder at null positions).
        data: Vec<i64>,
        /// Which cells are null.
        nulls: NullMask,
    },
    /// Float cells with a null bitmap.
    Float {
        /// Cell payloads (`0.0` placeholder at null positions).
        data: Vec<f64>,
        /// Which cells are null.
        nulls: NullMask,
    },
    /// String cells with a null bitmap.
    Str {
        /// Cell payloads (shared empty string placeholder at nulls).
        data: Vec<Arc<str>>,
        /// Which cells are null.
        nulls: NullMask,
    },
    /// Fallback for type-mixed columns: plain values, nulls inline.
    Mixed(
        /// The cells, one [`Value`] each.
        Vec<Value>,
    ),
}

/// A borrowed view of one cell, used by the hash/compare kernels to
/// avoid cloning `Arc<str>` payloads.
#[derive(Clone, Copy)]
enum Cell<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(&'a str),
}

impl Cell<'_> {
    /// Mirrors `Value::type_rank` for cross-type ordering.
    #[inline]
    fn rank(self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Bool(_) => 1,
            Cell::Int(_) => 2,
            Cell::Float(_) => 3,
            Cell::Str(_) => 4,
        }
    }

    #[inline]
    fn of_value(v: &Value) -> Cell<'_> {
        match v {
            Value::Null => Cell::Null,
            Value::Bool(b) => Cell::Bool(*b),
            Value::Int(i) => Cell::Int(*i),
            Value::Float(f) => Cell::Float(*f),
            Value::Str(s) => Cell::Str(s),
        }
    }

    /// Total order identical to [`Value::cmp`].
    fn cmp(self, other: Cell<'_>) -> Ordering {
        use Cell::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(&b),
            (Int(a), Int(b)) => a.cmp(&b),
            (Float(a), Float(b)) => a.total_cmp(&b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }

    /// One FxHash fold identical to hashing the equivalent [`Value`]
    /// through [`crate::hash::FxHasher`].
    #[inline]
    fn fold_hash(self, h: u64) -> u64 {
        match self {
            Cell::Null => fx_add(h, 0),
            Cell::Bool(b) => fx_add(fx_add(h, 1), b as u64),
            Cell::Int(i) => fx_add(fx_add(h, 2), i as u64),
            Cell::Float(f) => fx_add(fx_add(h, 3), f.to_bits()),
            Cell::Str(s) => fx_add_bytes(fx_add(h, 4), s.as_bytes()),
        }
    }
}

impl Column {
    /// Number of cells.
    fn len(&self) -> usize {
        match self {
            Column::Null { rows } => *rows,
            Column::Bool { data, .. } => data.len(),
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Mixed(data) => data.len(),
        }
    }

    /// Number of null cells.
    fn null_count(&self) -> usize {
        match self {
            Column::Null { rows } => *rows,
            Column::Bool { nulls, .. }
            | Column::Int { nulls, .. }
            | Column::Float { nulls, .. }
            | Column::Str { nulls, .. } => nulls.null_count(),
            Column::Mixed(data) => data.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// Borrowed cell view.
    #[inline]
    fn cell(&self, row: usize) -> Cell<'_> {
        match self {
            Column::Null { .. } => Cell::Null,
            Column::Bool { data, nulls } => {
                if nulls.is_null(row) {
                    Cell::Null
                } else {
                    Cell::Bool(data[row])
                }
            }
            Column::Int { data, nulls } => {
                if nulls.is_null(row) {
                    Cell::Null
                } else {
                    Cell::Int(data[row])
                }
            }
            Column::Float { data, nulls } => {
                if nulls.is_null(row) {
                    Cell::Null
                } else {
                    Cell::Float(data[row])
                }
            }
            Column::Str { data, nulls } => {
                if nulls.is_null(row) {
                    Cell::Null
                } else {
                    Cell::Str(&data[row])
                }
            }
            Column::Mixed(data) => Cell::of_value(&data[row]),
        }
    }

    /// Owned cell value (clones `Arc<str>` payloads cheaply).
    fn value(&self, row: usize) -> Value {
        match self {
            Column::Str { data, nulls } => {
                if nulls.is_null(row) {
                    Value::Null
                } else {
                    Value::Str(data[row].clone())
                }
            }
            Column::Mixed(data) => data[row].clone(),
            _ => match self.cell(row) {
                Cell::Null => Value::Null,
                Cell::Bool(b) => Value::Bool(b),
                Cell::Int(i) => Value::Int(i),
                Cell::Float(f) => Value::Float(f),
                Cell::Str(_) => unreachable!("handled above"),
            },
        }
    }

    /// A fresh typed column holding `n` leading nulls followed by `v`.
    fn typed_after_nulls(n: usize, v: &Value) -> Column {
        let nulls = NullMask::all_null(n);
        match v {
            Value::Null => unreachable!("caller checked non-null"),
            Value::Bool(b) => {
                let mut data = vec![false; n];
                data.push(*b);
                Column::Bool { data, nulls }
            }
            Value::Int(i) => {
                let mut data = vec![0i64; n];
                data.push(*i);
                Column::Int { data, nulls }
            }
            Value::Float(f) => {
                let mut data = vec![0.0f64; n];
                data.push(*f);
                Column::Float { data, nulls }
            }
            Value::Str(s) => {
                let empty: Arc<str> = Arc::from("");
                let mut data = vec![empty; n];
                data.push(s.clone());
                Column::Str { data, nulls }
            }
        }
    }

    /// Materializes the column into plain values (the `Mixed` escape
    /// hatch when a second type shows up).
    fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|row| self.value(row)).collect()
    }

    /// Appends one cell, promoting the column representation as needed.
    fn push(&mut self, v: &Value) {
        match self {
            Column::Null { rows } => {
                if v.is_null() {
                    *rows += 1;
                } else {
                    *self = Column::typed_after_nulls(*rows, v);
                }
            }
            Column::Bool { data, nulls } => match v {
                Value::Bool(b) => {
                    nulls.push(data.len(), false);
                    data.push(*b);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(false);
                }
                _ => self.demote_and_push(v),
            },
            Column::Int { data, nulls } => match v {
                Value::Int(i) => {
                    nulls.push(data.len(), false);
                    data.push(*i);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(0);
                }
                _ => self.demote_and_push(v),
            },
            Column::Float { data, nulls } => match v {
                Value::Float(f) => {
                    nulls.push(data.len(), false);
                    data.push(*f);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(0.0);
                }
                _ => self.demote_and_push(v),
            },
            Column::Str { data, nulls } => match v {
                Value::Str(s) => {
                    nulls.push(data.len(), false);
                    data.push(s.clone());
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(data.first().cloned().unwrap_or_else(|| Arc::from("")));
                }
                _ => self.demote_and_push(v),
            },
            Column::Mixed(data) => data.push(v.clone()),
        }
    }

    /// Type mismatch: fall back to the mixed representation.
    fn demote_and_push(&mut self, v: &Value) {
        let mut data = self.to_values();
        data.push(v.clone());
        *self = Column::Mixed(data);
    }

    /// Appends one owned cell — the move-based twin of [`Column::push`].
    /// String payloads transfer ownership of the `Arc`, so a scatter or
    /// materialization pass over owned columns performs **zero**
    /// refcount traffic per present string cell.
    fn push_value(&mut self, v: Value) {
        match self {
            Column::Null { rows } => {
                if v.is_null() {
                    *rows += 1;
                } else {
                    *self = Column::typed_after_nulls(*rows, &v);
                }
            }
            Column::Bool { data, nulls } => match v {
                Value::Bool(b) => {
                    nulls.push(data.len(), false);
                    data.push(b);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(false);
                }
                other => self.demote_and_push(&other),
            },
            Column::Int { data, nulls } => match v {
                Value::Int(i) => {
                    nulls.push(data.len(), false);
                    data.push(i);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(0);
                }
                other => self.demote_and_push(&other),
            },
            Column::Float { data, nulls } => match v {
                Value::Float(f) => {
                    nulls.push(data.len(), false);
                    data.push(f);
                }
                Value::Null => {
                    nulls.push(data.len(), true);
                    data.push(0.0);
                }
                other => self.demote_and_push(&other),
            },
            Column::Str { data, nulls } => match v {
                Value::Str(s) => {
                    nulls.push(data.len(), false);
                    data.push(s);
                }
                Value::Null => {
                    let ph = data.first().cloned().unwrap_or_else(|| Arc::from(""));
                    nulls.push(data.len(), true);
                    data.push(ph);
                }
                other => self.demote_and_push(&other),
            },
            Column::Mixed(data) => data.push(v),
        }
    }

    /// Appends cell `row` of `src`, with fast paths for matching types.
    fn push_cell(&mut self, src: &Column, row: usize) {
        match (&mut *self, src) {
            (Column::Null { rows }, Column::Null { .. }) => *rows += 1,
            (
                Column::Int {
                    data,
                    nulls: dnulls,
                },
                Column::Int { data: sd, nulls },
            ) => {
                dnulls.push(data.len(), nulls.is_null(row));
                data.push(sd[row]);
            }
            (
                Column::Float {
                    data,
                    nulls: dnulls,
                },
                Column::Float { data: sd, nulls },
            ) => {
                dnulls.push(data.len(), nulls.is_null(row));
                data.push(sd[row]);
            }
            (
                Column::Bool {
                    data,
                    nulls: dnulls,
                },
                Column::Bool { data: sd, nulls },
            ) => {
                dnulls.push(data.len(), nulls.is_null(row));
                data.push(sd[row]);
            }
            (
                Column::Str {
                    data,
                    nulls: dnulls,
                },
                Column::Str { data: sd, nulls },
            ) => {
                dnulls.push(data.len(), nulls.is_null(row));
                data.push(sd[row].clone());
            }
            _ => self.push(&src.value(row)),
        }
    }

    /// Sum of `Value::encoded_len` over present (non-null) cells — the
    /// column's contribution to ship/spill byte accounting.
    fn present_encoded_len(&self) -> usize {
        match self {
            Column::Null { .. } => 0,
            Column::Bool { data, nulls } => 2 * (data.len() - nulls.null_count()),
            Column::Int { data, nulls } => 9 * (data.len() - nulls.null_count()),
            Column::Float { data, nulls } => 9 * (data.len() - nulls.null_count()),
            Column::Str { data, nulls } => {
                if nulls.null_count() == 0 {
                    data.iter().map(|s| 5 + s.len()).sum()
                } else {
                    data.iter()
                        .enumerate()
                        .filter(|(row, _)| !nulls.is_null(*row))
                        .map(|(_, s)| 5 + s.len())
                        .sum()
                }
            }
            Column::Mixed(data) => data
                .iter()
                .filter(|v| !v.is_null())
                .map(Value::encoded_len)
                .sum(),
        }
    }
}

/// A fixed-width batch of rows stored column-major.
///
/// Built by [`BatchBuilder`]; immutable afterwards. Every row has
/// arity equal to [`ColumnBatch::width`], matching the engine's
/// global-record layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    rows: usize,
    cols: Vec<Column>,
}

impl ColumnBatch {
    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` iff the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of attributes (every row's arity).
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The columns.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Owned value of one cell; null for out-of-range columns,
    /// mirroring [`Record::field`]'s lenience.
    #[inline]
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        match self.cols.get(col) {
            Some(c) => c.value(row),
            None => Value::Null,
        }
    }

    /// `true` iff the cell is null (out-of-range columns are null).
    #[inline]
    pub fn is_null_at(&self, row: usize, col: usize) -> bool {
        match self.cols.get(col) {
            Some(c) => matches!(c.cell(row), Cell::Null),
            None => true,
        }
    }

    /// A cheap copyable view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> RowRef<'_> {
        debug_assert!(row < self.rows);
        RowRef { batch: self, row }
    }

    /// Materializes one row as a width-arity [`Record`].
    pub fn row_record(&self, row: usize) -> Record {
        Record::from_values(self.cols.iter().map(|c| c.value(row)))
    }

    /// Materializes every row, in order (clones payloads; see
    /// [`ColumnBatch::into_records`] for the move-based variant).
    pub fn to_records(&self) -> Vec<Record> {
        self.clone().into_records()
    }

    /// Consumes the batch, materializing every row in order. Runs
    /// column-wise: rows start as all-null value vectors and each
    /// column fills its slot in one tight pass, **moving** string
    /// payloads out of the column store — no per-cell refcount
    /// traffic, unlike the row-at-a-time [`ColumnBatch::row_record`].
    pub fn into_records(self) -> Vec<Record> {
        let width = self.cols.len();
        let mut rows: Vec<Vec<Value>> = (0..self.rows).map(|_| vec![Value::Null; width]).collect();
        for (c, col) in self.cols.into_iter().enumerate() {
            match col {
                Column::Null { .. } => {}
                Column::Bool { data, nulls } => {
                    for (r, b) in data.into_iter().enumerate() {
                        if !nulls.is_null(r) {
                            rows[r][c] = Value::Bool(b);
                        }
                    }
                }
                Column::Int { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for (r, i) in data.into_iter().enumerate() {
                            rows[r][c] = Value::Int(i);
                        }
                    } else {
                        for (r, i) in data.into_iter().enumerate() {
                            if !nulls.is_null(r) {
                                rows[r][c] = Value::Int(i);
                            }
                        }
                    }
                }
                Column::Float { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for (r, f) in data.into_iter().enumerate() {
                            rows[r][c] = Value::Float(f);
                        }
                    } else {
                        for (r, f) in data.into_iter().enumerate() {
                            if !nulls.is_null(r) {
                                rows[r][c] = Value::Float(f);
                            }
                        }
                    }
                }
                Column::Str { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for (r, s) in data.into_iter().enumerate() {
                            rows[r][c] = Value::Str(s);
                        }
                    } else {
                        for (r, s) in data.into_iter().enumerate() {
                            if !nulls.is_null(r) {
                                rows[r][c] = Value::Str(s);
                            }
                        }
                    }
                }
                Column::Mixed(data) => {
                    for (r, v) in data.into_iter().enumerate() {
                        rows[r][c] = v;
                    }
                }
            }
        }
        rows.into_iter().map(Record::new).collect()
    }

    /// Consumes the batch, scattering row `r` into
    /// `builders[dests[r]]` — the vectorized routing kernel behind the
    /// hash-partition ship. Runs column-wise over owned columns, so
    /// string payloads **move** to their destination builder, and rows
    /// keep their arrival order within each destination. Every builder
    /// must have this batch's width; `dests` must have one entry per
    /// row, each `< builders.len()`.
    pub fn scatter_into(self, dests: &[u32], builders: &mut [&mut BatchBuilder]) {
        debug_assert_eq!(dests.len(), self.rows);
        debug_assert!(builders.iter().all(|b| b.width() == self.cols.len()));
        for (c, col) in self.cols.into_iter().enumerate() {
            match col {
                Column::Null { rows } => {
                    debug_assert_eq!(rows, dests.len());
                    for &d in dests {
                        builders[d as usize].cols[c].push_value(Value::Null);
                    }
                }
                Column::Bool { data, nulls } => {
                    for (r, (b, &d)) in data.into_iter().zip(dests).enumerate() {
                        let v = if nulls.is_null(r) {
                            Value::Null
                        } else {
                            Value::Bool(b)
                        };
                        builders[d as usize].cols[c].push_value(v);
                    }
                }
                Column::Int { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for (i, &d) in data.into_iter().zip(dests) {
                            builders[d as usize].cols[c].push_value(Value::Int(i));
                        }
                    } else {
                        for (r, (i, &d)) in data.into_iter().zip(dests).enumerate() {
                            let v = if nulls.is_null(r) {
                                Value::Null
                            } else {
                                Value::Int(i)
                            };
                            builders[d as usize].cols[c].push_value(v);
                        }
                    }
                }
                Column::Float { data, nulls } => {
                    for (r, (f, &d)) in data.into_iter().zip(dests).enumerate() {
                        let v = if nulls.is_null(r) {
                            Value::Null
                        } else {
                            Value::Float(f)
                        };
                        builders[d as usize].cols[c].push_value(v);
                    }
                }
                Column::Str { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for (s, &d) in data.into_iter().zip(dests) {
                            builders[d as usize].cols[c].push_value(Value::Str(s));
                        }
                    } else {
                        for (r, (s, &d)) in data.into_iter().zip(dests).enumerate() {
                            let v = if nulls.is_null(r) {
                                Value::Null
                            } else {
                                Value::Str(s)
                            };
                            builders[d as usize].cols[c].push_value(v);
                        }
                    }
                }
                Column::Mixed(data) => {
                    for (v, &d) in data.into_iter().zip(dests) {
                        builders[d as usize].cols[c].push_value(v);
                    }
                }
            }
        }
        for &d in dests {
            builders[d as usize].rows += 1;
        }
    }

    /// Total null cells across all columns (for null-density stats).
    pub fn null_cells(&self) -> usize {
        self.cols.iter().map(Column::null_count).sum()
    }

    /// Total cells (`rows × width`).
    pub fn total_cells(&self) -> usize {
        self.rows * self.cols.len()
    }

    /// Serialized size under the engine's cost accounting: exactly the
    /// sum of [`Record::encoded_len`] over the materialized rows
    /// (4-byte header per row plus present-cell payloads), computed
    /// column-wise without materializing anything.
    pub fn encoded_len(&self) -> usize {
        4 * self.rows
            + self
                .cols
                .iter()
                .map(Column::present_encoded_len)
                .sum::<usize>()
    }

    /// Per-row serialized sizes under the same accounting, accumulated
    /// column-wise into `out` (cleared first).
    pub fn row_encoded_lens(&self, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.rows, 4);
        for col in &self.cols {
            match col {
                Column::Null { .. } => {}
                Column::Bool { data, nulls } => {
                    if nulls.null_count() == 0 {
                        for b in out.iter_mut() {
                            *b += 2;
                        }
                    } else {
                        for (row, b) in out.iter_mut().enumerate() {
                            *b += if nulls.is_null(row) { 0 } else { 2 };
                        }
                    }
                    debug_assert_eq!(data.len(), self.rows);
                }
                Column::Int { nulls, .. } | Column::Float { nulls, .. } => {
                    if nulls.null_count() == 0 {
                        for b in out.iter_mut() {
                            *b += 9;
                        }
                    } else {
                        for (row, b) in out.iter_mut().enumerate() {
                            *b += if nulls.is_null(row) { 0 } else { 9 };
                        }
                    }
                }
                Column::Str { data, nulls } => {
                    for (row, (b, s)) in out.iter_mut().zip(data).enumerate() {
                        if !nulls.is_null(row) {
                            *b += 5 + s.len();
                        }
                    }
                }
                Column::Mixed(data) => {
                    for (b, v) in out.iter_mut().zip(data) {
                        if !v.is_null() {
                            *b += v.encoded_len();
                        }
                    }
                }
            }
        }
    }

    /// Vectorized key hashing: for every row, the FxHash of the key
    /// cells in order — bit-identical to hashing the materialized
    /// row's key fields through [`crate::hash::FxHasher`]. `out` is
    /// cleared and refilled.
    pub fn key_hash_into(&self, key: &[usize], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.rows, 0);
        for &k in key {
            match self.cols.get(k) {
                // Out-of-range and all-null columns hash as null cells.
                None | Some(Column::Null { .. }) => {
                    for h in out.iter_mut() {
                        *h = fx_add(*h, 0);
                    }
                }
                Some(Column::Int { data, nulls }) => {
                    if nulls.null_count() == 0 {
                        for (h, &x) in out.iter_mut().zip(data) {
                            *h = fx_add(fx_add(*h, 2), x as u64);
                        }
                    } else {
                        for (row, (h, &x)) in out.iter_mut().zip(data).enumerate() {
                            *h = if nulls.is_null(row) {
                                fx_add(*h, 0)
                            } else {
                                fx_add(fx_add(*h, 2), x as u64)
                            };
                        }
                    }
                }
                Some(Column::Float { data, nulls }) => {
                    if nulls.null_count() == 0 {
                        for (h, &x) in out.iter_mut().zip(data) {
                            *h = fx_add(fx_add(*h, 3), x.to_bits());
                        }
                    } else {
                        for (row, (h, &x)) in out.iter_mut().zip(data).enumerate() {
                            *h = if nulls.is_null(row) {
                                fx_add(*h, 0)
                            } else {
                                fx_add(fx_add(*h, 3), x.to_bits())
                            };
                        }
                    }
                }
                Some(Column::Bool { data, nulls }) => {
                    for (row, (h, &x)) in out.iter_mut().zip(data).enumerate() {
                        *h = if nulls.is_null(row) {
                            fx_add(*h, 0)
                        } else {
                            fx_add(fx_add(*h, 1), x as u64)
                        };
                    }
                }
                Some(Column::Str { data, nulls }) => {
                    for (row, (h, s)) in out.iter_mut().zip(data).enumerate() {
                        *h = if nulls.is_null(row) {
                            fx_add(*h, 0)
                        } else {
                            fx_add_bytes(fx_add(*h, 4), s.as_bytes())
                        };
                    }
                }
                Some(col @ Column::Mixed(_)) => {
                    for (row, h) in out.iter_mut().enumerate() {
                        *h = col.cell(row).fold_hash(*h);
                    }
                }
            }
        }
    }

    /// FxHash of one row's key cells (row-at-a-time fallback of
    /// [`ColumnBatch::key_hash_into`]).
    pub fn key_hash_row(&self, row: usize, key: &[usize]) -> u64 {
        let mut h = 0u64;
        for &k in key {
            h = match self.cols.get(k) {
                Some(c) => c.cell(row).fold_hash(h),
                None => fx_add(h, 0),
            };
        }
        h
    }

    /// Lexicographic comparison of two rows' key cells under
    /// [`Value`]'s total order.
    pub fn key_cmp_rows(&self, a: usize, b: usize, key: &[usize]) -> Ordering {
        for &k in key {
            let (ca, cb) = match self.cols.get(k) {
                Some(c) => (c.cell(a), c.cell(b)),
                None => continue,
            };
            match ca.cmp(cb) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Lexicographic comparison of one row's key cells against a
    /// record's key fields under [`Value`]'s total order.
    pub fn key_cmp_record(&self, row: usize, rec: &Record, key: &[usize]) -> Ordering {
        for &k in key {
            let ca = match self.cols.get(k) {
                Some(c) => c.cell(row),
                None => Cell::Null,
            };
            match ca.cmp(Cell::of_value(rec.field(k))) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `true` iff any key cell of `row` is null (mirrors the engine's
    /// `key_has_null` row helper).
    pub fn key_has_null(&self, row: usize, key: &[usize]) -> bool {
        key.iter().any(|&k| self.is_null_at(row, k))
    }

    /// Row-wise equality against a materialized record (arity must
    /// match the batch width, like [`Record`] equality).
    pub fn row_eq_record(&self, row: usize, rec: &Record) -> bool {
        self.width() == rec.arity()
            && self
                .cols
                .iter()
                .enumerate()
                .all(|(c, col)| col.cell(row).cmp(Cell::of_value(rec.field(c))) == Ordering::Equal)
    }

    /// Row-wise equality across two columnar batches.
    pub fn row_eq_row(&self, row: usize, other: &ColumnBatch, other_row: usize) -> bool {
        self.width() == other.width()
            && self
                .cols
                .iter()
                .zip(&other.cols)
                .all(|(a, b)| a.cell(row).cmp(b.cell(other_row)) == Ordering::Equal)
    }
}

/// A copyable borrowed view of one row of a [`ColumnBatch`] — the
/// "cheap row view" operators use to consume columnar batches without
/// materializing records.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    batch: &'a ColumnBatch,
    row: usize,
}

impl RowRef<'_> {
    /// The row's arity (the batch width).
    #[inline]
    pub fn arity(&self) -> usize {
        self.batch.width()
    }

    /// Owned value of field `col`; null when out of range, mirroring
    /// [`Record::field`].
    #[inline]
    pub fn value(&self, col: usize) -> Value {
        self.batch.value_at(self.row, col)
    }

    /// Materializes the row as a [`Record`].
    pub fn to_record(&self) -> Record {
        self.batch.row_record(self.row)
    }
}

/// Schema-aware builder assembling a [`ColumnBatch`] row by row.
#[derive(Debug, Clone)]
pub struct BatchBuilder {
    rows: usize,
    cols: Vec<Column>,
}

impl BatchBuilder {
    /// A builder for `width`-attribute rows. Columns start in the
    /// zero-storage all-null representation.
    pub fn new(width: usize) -> Self {
        BatchBuilder {
            rows: 0,
            cols: (0..width).map(|_| Column::Null { rows: 0 }).collect(),
        }
    }

    /// Rows appended so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` iff nothing has been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The target width.
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Appends a record; fields beyond the record's arity are null.
    /// The record must not be wider than the builder.
    pub fn push_record(&mut self, r: &Record) {
        debug_assert!(r.arity() <= self.width(), "record wider than batch");
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.push(r.field(c));
        }
        self.rows += 1;
    }

    /// Appends a narrow record widened to the global layout: column
    /// `c` takes the record's field `map[c]` when `map[c]` is `Some`,
    /// else null. This fuses the engine's `widen` step into batch
    /// construction.
    pub fn push_widened(&mut self, r: &Record, map: &[Option<usize>]) {
        debug_assert_eq!(map.len(), self.cols.len());
        for (col, m) in self.cols.iter_mut().zip(map) {
            match m {
                Some(i) => col.push(r.field(*i)),
                None => col.push(&Value::Null),
            }
        }
        self.rows += 1;
    }

    /// Appends row `row` of `src` (the scatter-routing gather path).
    /// The source batch must have the same width.
    pub fn append_row(&mut self, src: &ColumnBatch, row: usize) {
        debug_assert_eq!(src.width(), self.width());
        for (col, s) in self.cols.iter_mut().zip(&src.cols) {
            col.push_cell(s, row);
        }
        self.rows += 1;
    }

    /// Finishes the batch, resetting the builder to empty with the
    /// same width.
    pub fn take(&mut self) -> ColumnBatch {
        let width = self.width();
        let b = std::mem::replace(self, BatchBuilder::new(width));
        ColumnBatch {
            rows: b.rows,
            cols: b.cols,
        }
    }

    /// Finishes the batch.
    pub fn finish(self) -> ColumnBatch {
        ColumnBatch {
            rows: self.rows,
            cols: self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHasher;
    use std::hash::{Hash, Hasher};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::from_values([
                Value::Int(1),
                Value::str("alpha"),
                Value::Null,
                Value::Float(1.5),
            ]),
            Record::from_values([Value::Int(2), Value::Null, Value::Null, Value::Float(-0.0)]),
            Record::from_values([Value::Null, Value::str("beta"), Value::Null, Value::Null]),
            Record::from_values([
                Value::Int(4),
                Value::str(""),
                Value::Null,
                Value::Float(f64::NAN),
            ]),
        ]
    }

    fn build(records: &[Record], width: usize) -> ColumnBatch {
        let mut b = BatchBuilder::new(width);
        for r in records {
            b.push_record(r);
        }
        b.finish()
    }

    fn row_key_hash(r: &Record, key: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        for &k in key {
            r.field(k).hash(&mut h);
        }
        h.finish()
    }

    #[test]
    fn roundtrip_is_identity() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        assert_eq!(cb.len(), 4);
        assert_eq!(cb.width(), 4);
        assert_eq!(cb.to_records(), recs);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(cb.row_record(i), *r);
            assert!(cb.row_eq_record(i, r));
            assert_eq!(cb.row(i).to_record(), *r);
        }
    }

    #[test]
    fn all_null_column_stores_nothing() {
        let cb = build(&sample_records(), 4);
        assert!(matches!(cb.columns()[2], Column::Null { rows: 4 }));
    }

    #[test]
    fn mixed_column_promotion() {
        let recs = vec![
            Record::from_values([Value::Int(1)]),
            Record::from_values([Value::str("x")]),
            Record::from_values([Value::Null]),
        ];
        let cb = build(&recs, 1);
        assert!(matches!(cb.columns()[0], Column::Mixed(_)));
        assert_eq!(cb.to_records(), recs);
    }

    #[test]
    fn encoded_len_matches_row_sum() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        let want: usize = recs.iter().map(Record::encoded_len).sum();
        assert_eq!(cb.encoded_len(), want);
        let mut per_row = Vec::new();
        cb.row_encoded_lens(&mut per_row);
        assert_eq!(
            per_row,
            recs.iter().map(Record::encoded_len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn key_hash_matches_row_path() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        for key in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![3],
            vec![0, 1],
            vec![3, 0, 2],
            vec![9],
        ] {
            let mut hashes = Vec::new();
            cb.key_hash_into(&key, &mut hashes);
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(hashes[i], row_key_hash(r, &key), "key {key:?} row {i}");
                assert_eq!(cb.key_hash_row(i, &key), hashes[i]);
            }
        }
    }

    #[test]
    fn key_cmp_matches_value_order() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        let key = [0usize, 3];
        for a in 0..recs.len() {
            for b in 0..recs.len() {
                let want = key
                    .iter()
                    .map(|&k| recs[a].field(k).cmp(recs[b].field(k)))
                    .find(|o| *o != Ordering::Equal)
                    .unwrap_or(Ordering::Equal);
                assert_eq!(cb.key_cmp_rows(a, b, &key), want, "rows {a} vs {b}");
                assert_eq!(cb.key_cmp_record(a, &recs[b], &key), want);
            }
        }
    }

    #[test]
    fn key_has_null_mirrors_rows() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        for (i, r) in recs.iter().enumerate() {
            for key in [vec![0usize], vec![2], vec![0, 1]] {
                let want = key.iter().any(|&k| r.field(k).is_null());
                assert_eq!(cb.key_has_null(i, &key), want);
            }
        }
    }

    #[test]
    fn scatter_gather_append_row() {
        let recs = sample_records();
        let cb = build(&recs, 4);
        let mut even = BatchBuilder::new(4);
        let mut odd = BatchBuilder::new(4);
        for row in 0..cb.len() {
            if row % 2 == 0 {
                even.append_row(&cb, row);
            } else {
                odd.append_row(&cb, row);
            }
        }
        assert_eq!(
            even.finish().to_records(),
            vec![recs[0].clone(), recs[2].clone()]
        );
        assert_eq!(
            odd.finish().to_records(),
            vec![recs[1].clone(), recs[3].clone()]
        );
    }

    #[test]
    fn push_widened_pads_with_nulls() {
        // Narrow 2-field records widened to width 4 at columns 1 and 3.
        let map = [None, Some(0usize), None, Some(1usize)];
        let mut b = BatchBuilder::new(4);
        let r = Record::from_values([Value::Int(7), Value::str("p")]);
        b.push_widened(&r, &map);
        let cb = b.finish();
        assert_eq!(
            cb.row_record(0),
            Record::from_values([Value::Null, Value::Int(7), Value::Null, Value::str("p")])
        );
    }

    #[test]
    fn take_resets_builder() {
        let mut b = BatchBuilder::new(1);
        b.push_record(&Record::from_values([Value::Int(1)]));
        let first = b.take();
        assert_eq!(first.len(), 1);
        assert!(b.is_empty());
        b.push_record(&Record::from_values([Value::Int(2)]));
        assert_eq!(
            b.finish().to_records(),
            vec![Record::from_values([Value::Int(2)])]
        );
    }

    #[test]
    fn null_density_counters() {
        let cb = build(&sample_records(), 4);
        // Col 0: 1 null; col 1: 1 null; col 2: 4 nulls; col 3: 1 null.
        assert_eq!(cb.null_cells(), 7);
        assert_eq!(cb.total_cells(), 16);
    }
}
