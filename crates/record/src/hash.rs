//! Fast non-cryptographic hashing.
//!
//! The engine hash-partitions records by key on every repartitioning ship
//! strategy and the optimizer memoizes canonical plan forms; both are hot
//! paths where SipHash (std's default) is needlessly slow for short keys.
//! [`FxHasher`] implements the well-known FxHash algorithm (as used by the
//! Rust compiler); it is not DoS-resistant, which is acceptable for an
//! in-process engine processing trusted data.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative constant of FxHash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One FxHash mixing step: folds `word` into `hash`.
///
/// This is the exact state transition [`FxHasher`] applies per written
/// word. It is exposed so columnar kernels can hash a key column in a
/// tight loop while staying bit-identical with hashing the equivalent
/// row values through [`FxHasher`].
#[inline]
pub fn fx_add(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Folds a byte slice into `hash` exactly as [`FxHasher::write`] does:
/// 8-byte little-endian words, then the zero-padded tail XOR its length.
#[inline]
pub fn fx_add_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        hash = fx_add(hash, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        hash = fx_add(hash, u64::from_le_bytes(buf) ^ rem.len() as u64);
    }
    hash
}

/// The FxHash hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = fx_add(self.hash, word);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.hash = fx_add_bytes(self.hash, bytes);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with FxHash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes any `Hash` value with FxHash — used for partitioning records and
/// canonicalizing plans.
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_eq!(fx_hash(&"abc"), fx_hash(&"abc"));
    }

    #[test]
    fn discriminates_simple_inputs() {
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        assert_ne!(fx_hash(&"a"), fx_hash(&"b"));
        assert_ne!(fx_hash(&(1u8, 2u8)), fx_hash(&(2u8, 1u8)));
    }

    #[test]
    fn byte_tails_are_hashed() {
        // Inputs differing only in a sub-8-byte tail must differ.
        assert_ne!(fx_hash(&[1u8, 2, 3]), fx_hash(&[1u8, 2, 4]));
        assert_ne!(fx_hash(&[0u8; 3][..]), fx_hash(&[0u8; 4][..]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("k", 1);
        assert_eq!(m["k"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }

    #[test]
    fn fx_add_agrees_with_hasher_writes() {
        let mut h = FxHasher::default();
        h.write_u8(2);
        h.write_i64(-7);
        let manual = fx_add(fx_add(0, 2), (-7i64) as u64);
        assert_eq!(h.finish(), manual);

        let mut h = FxHasher::default();
        h.write(b"hello fx world");
        assert_eq!(h.finish(), fx_add_bytes(0, b"hello fx world"));
    }

    #[test]
    fn distribution_smoke() {
        // 10k consecutive integers should hit most of 64 buckets.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            buckets[(fx_hash(&i) % 64) as usize] += 1;
        }
        let non_empty = buckets.iter().filter(|&&c| c > 0).count();
        assert!(non_empty >= 60, "poor distribution: {non_empty}/64");
    }
}
