//! # strato-record — data model for the Stratosphere-style record data flow
//!
//! This crate implements the data model of Section 2.2 of
//! *"Opening the Black Boxes in Data Flow Optimization"* (Hueske et al.,
//! VLDB 2012):
//!
//! * a [`Value`] is a dynamically typed field value,
//! * a [`Record`] is an ordered tuple of values `⟨v1, …, vm⟩`,
//! * a [`DataSet`] is an **unordered list** (bag) of records
//!   `D = [r1, …, rn]`; two data sets are equal (`D1 ≡ D2`) when some
//!   reordering of their records makes them pairwise equal,
//! * the **global record** `A` (Definition 1) is a unique naming of all base
//!   and intermediate attributes of a data flow, and the **redirection map**
//!   α maps every local field index of every (base or intermediate) data set
//!   to the corresponding global attribute,
//! * an [`AttrSet`] is a compact bitset over global attributes used for read
//!   sets, write sets and all ROC/KGP condition checks.
//!
//! The crate also provides a small wire format ([`wire`]) used by the
//! execution engine to account for shipped bytes, a fast non-cryptographic
//! hasher ([`hash::FxHasher`]) used for hash partitioning and memo tables,
//! and [`RecordBatch`] — the unit in which the execution engine moves
//! records between physical operators. Batches on the engine's hot scan
//! and shuffle paths are stored column-major ([`columns`]): per-attribute
//! value vectors with null masks, vectorized key-hash/compare kernels,
//! and cheap [`columns::RowRef`] row views for row-at-a-time consumers.
//!
//! ## Null-as-absent convention
//!
//! Tuples flow through the engine in **global record layout**: the width of
//! every tuple equals the number of global attributes, and attributes that a
//! record does not (yet) carry are [`Value::Null`]. `Null` therefore doubles
//! as "absent". The convention has SQL flavour: null join keys match
//! nothing, null grouping keys form a single group, and explicitly
//! projecting a field (the paper's `setField(or, n, null)`) makes it absent.

#![warn(missing_docs)]

pub mod attr;
pub mod batch;
pub mod columns;
pub mod dataset;
pub mod hash;
pub mod record;
pub mod value;
pub mod wire;

pub use attr::{AttrId, AttrSet, GlobalRecord, Redirection};
pub use batch::RecordBatch;
pub use columns::{BatchBuilder, ColumnBatch, RowRef};
pub use dataset::DataSet;
pub use record::Record;
pub use value::Value;
