//! Dynamically typed field values.
//!
//! The paper leaves "the semantics of the values, including their type" to
//! the user-defined functions that manipulate them (Section 2.2). [`Value`]
//! is the dynamic value universe shared by the IR interpreter, the PACT
//! engine and the workload generators.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed field value.
///
/// `Value` implements *total* equality and ordering (floats are compared via
/// [`f64::total_cmp`]) so that records can be used as grouping keys and data
/// sets can be compared as bags deterministically.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// The null value. Also used as "attribute absent" in global-record
    /// layout (see the crate docs).
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Compared with total ordering.
    Float(f64),
    /// Immutable interned string (cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns `true` iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if any.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload, if any.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if any.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness used by IR conditional branches: `Null`/`false`/`0`/`0.0`/
    /// empty string are false, everything else is true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// A small integer identifying the type, used for cross-type ordering
    /// (and by the columnar hash kernels, which must mirror [`Hash`]).
    pub(crate) fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Approximate serialized size in bytes; used by the cost model and the
    /// shipping byte accounting (must agree with [`crate::wire`]).
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Cross-type comparison keeps Int(2) distinct from Float(2.0):
            // black-box equality must be bit-faithful so that reordered
            // plans compare identically. Order by type rank.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Int(i) => state.write_i64(*i),
            Value::Float(f) => state.write_u64(f.to_bits()),
            Value::Str(s) => state.write(s.as_bytes()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_is_default_and_absent() {
        assert!(Value::default().is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(Value::Float(0.5).truthy());
        assert!(Value::str("x").truthy());
    }

    #[test]
    fn total_order_on_floats_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < Value::Float(f64::NAN));
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Float(0.0));
    }

    #[test]
    fn cross_type_ordering_is_by_type_rank() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Float(f64::INFINITY) < Value::str(""));
    }

    #[test]
    fn int_and_float_are_distinct_values() {
        assert_ne!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn string_comparison_is_by_content() {
        // Regression: a missing (Str, Str) arm in cmp once made ALL strings
        // compare equal, silently corrupting string grouping and filtering.
        assert_ne!(Value::str("FRANCE"), Value::str("GERMANY"));
        assert_eq!(Value::str("FRANCE"), Value::str("FRANCE"));
        assert!(Value::str("ALPHA") < Value::str("BETA"));
        assert!(Value::str("b") > Value::str("a"));
        assert_ne!(h(&Value::str("x")), h(&Value::str("y")));
    }

    #[test]
    fn hash_eq_consistency_for_unequal_strings() {
        // Eq and Hash must agree: unequal values that hashed differently
        // but compared equal split reduce groups across partitions.
        let a = Value::str("NATION_18");
        let b = Value::str("NATION_09");
        assert_ne!(a, b);
    }

    #[test]
    fn hash_agrees_with_eq() {
        let a = Value::str("hello");
        let b = Value::str("hello");
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&Value::Float(f64::NAN)), h(&Value::Float(f64::NAN)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::str("x").as_float(), None);
    }

    #[test]
    fn encoded_len_matches_wire_expectations() {
        assert_eq!(Value::Null.encoded_len(), 1);
        assert_eq!(Value::Bool(true).encoded_len(), 2);
        assert_eq!(Value::Int(7).encoded_len(), 9);
        assert_eq!(Value::str("abc").encoded_len(), 8);
    }
}
