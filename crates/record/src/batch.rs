//! Record batches: the unit of data flow between physical operators.
//!
//! The execution engine moves records between operators in batches rather
//! than as fully materialized per-operator vectors. A [`RecordBatch`] is an
//! ordered run of records that is produced once and then treated as
//! immutable; the engine wraps batches in [`std::sync::Arc`] so that
//! broadcast shipping can hand the *same* batch to every partition without
//! deep-cloning records.
//!
//! A batch holds its rows in one of two representations:
//!
//! * **row-major** — a `Vec<Record>`, the layout UDF emission paths
//!   produce naturally (records may have ragged arity there);
//! * **columnar** — a [`ColumnBatch`] of per-attribute value vectors
//!   with null masks (see [`crate::columns`]), produced by the scan and
//!   scatter paths where every row is in uniform global layout.
//!
//! Operators dispatch on [`RecordBatch::columns`]: columnar consumers
//! run vectorized kernels, row-path consumers either iterate cheap
//! [`RowRef`] views or materialize via [`RecordBatch::into_records`].

use crate::columns::{ColumnBatch, RowRef};
use crate::record::Record;

/// The physical representation behind a [`RecordBatch`].
#[derive(Debug, Clone)]
enum Repr {
    Rows(Vec<Record>),
    Columns(ColumnBatch),
}

/// An immutable-after-construction run of records.
///
/// Batches carry no schema of their own: records inside the engine are
/// always in global-record layout (see the crate docs), so the batch is a
/// plain container with byte accounting. Batches built from
/// [`ColumnBatch`]es store rows column-major; see the module docs.
#[derive(Debug, Clone)]
pub struct RecordBatch {
    repr: Repr,
}

impl Default for RecordBatch {
    fn default() -> Self {
        RecordBatch {
            repr: Repr::Rows(Vec::new()),
        }
    }
}

impl RecordBatch {
    /// Default number of records per batch used by the execution engine.
    pub const DEFAULT_SIZE: usize = 1024;

    /// Creates an empty (row-major) batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a row-major batch owning the given records.
    pub fn from_records(records: Vec<Record>) -> Self {
        RecordBatch {
            repr: Repr::Rows(records),
        }
    }

    /// Creates a columnar batch from per-attribute column vectors.
    pub fn from_columns(cols: ColumnBatch) -> Self {
        RecordBatch {
            repr: Repr::Columns(cols),
        }
    }

    /// Number of records in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Rows(r) => r.len(),
            Repr::Columns(c) => c.len(),
        }
    }

    /// `true` iff the batch holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a record (only meaningful while building a row-major
    /// batch).
    ///
    /// # Panics
    /// Panics on a columnar batch — columnar batches are assembled
    /// through [`BatchBuilder`](crate::columns::BatchBuilder) and
    /// immutable afterwards.
    pub fn push(&mut self, r: Record) {
        match &mut self.repr {
            Repr::Rows(recs) => recs.push(r),
            Repr::Columns(_) => panic!("RecordBatch::push on a columnar batch"),
        }
    }

    /// The columnar storage, when this batch is column-major.
    #[inline]
    pub fn columns(&self) -> Option<&ColumnBatch> {
        match &self.repr {
            Repr::Rows(_) => None,
            Repr::Columns(c) => Some(c),
        }
    }

    /// Read-only view of the records of a row-major batch.
    ///
    /// # Panics
    /// Panics on a columnar batch: a column store has no `&[Record]`
    /// to lend. Dispatch on [`RecordBatch::columns`] first, or use
    /// [`RecordBatch::into_records`] / [`RecordBatch::to_records`].
    #[inline]
    pub fn records(&self) -> &[Record] {
        match &self.repr {
            Repr::Rows(r) => r,
            Repr::Columns(_) => panic!("RecordBatch::records on a columnar batch"),
        }
    }

    /// Consumes the batch, returning its records (materializing them
    /// column-wise, with moved payloads, for columnar batches).
    pub fn into_records(self) -> Vec<Record> {
        match self.repr {
            Repr::Rows(r) => r,
            Repr::Columns(c) => c.into_records(),
        }
    }

    /// Consumes the batch, returning its columnar storage when
    /// column-major (`None` for row-major batches).
    pub fn into_columns(self) -> Option<ColumnBatch> {
        match self.repr {
            Repr::Rows(_) => None,
            Repr::Columns(c) => Some(c),
        }
    }

    /// Clones the rows out as records, materializing columnar batches.
    pub fn to_records(&self) -> Vec<Record> {
        match &self.repr {
            Repr::Rows(r) => r.clone(),
            Repr::Columns(c) => c.to_records(),
        }
    }

    /// A cheap row view for columnar batches; `None` when row-major.
    #[inline]
    pub fn row_view(&self, row: usize) -> Option<RowRef<'_>> {
        self.columns().map(|c| c.row(row))
    }

    /// Iterates over the records of a row-major batch.
    ///
    /// # Panics
    /// Panics on a columnar batch (see [`RecordBatch::records`]).
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records().iter()
    }

    /// Total approximate serialized size in bytes (sum of
    /// [`Record::encoded_len`]). Used for shipping byte accounting.
    /// Columnar batches compute this column-wise; both layouts agree
    /// exactly.
    pub fn encoded_len(&self) -> usize {
        match &self.repr {
            Repr::Rows(r) => r.iter().map(Record::encoded_len).sum(),
            Repr::Columns(c) => c.encoded_len(),
        }
    }

    /// Splits a record vector into batches of at most `size` records.
    /// `size == 0` is clamped to 1. An empty input yields no batches.
    pub fn chunked(records: Vec<Record>, size: usize) -> Vec<RecordBatch> {
        let size = size.max(1);
        if records.len() <= size {
            return if records.is_empty() {
                Vec::new()
            } else {
                vec![RecordBatch::from_records(records)]
            };
        }
        let mut out = Vec::with_capacity(records.len().div_ceil(size));
        let mut it = records.into_iter();
        loop {
            let chunk: Vec<Record> = it.by_ref().take(size).collect();
            if chunk.is_empty() {
                break;
            }
            out.push(RecordBatch::from_records(chunk));
        }
        out
    }
}

impl PartialEq for RecordBatch {
    /// Logical equality: same row sequence, regardless of layout.
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Rows(a), Repr::Rows(b)) => a == b,
            (Repr::Columns(a), Repr::Columns(b)) => (0..a.len()).all(|i| a.row_eq_row(i, b, i)),
            (Repr::Columns(c), Repr::Rows(r)) | (Repr::Rows(r), Repr::Columns(c)) => {
                r.iter().enumerate().all(|(i, rec)| c.row_eq_record(i, rec))
            }
        }
    }
}

impl Eq for RecordBatch {}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Self {
        RecordBatch {
            repr: Repr::Rows(iter.into_iter().collect()),
        }
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_records().into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    /// Borrowing iteration is row-major only (see
    /// [`RecordBatch::records`]).
    fn into_iter(self) -> Self::IntoIter {
        self.records().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::BatchBuilder;
    use crate::value::Value;

    fn rec(v: i64) -> Record {
        Record::from_values([Value::Int(v)])
    }

    #[test]
    fn build_and_read() {
        let mut b = RecordBatch::new();
        assert!(b.is_empty());
        b.push(rec(1));
        b.push(rec(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.records()[1], rec(2));
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn chunking_splits_evenly_and_unevenly() {
        let recs: Vec<Record> = (0..7).map(rec).collect();
        let chunks = RecordBatch::chunked(recs, 3);
        assert_eq!(
            chunks.iter().map(RecordBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        // Order is preserved across chunks.
        let flat: Vec<Record> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..7).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_edge_cases() {
        assert!(RecordBatch::chunked(vec![], 4).is_empty());
        // Zero size is clamped to 1.
        assert_eq!(RecordBatch::chunked(vec![rec(1), rec(2)], 0).len(), 2);
        // Fits in one batch: no re-allocation of the record vector.
        let one = RecordBatch::chunked(vec![rec(1)], 10);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 1);
    }

    #[test]
    fn encoded_len_sums_records() {
        let b: RecordBatch = [rec(1), rec(2)].into_iter().collect();
        assert_eq!(b.encoded_len(), 2 * (4 + 9));
    }

    #[test]
    fn into_records_roundtrip() {
        let recs: Vec<Record> = (0..3).map(rec).collect();
        let b = RecordBatch::from_records(recs.clone());
        assert_eq!(b.into_records(), recs);
    }

    #[test]
    fn columnar_batch_behaves_like_rows() {
        let recs: Vec<Record> = (0..5).map(rec).collect();
        let mut builder = BatchBuilder::new(1);
        for r in &recs {
            builder.push_record(r);
        }
        let col = RecordBatch::from_columns(builder.finish());
        let row = RecordBatch::from_records(recs.clone());
        assert_eq!(col.len(), 5);
        assert!(col.columns().is_some());
        assert_eq!(col.encoded_len(), row.encoded_len());
        // Logical equality across layouts.
        assert_eq!(col, row);
        assert_eq!(col.clone().into_records(), recs);
        assert_eq!(col.to_records(), recs);
        assert_eq!(col.row_view(2).unwrap().to_record(), recs[2]);
    }

    #[test]
    #[should_panic(expected = "columnar batch")]
    fn records_panics_on_columnar() {
        let mut builder = BatchBuilder::new(1);
        builder.push_record(&rec(1));
        let b = RecordBatch::from_columns(builder.finish());
        let _ = b.records();
    }
}
