//! Record batches: the unit of data flow between physical operators.
//!
//! The execution engine moves records between operators in batches rather
//! than as fully materialized per-operator vectors. A [`RecordBatch`] is an
//! ordered run of records that is produced once and then treated as
//! immutable; the engine wraps batches in [`std::sync::Arc`] so that
//! broadcast shipping can hand the *same* batch to every partition without
//! deep-cloning records.

use crate::record::Record;

/// An immutable-after-construction run of records.
///
/// Batches carry no schema of their own: records inside the engine are
/// always in global-record layout (see the crate docs), so the batch is a
/// plain container with byte accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordBatch {
    records: Vec<Record>,
}

impl RecordBatch {
    /// Default number of records per batch used by the execution engine.
    pub const DEFAULT_SIZE: usize = 1024;

    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch owning the given records.
    pub fn from_records(records: Vec<Record>) -> Self {
        RecordBatch { records }
    }

    /// Number of records in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the batch holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record (only meaningful while building a batch).
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Read-only view of the records.
    #[inline]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the batch, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Total approximate serialized size in bytes (sum of
    /// [`Record::encoded_len`]). Used for shipping byte accounting.
    pub fn encoded_len(&self) -> usize {
        self.records.iter().map(Record::encoded_len).sum()
    }

    /// Splits a record vector into batches of at most `size` records.
    /// `size == 0` is clamped to 1. An empty input yields no batches.
    pub fn chunked(records: Vec<Record>, size: usize) -> Vec<RecordBatch> {
        let size = size.max(1);
        if records.len() <= size {
            return if records.is_empty() {
                Vec::new()
            } else {
                vec![RecordBatch::from_records(records)]
            };
        }
        let mut out = Vec::with_capacity(records.len().div_ceil(size));
        let mut it = records.into_iter();
        loop {
            let chunk: Vec<Record> = it.by_ref().take(size).collect();
            if chunk.is_empty() {
                break;
            }
            out.push(RecordBatch::from_records(chunk));
        }
        out
    }
}

impl FromIterator<Record> for RecordBatch {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Self {
        RecordBatch {
            records: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for RecordBatch {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rec(v: i64) -> Record {
        Record::from_values([Value::Int(v)])
    }

    #[test]
    fn build_and_read() {
        let mut b = RecordBatch::new();
        assert!(b.is_empty());
        b.push(rec(1));
        b.push(rec(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.records()[1], rec(2));
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn chunking_splits_evenly_and_unevenly() {
        let recs: Vec<Record> = (0..7).map(rec).collect();
        let chunks = RecordBatch::chunked(recs, 3);
        assert_eq!(
            chunks.iter().map(RecordBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        // Order is preserved across chunks.
        let flat: Vec<Record> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..7).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn chunking_edge_cases() {
        assert!(RecordBatch::chunked(vec![], 4).is_empty());
        // Zero size is clamped to 1.
        assert_eq!(RecordBatch::chunked(vec![rec(1), rec(2)], 0).len(), 2);
        // Fits in one batch: no re-allocation of the record vector.
        let one = RecordBatch::chunked(vec![rec(1)], 10);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 1);
    }

    #[test]
    fn encoded_len_sums_records() {
        let b: RecordBatch = [rec(1), rec(2)].into_iter().collect();
        assert_eq!(b.encoded_len(), 2 * (4 + 9));
    }

    #[test]
    fn into_records_roundtrip() {
        let recs: Vec<Record> = (0..3).map(rec).collect();
        let b = RecordBatch::from_records(recs.clone());
        assert_eq!(b.into_records(), recs);
    }
}
