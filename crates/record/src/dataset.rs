//! Data sets with bag (multiset) semantics.

use crate::record::Record;
use std::collections::BTreeMap;
use std::fmt;

/// An unordered list (bag) of records, `D = [r1, …, rn]`.
///
/// Equality follows Definition 2.2 of the paper: `D1 ≡ D2` iff there exist
/// orderings of their records making them pairwise equal — i.e. multiset
/// equality. [`PartialEq`] implements exactly that (it is order-insensitive),
/// which is what every plan-equivalence test in this repository relies on.
#[derive(Debug, Clone, Default)]
pub struct DataSet {
    records: Vec<Record>,
}

impl DataSet {
    /// Creates an empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a data set from records.
    pub fn from_records(records: Vec<Record>) -> Self {
        DataSet { records }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the data set holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Read-only view of the records (in internal, arbitrary order).
    #[inline]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the data set, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Total approximate serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.records.iter().map(Record::encoded_len).sum()
    }

    /// Returns a canonically sorted copy of the records — a stable textual
    /// witness for golden tests and debugging.
    pub fn sorted(&self) -> Vec<Record> {
        let mut v = self.records.clone();
        v.sort_unstable();
        v
    }

    /// Multiset equality with a counterexample: returns `Ok(())` when the
    /// bags are equal, otherwise a human-readable explanation of the first
    /// difference. Used by the plan-equivalence harness so failures are
    /// debuggable.
    pub fn bag_diff(&self, other: &DataSet) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!(
                "cardinality mismatch: {} vs {} records",
                self.len(),
                other.len()
            ));
        }
        let mut counts: BTreeMap<&Record, i64> = BTreeMap::new();
        for r in &self.records {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in &other.records {
            match counts.get_mut(r) {
                Some(c) => *c -= 1,
                None => return Err(format!("record {r} present only on the right")),
            }
        }
        for (r, c) in counts {
            if c != 0 {
                return Err(format!(
                    "record {r} has multiplicity difference {c} (left minus right)"
                ));
            }
        }
        Ok(())
    }
}

impl PartialEq for DataSet {
    /// Multiset (bag) equality, per the paper's `≡` relation on data sets.
    fn eq(&self, other: &Self) -> bool {
        self.bag_diff(other).is_ok()
    }
}

impl Eq for DataSet {}

impl FromIterator<Record> for DataSet {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Self {
        DataSet {
            records: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for DataSet {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a DataSet {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} records]", self.records.len())?;
        for r in self.sorted().iter().take(20) {
            writeln!(f, "  {r}")?;
        }
        if self.records.len() > 20 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rec(vals: &[i64]) -> Record {
        Record::from_values(vals.iter().map(|&v| Value::Int(v)))
    }

    fn ds(rows: &[&[i64]]) -> DataSet {
        rows.iter().map(|r| rec(r)).collect()
    }

    #[test]
    fn bag_equality_ignores_order() {
        assert_eq!(ds(&[&[1], &[2], &[3]]), ds(&[&[3], &[1], &[2]]));
    }

    #[test]
    fn bag_equality_respects_multiplicity() {
        assert_ne!(ds(&[&[1], &[1], &[2]]), ds(&[&[1], &[2], &[2]]));
        assert_eq!(ds(&[&[1], &[1]]), ds(&[&[1], &[1]]));
    }

    #[test]
    fn bag_diff_reports_cardinality() {
        let err = ds(&[&[1]]).bag_diff(&ds(&[&[1], &[2]])).unwrap_err();
        assert!(err.contains("cardinality"), "{err}");
    }

    #[test]
    fn bag_diff_reports_missing_record() {
        let err = ds(&[&[1], &[2]]).bag_diff(&ds(&[&[1], &[3]])).unwrap_err();
        assert!(err.contains("⟨3⟩"), "{err}");
    }

    #[test]
    fn empty_sets_are_equal() {
        assert_eq!(DataSet::new(), DataSet::new());
        assert!(DataSet::new().is_empty());
    }

    #[test]
    fn sorted_is_canonical() {
        let a = ds(&[&[3], &[1], &[2]]);
        let b = ds(&[&[2], &[3], &[1]]);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn push_and_len() {
        let mut d = DataSet::new();
        d.push(rec(&[7]));
        assert_eq!(d.len(), 1);
        assert_eq!(d.records()[0], rec(&[7]));
    }

    #[test]
    fn encoded_len_sums_records() {
        let d = ds(&[&[1], &[2]]);
        assert_eq!(d.encoded_len(), 2 * (4 + 9));
    }
}
