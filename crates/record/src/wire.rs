//! Binary wire format for records.
//!
//! The execution engine serializes records whenever a ship strategy moves
//! them "across the network" (hash repartitioning or broadcast), both to
//! account network IO in bytes — the dominant term of the paper's cost
//! model — and to keep the simulated engine honest about serialization
//! costs. The format is a simple length-prefixed tag-value encoding.

use crate::record::Record;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Errors produced while decoding a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An unknown type tag was encountered.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Encodes a record into `buf`, returning the number of bytes written.
pub fn encode_record(r: &Record, buf: &mut BytesMut) -> usize {
    let start = buf.len();
    buf.put_u32_le(r.arity() as u32);
    for v in r.fields() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(*b as u8);
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(x) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*x);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    buf.len() - start
}

/// Length of the per-record frame header (a little-endian `u32` byte
/// count) used wherever records are framed in a byte stream: spill run
/// files and the opt-in wire-validation round-trip share this format.
pub const FRAME_HEADER_LEN: usize = 4;

/// Encodes `r` as a length-framed record — `u32`-le body length, then
/// the body — returning the total bytes appended (header + body).
///
/// This is the single framing rule shared by the spill subsystem and
/// the shipping validation path, so `encoded_len`-style accounting is
/// derived in exactly one place.
pub fn encode_framed(r: &Record, buf: &mut BytesMut) -> usize {
    let at = buf.len();
    buf.put_u32_le(0);
    let n = encode_record(r, buf);
    buf[at..at + FRAME_HEADER_LEN].copy_from_slice(&(n as u32).to_le_bytes());
    n + FRAME_HEADER_LEN
}

/// Decodes one length-framed record (see [`encode_framed`]) from the
/// front of `buf`.
pub fn decode_framed(buf: &mut impl Buf) -> Result<Record, DecodeError> {
    if buf.remaining() < FRAME_HEADER_LEN {
        return Err(DecodeError::UnexpectedEof);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    let mut body = buf.copy_to_bytes(len);
    decode_record(&mut body)
}

/// Encodes a record into a standalone buffer.
pub fn encode_to_bytes(r: &Record) -> Bytes {
    let mut buf = BytesMut::with_capacity(r.encoded_len() + 8);
    encode_record(r, &mut buf);
    buf.freeze()
}

/// Decodes one record from the front of `buf`.
pub fn decode_record(buf: &mut impl Buf) -> Result<Record, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::UnexpectedEof);
    }
    let arity = buf.get_u32_le() as usize;
    let mut fields = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 1 {
            return Err(DecodeError::UnexpectedEof);
        }
        let tag = buf.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => {
                if buf.remaining() < 1 {
                    return Err(DecodeError::UnexpectedEof);
                }
                Value::Bool(buf.get_u8() != 0)
            }
            TAG_INT => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEof);
                }
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEof);
                }
                Value::Float(buf.get_f64_le())
            }
            TAG_STR => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::UnexpectedEof);
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DecodeError::UnexpectedEof);
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                let s = String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
                Value::Str(Arc::from(s.as_str()))
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        fields.push(v);
    }
    Ok(Record::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &Record) -> Record {
        let mut buf = BytesMut::new();
        encode_record(r, &mut buf);
        decode_record(&mut buf.freeze()).expect("decode")
    }

    #[test]
    fn roundtrips_all_value_kinds() {
        let r = Record::from_values([
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::str("hello ⟨world⟩"),
        ]);
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn roundtrips_empty_record() {
        assert_eq!(roundtrip(&Record::default()), Record::default());
    }

    #[test]
    fn encoded_len_is_exact_for_nullless_records() {
        // Record::encoded_len skips nulls (cost model view); the wire format
        // spends 1 byte per null tag. For null-free records both agree.
        let r = Record::from_values([Value::Int(1), Value::str("ab")]);
        let mut buf = BytesMut::new();
        let n = encode_record(&r, &mut buf);
        assert_eq!(n, r.encoded_len());
    }

    #[test]
    fn framed_roundtrip_and_length() {
        let r = Record::from_values([Value::Int(1), Value::Null, Value::str("ab")]);
        let mut buf = BytesMut::new();
        let n = encode_framed(&r, &mut buf);
        // Header + body; the null field costs one wire tag byte even
        // though `encoded_len` skips it.
        assert_eq!(n, buf.len());
        assert_eq!(n, FRAME_HEADER_LEN + 4 + 9 + 1 + (1 + 4 + 2));
        let mut bytes = buf.freeze();
        assert_eq!(decode_framed(&mut bytes).unwrap(), r);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn framed_truncation_errors() {
        let r = Record::from_values([Value::Int(5)]);
        let mut buf = BytesMut::new();
        encode_framed(&r, &mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut short = bytes.slice(..cut);
            assert!(decode_framed(&mut short).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn multiple_records_in_one_buffer() {
        let a = Record::from_values([Value::Int(1)]);
        let b = Record::from_values([Value::str("x"), Value::Bool(false)]);
        let mut buf = BytesMut::new();
        encode_record(&a, &mut buf);
        encode_record(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_record(&mut bytes).unwrap(), a);
        assert_eq!(decode_record(&mut bytes).unwrap(), b);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_buffer_errors() {
        let r = Record::from_values([Value::Int(5)]);
        let bytes = encode_to_bytes(&r);
        for cut in 0..bytes.len() {
            let mut short = bytes.slice(..cut);
            assert!(
                decode_record(&mut short).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_tag_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(
            decode_record(&mut buf.freeze()),
            Err(DecodeError::BadTag(99))
        );
    }

    #[test]
    fn bad_utf8_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(TAG_STR);
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(decode_record(&mut buf.freeze()), Err(DecodeError::BadUtf8));
    }
}
