//! `strato-serve` — the resident query service.
//!
//! ```text
//! strato-serve [--addr HOST:PORT] [--max-concurrent N] [--queue-depth N]
//!              [--workers N] [--mem-budget BYTES] [--slow-query-ms N]
//! ```
//!
//! `--workers` and `--mem-budget` size the **shared engine runtime**: one
//! worker pool and one memory budget divided across all concurrent
//! queries (they are machine-wide totals, not per-query limits).

use std::process::ExitCode;
use strato_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(Some(config)) => config,
        Ok(None) => return ExitCode::SUCCESS, // --help
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "strato-serve listening on http://{addr} (max-concurrent {}, queue-depth {})",
            config.max_concurrent, config.queue_depth
        ),
        Err(_) => eprintln!("strato-serve listening on {}", config.addr),
    }
    if let Err(e) = server.run() {
        eprintln!("error: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: strato-serve [--addr HOST:PORT] [--max-concurrent N] [--queue-depth N] [--workers N] [--mem-budget BYTES] [--slow-query-ms N]
  --addr            listen address (default 127.0.0.1:8464; port 0 binds ephemerally)
  --max-concurrent  queries executing at once (default 4)
  --queue-depth     queries allowed to wait before 429 (default 16)
  --workers         threads in the shared engine pool all queries run on
                    (default: available parallelism)
  --mem-budget      machine-wide memory budget in bytes shared by all
                    concurrent queries (default 384 MiB)
  --slow-query-ms   log a one-line plan+stats summary to stderr for
                    queries slower than N milliseconds (default: off)";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Option<ServerConfig>, String> {
    let mut config = ServerConfig::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--addr" => {
                config.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--max-concurrent" => {
                config.max_concurrent = parse_count(args.next(), "--max-concurrent")?;
            }
            "--queue-depth" => {
                config.queue_depth = parse_count(args.next(), "--queue-depth")?;
            }
            "--workers" => {
                config.workers = Some(parse_count(args.next(), "--workers")?);
            }
            "--mem-budget" => {
                config.mem_budget = Some(parse_count(args.next(), "--mem-budget")? as u64);
            }
            "--slow-query-ms" => {
                config.slow_query_ms = Some(parse_count(args.next(), "--slow-query-ms")? as u64);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some(config))
}

fn parse_count(value: Option<String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<usize>()
        .map_err(|_| format!("{flag} needs a non-negative integer"))
}
