//! `strato-server` — the engine as a resident service.
//!
//! Everything below `strato-server` in the stack is a library: you hand
//! [`execute_with`](strato_exec::execute_with) a plan and get a
//! [`DataSet`](strato_record::DataSet) back, in process. This crate turns
//! that pipeline into a long-running HTTP/JSON service:
//!
//! * **`POST /v1/query`** accepts a dataflow program as JSON — a tree of
//!   sources and operators whose UDFs come from the declarative catalog
//!   of [`strato_dataflow::spec`] — optimizes it with the full
//!   enumerate-and-cost optimizer, executes it on the worker pool
//!   honoring the request's execution options (`dop`, `batch`,
//!   `combine`, `mem_budget`, `workers`), and streams result rows back
//!   as a chunked JSON response that closes with the run's execution
//!   statistics.
//! * **`GET /metrics`** exposes cumulative server and execution counters
//!   in Prometheus text format, down to per-operator series.
//! * **`GET /healthz`** is a liveness probe.
//!
//! Admission is controlled by a token-bucket gate: at most
//! `max_concurrent` queries execute at once, at most `queue_depth` more
//! wait, and everything beyond that is answered `429` immediately — with
//! a `Retry-After` header sized to the current queue depth.
//!
//! Admitted queries all execute on **one shared
//! [`EngineRuntime`](strato_exec::EngineRuntime)**: a single worker pool
//! scheduling task steps round-robin across in-flight queries, and a
//! single machine-wide memory budget their per-query grants are carved
//! from ([`ServerConfig::workers`](server::ServerConfig) /
//! `ServerConfig::mem_budget`, the bin's `--workers`/`--mem-budget`).
//! Shutdown drains in-flight queries for a bounded grace period before
//! returning, so accepted queries finish streaming their responses.
//!
//! The build environment is offline, so the crate is dependency-free in
//! the spirit of the vendored shims under `crates/shims/`: JSON codec
//! ([`json`]), HTTP layer ([`http`]), and client ([`client`]) are all
//! hand-rolled over [`std::net`].
//!
//! # In-process quickstart
//!
//! ```
//! use strato_server::{client, Server, ServerConfig};
//!
//! // Bind an ephemeral port and serve in the background.
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServerConfig::default()
//! };
//! let handle = Server::bind(&config).unwrap().spawn().unwrap();
//!
//! // k=1 rows: (1,10), (1,5); k=2 rows: (2,7) — grouped in-place sum.
//! let response = client::post_json(
//!     handle.addr(),
//!     "/v1/query",
//!     r#"{
//!       "flow": {
//!         "op": {"name": "sum", "kind": "reduce", "key": [0],
//!                "udf": {"fn": "fold", "op": "sum", "field": 1}},
//!         "inputs": [{"source": {"name": "s", "fields": ["k", "v"], "est_rows": 3}}]
//!       },
//!       "inputs": {"s": [[1, 10], [1, 5], [2, 7]]},
//!       "options": {"dop": 2, "combine": true}
//!     }"#,
//! )
//! .unwrap();
//! assert_eq!(response.status, 200);
//! assert!(response.text().starts_with(r#"{"rows":[[1,15],[2,7]]"#));
//!
//! let scrape = client::get(handle.addr(), "/metrics").unwrap();
//! assert!(scrape.text().contains("strato_queries_completed_total 1"));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod decode;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use admission::{Admission, AdmissionGate, Permit};
pub use decode::{decode_query, DecodeError, QueryRequest};
pub use handlers::AppState;
pub use json::{Json, JsonError};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig, ServerHandle};
