//! Wire-format decoding: [`Json`] request documents → [`FlowSpec`] +
//! input [`DataSet`]s + execution options.
//!
//! The request body of `POST /v1/query` is one JSON object:
//!
//! ```json
//! {
//!   "flow": {
//!     "op": {"name": "sum", "kind": "reduce", "key": [0],
//!            "udf": {"fn": "fold", "op": "sum", "field": 1}},
//!     "inputs": [
//!       {"source": {"name": "s", "fields": ["k", "v"], "est_rows": 1000}}
//!     ]
//!   },
//!   "inputs": {"s": [[1, 10], [1, 5], [2, 7]]},
//!   "options": {"dop": 2, "batch": 256, "combine": true}
//! }
//! ```
//!
//! A flow node is either `{"source": {...}}` or `{"op": {...}, "inputs":
//! [...]}`. Operator UDFs come from the declarative catalog of
//! [`strato_dataflow::spec`], selected by the `"fn"` discriminator
//! (`identity`, `filter`, `filter_range`, `burn`; `fold`, `count`;
//! `count_diff`). The decoder produces plain spec data — structural
//! validation (widths, key ranges, arity) stays in [`FlowSpec::build`].

use crate::json::Json;
use std::collections::HashMap;
use strato_dataflow::spec::{
    CmpOp, CoGroupUdf, FlowSpec, FoldOp, HintSpec, MapUdf, NodeSpec, OpKindSpec, OpSpec, ReduceUdf,
    SourceSpec,
};
use strato_exec::{ExecOptions, Inputs};
use strato_record::{DataSet, Record, Value};

/// Upper bound on the requested degree of parallelism — a network client
/// must not be able to ask for millions of partitions.
pub const MAX_DOP: usize = 64;

/// A request-shape error (well-formed JSON, wrong structure). Maps to
/// HTTP 422.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn bad(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

/// A fully decoded query: the flow to run, its input data, and how to
/// execute it.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The declarative flow (compile with [`FlowSpec::build`]).
    pub flow: FlowSpec,
    /// Input data sets keyed by source name.
    pub inputs: Inputs,
    /// Requested degree of parallelism (clamped to `1..=`[`MAX_DOP`]).
    pub dop: usize,
    /// Execution options with the request's overrides applied.
    pub exec: ExecOptions,
    /// Record an end-to-end trace and return it with the response
    /// (`"options": {"trace": true}`).
    pub trace: bool,
}

/// Decodes a parsed `POST /v1/query` body.
pub fn decode_query(doc: &Json) -> Result<QueryRequest, DecodeError> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request body must be a JSON object"));
    }
    let flow_json = doc.get("flow").ok_or_else(|| bad("missing \"flow\""))?;
    let flow = FlowSpec::new(decode_node(flow_json)?);

    let mut inputs: Inputs = HashMap::new();
    if let Some(inputs_json) = doc.get("inputs") {
        let members = match inputs_json {
            Json::Obj(members) => members,
            _ => return Err(bad("\"inputs\" must be an object of source → rows")),
        };
        for (name, rows) in members {
            inputs.insert(name.clone(), decode_rows(name, rows)?);
        }
    }

    let (dop, exec, trace) = decode_options(doc.get("options"))?;
    Ok(QueryRequest {
        flow,
        inputs,
        dop,
        exec,
        trace,
    })
}

/// Decodes one flow node (`{"source": ...}` or `{"op": ..., "inputs": ...}`).
fn decode_node(node: &Json) -> Result<NodeSpec, DecodeError> {
    if let Some(src) = node.get("source") {
        return Ok(NodeSpec::Source(decode_source(src)?));
    }
    if let Some(op) = node.get("op") {
        let inputs = node
            .get("inputs")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("operator node needs an \"inputs\" array"))?;
        let children = inputs
            .iter()
            .map(decode_node)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(NodeSpec::Op {
            op: decode_op(op)?,
            inputs: children,
        });
    }
    Err(bad("flow node must have a \"source\" or \"op\" member"))
}

fn decode_source(src: &Json) -> Result<SourceSpec, DecodeError> {
    let name = req_str(src, "name", "source")?;
    let fields = src
        .get("fields")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("source {name}: needs a \"fields\" array")))?
        .iter()
        .map(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(format!("source {name}: field names must be strings")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let est_rows = req_u64(src, "est_rows", &name)?;
    let mut spec = SourceSpec::new(name.clone(), &[], est_rows);
    spec.fields = fields;
    if let Some(b) = src.get("bytes_per_row") {
        spec.bytes_per_row = Some(
            b.as_i64()
                .filter(|v| *v >= 0)
                .ok_or_else(|| bad(format!("source {name}: bad \"bytes_per_row\"")))?
                as u64,
        );
    }
    if let Some(keys) = src.get("unique_keys") {
        let arr = keys
            .as_array()
            .ok_or_else(|| bad(format!("source {name}: \"unique_keys\" must be an array")))?;
        for k in arr {
            spec.unique_keys
                .push(decode_index_list(k, &format!("source {name} unique key"))?);
        }
    }
    Ok(spec)
}

fn decode_op(op: &Json) -> Result<OpSpec, DecodeError> {
    let name = req_str(op, "name", "operator")?;
    let kind_word = req_str(op, "kind", &name)?;
    let kind = match kind_word.as_str() {
        "map" => OpKindSpec::Map(decode_map_udf(&name, op.get("udf"))?),
        "reduce" => OpKindSpec::Reduce {
            key: decode_index_list(
                op.get("key").ok_or_else(|| bad(format!("reduce {name}: missing \"key\"")))?,
                &format!("reduce {name} key"),
            )?,
            udf: decode_reduce_udf(&name, op.get("udf"))?,
        },
        "match" => OpKindSpec::Match {
            key_left: decode_side_key(op, &name, "key_left")?,
            key_right: decode_side_key(op, &name, "key_right")?,
        },
        "cross" => OpKindSpec::Cross,
        "cogroup" => OpKindSpec::CoGroup {
            key_left: decode_side_key(op, &name, "key_left")?,
            key_right: decode_side_key(op, &name, "key_right")?,
            udf: decode_cogroup_udf(&name, op.get("udf"))?,
        },
        other => {
            return Err(bad(format!(
                "operator {name}: unknown kind {other:?} (expected map, reduce, match, cross or cogroup)"
            )))
        }
    };
    let mut spec = OpSpec {
        name,
        kind,
        hints: HintSpec::default(),
    };
    if let Some(h) = op.get("hints") {
        spec.hints = decode_hints(&spec.name, h)?;
    }
    Ok(spec)
}

fn decode_side_key(op: &Json, name: &str, side: &str) -> Result<Vec<usize>, DecodeError> {
    decode_index_list(
        op.get(side)
            .ok_or_else(|| bad(format!("operator {name}: missing {side:?}")))?,
        &format!("operator {name} {side}"),
    )
}

fn decode_map_udf(name: &str, udf: Option<&Json>) -> Result<MapUdf, DecodeError> {
    let udf = match udf {
        // A map without a UDF member is the identity.
        None => return Ok(MapUdf::Identity),
        Some(u) => u,
    };
    let f = req_str(udf, "fn", name)?;
    Ok(match f.as_str() {
        "identity" => MapUdf::Identity,
        "filter" => {
            let cmp_word = req_str(udf, "cmp", name)?;
            let cmp = CmpOp::parse(&cmp_word)
                .ok_or_else(|| bad(format!("map {name}: unknown cmp {cmp_word:?}")))?;
            MapUdf::Filter {
                field: req_index(udf, "field", name)?,
                cmp,
                value: json_to_value(
                    udf.get("value")
                        .ok_or_else(|| bad(format!("map {name}: filter needs \"value\"")))?,
                )
                .map_err(|m| bad(format!("map {name}: {m}")))?,
            }
        }
        "filter_range" => MapUdf::FilterRange {
            field: req_index(udf, "field", name)?,
            lo: req_i64(udf, "lo", name)?,
            hi: req_i64(udf, "hi", name)?,
        },
        "burn" => MapUdf::Burn {
            field: req_index(udf, "field", name)?,
            units: req_i64(udf, "units", name)?,
        },
        other => return Err(bad(format!("map {name}: unknown udf {other:?}"))),
    })
}

fn decode_reduce_udf(name: &str, udf: Option<&Json>) -> Result<ReduceUdf, DecodeError> {
    let udf = udf.ok_or_else(|| bad(format!("reduce {name}: missing \"udf\"")))?;
    let f = req_str(udf, "fn", name)?;
    Ok(match f.as_str() {
        "fold" => {
            let op_word = req_str(udf, "op", name)?;
            let op = FoldOp::parse(&op_word)
                .ok_or_else(|| bad(format!("reduce {name}: unknown fold op {op_word:?}")))?;
            ReduceUdf::Fold {
                op,
                field: req_index(udf, "field", name)?,
                append: match udf.get("append") {
                    None => false,
                    Some(b) => b.as_bool().ok_or_else(|| {
                        bad(format!("reduce {name}: \"append\" must be a boolean"))
                    })?,
                },
            }
        }
        "count" => ReduceUdf::Count,
        other => return Err(bad(format!("reduce {name}: unknown udf {other:?}"))),
    })
}

fn decode_cogroup_udf(name: &str, udf: Option<&Json>) -> Result<CoGroupUdf, DecodeError> {
    let udf = udf.ok_or_else(|| bad(format!("cogroup {name}: missing \"udf\"")))?;
    let f = req_str(udf, "fn", name)?;
    match f.as_str() {
        "count_diff" => Ok(CoGroupUdf::CountDiff),
        other => Err(bad(format!("cogroup {name}: unknown udf {other:?}"))),
    }
}

fn decode_hints(name: &str, h: &Json) -> Result<HintSpec, DecodeError> {
    if !matches!(h, Json::Obj(_)) {
        return Err(bad(format!("operator {name}: \"hints\" must be an object")));
    }
    let mut hints = HintSpec::default();
    if let Some(v) = h.get("selectivity") {
        hints.selectivity = Some(
            v.as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| bad(format!("operator {name}: bad \"selectivity\"")))?,
        );
    }
    if let Some(v) = h.get("cpu") {
        hints.cpu = Some(
            v.as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| bad(format!("operator {name}: bad \"cpu\"")))?,
        );
    }
    if let Some(v) = h.get("distinct_keys") {
        hints.distinct_keys = Some(
            v.as_i64()
                .filter(|x| *x >= 0)
                .ok_or_else(|| bad(format!("operator {name}: bad \"distinct_keys\"")))?
                as u64,
        );
    }
    if let Some(v) = h.get("record_bytes") {
        hints.record_bytes = Some(
            v.as_i64()
                .filter(|x| *x >= 0)
                .ok_or_else(|| bad(format!("operator {name}: bad \"record_bytes\"")))?
                as u64,
        );
    }
    Ok(hints)
}

/// Decodes `[[field, ...], ...]` rows into a [`DataSet`].
fn decode_rows(source: &str, rows: &Json) -> Result<DataSet, DecodeError> {
    let rows = rows
        .as_array()
        .ok_or_else(|| bad(format!("inputs for {source:?} must be an array of rows")))?;
    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let fields = row
            .as_array()
            .ok_or_else(|| bad(format!("inputs for {source:?}: row {i} is not an array")))?;
        let values = fields
            .iter()
            .map(json_to_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|m| bad(format!("inputs for {source:?}, row {i}: {m}")))?;
        records.push(Record::from_values(values));
    }
    Ok(records.into_iter().collect())
}

fn decode_options(options: Option<&Json>) -> Result<(usize, ExecOptions, bool), DecodeError> {
    let mut exec = ExecOptions::default();
    let mut dop = 1usize;
    let mut trace = false;
    let Some(o) = options else {
        return Ok((dop, exec, trace));
    };
    if !matches!(o, Json::Obj(_)) {
        return Err(bad("\"options\" must be an object"));
    }
    if let Some(v) = o.get("dop") {
        let d = v
            .as_i64()
            .filter(|d| *d >= 1)
            .ok_or_else(|| bad("\"dop\" must be a positive integer"))?;
        dop = (d as usize).min(MAX_DOP);
    }
    if let Some(v) = o.get("batch") {
        exec.batch_size =
            v.as_i64()
                .filter(|b| *b >= 1)
                .ok_or_else(|| bad("\"batch\" must be a positive integer"))? as usize;
    }
    if let Some(v) = o.get("combine") {
        exec.combine = v
            .as_bool()
            .ok_or_else(|| bad("\"combine\" must be a boolean"))?;
    }
    if let Some(v) = o.get("mem_budget") {
        exec.mem_budget = Some(
            v.as_i64()
                .filter(|b| *b >= 0)
                .ok_or_else(|| bad("\"mem_budget\" must be a non-negative integer"))?
                as u64,
        );
    }
    if let Some(v) = o.get("workers") {
        exec.workers = Some(
            v.as_i64()
                .filter(|w| *w >= 1)
                .ok_or_else(|| bad("\"workers\" must be a positive integer"))?
                .min(MAX_DOP as i64) as usize,
        );
    }
    if let Some(v) = o.get("trace") {
        trace = v
            .as_bool()
            .ok_or_else(|| bad("\"trace\" must be a boolean"))?;
    }
    Ok((dop, exec, trace))
}

/// JSON scalar → record [`Value`]. Arrays/objects are not record values.
pub fn json_to_value(j: &Json) -> Result<Value, String> {
    Ok(match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(i) => Value::Int(*i),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::from(s.as_str()),
        Json::Arr(_) | Json::Obj(_) => return Err("record fields must be JSON scalars".to_string()),
    })
}

/// Record [`Value`] → JSON scalar (for response rows).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

/// Helpers for required members.
fn req_str(obj: &Json, key: &str, who: &str) -> Result<String, DecodeError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("{who}: missing string member {key:?}")))
}

fn req_i64(obj: &Json, key: &str, who: &str) -> Result<i64, DecodeError> {
    obj.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| bad(format!("{who}: missing integer member {key:?}")))
}

fn req_u64(obj: &Json, key: &str, who: &str) -> Result<u64, DecodeError> {
    req_i64(obj, key, who).and_then(|v| {
        if v >= 0 {
            Ok(v as u64)
        } else {
            Err(bad(format!("{who}: {key:?} must be non-negative")))
        }
    })
}

fn req_index(obj: &Json, key: &str, who: &str) -> Result<usize, DecodeError> {
    req_i64(obj, key, who).and_then(|v| {
        if v >= 0 {
            Ok(v as usize)
        } else {
            Err(bad(format!("{who}: {key:?} must be non-negative")))
        }
    })
}

fn decode_index_list(j: &Json, who: &str) -> Result<Vec<usize>, DecodeError> {
    j.as_array()
        .ok_or_else(|| bad(format!("{who} must be an array of field indices")))?
        .iter()
        .map(|v| {
            v.as_i64()
                .filter(|i| *i >= 0)
                .map(|i| i as usize)
                .ok_or_else(|| bad(format!("{who}: indices must be non-negative integers")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn decodes_grouped_aggregation_request() {
        let doc = parse(
            r#"{
              "flow": {
                "op": {"name": "sum", "kind": "reduce", "key": [0],
                       "udf": {"fn": "fold", "op": "sum", "field": 1}},
                "inputs": [
                  {"op": {"name": "pos", "kind": "map",
                          "udf": {"fn": "filter", "field": 1, "cmp": "ge", "value": 0}},
                   "inputs": [
                     {"source": {"name": "s", "fields": ["k", "v"], "est_rows": 1000,
                                 "unique_keys": [[0]]}}
                   ]}
                ]
              },
              "inputs": {"s": [[1, 10], [1, -3], [2, 7]]},
              "options": {"dop": 2, "batch": 128, "combine": true, "mem_budget": 1048576}
            }"#,
        );
        let q = decode_query(&doc).unwrap();
        assert_eq!(q.dop, 2);
        assert_eq!(q.exec.batch_size, 128);
        assert!(q.exec.combine);
        assert!(!q.trace, "trace defaults to off");
        assert_eq!(q.exec.mem_budget, Some(1 << 20));
        assert_eq!(q.inputs["s"].len(), 3);
        // The spec compiles to a 2-operator plan.
        let plan = q.flow.build().unwrap();
        assert_eq!(plan.ctx.ops.len(), 2);
    }

    #[test]
    fn map_without_udf_is_identity() {
        let doc = parse(
            r#"{"flow": {"op": {"name": "id", "kind": "map"}, "inputs": [
                 {"source": {"name": "s", "fields": ["a"], "est_rows": 1}}]}}"#,
        );
        let q = decode_query(&doc).unwrap();
        assert!(q.inputs.is_empty());
        assert_eq!(q.dop, 1);
        assert!(q.flow.build().is_ok());
    }

    #[test]
    fn binary_kinds_decode() {
        let doc = parse(
            r#"{"flow": {"op": {"name": "j", "kind": "match",
                                "key_left": [0], "key_right": [0]},
                 "inputs": [
                   {"source": {"name": "l", "fields": ["a"], "est_rows": 1}},
                   {"source": {"name": "r", "fields": ["b"], "est_rows": 1}}]}}"#,
        );
        assert!(decode_query(&doc).unwrap().flow.build().is_ok());
    }

    #[test]
    fn trace_option_decodes_and_rejects_non_booleans() {
        let doc = parse(
            r#"{"flow": {"source": {"name": "s", "fields": ["a"], "est_rows": 1}},
                "options": {"trace": true}}"#,
        );
        assert!(decode_query(&doc).unwrap().trace);
        let doc = parse(
            r#"{"flow": {"source": {"name": "s", "fields": ["a"], "est_rows": 1}},
                "options": {"trace": 1}}"#,
        );
        let err = decode_query(&doc).unwrap_err();
        assert!(err.0.contains("trace"), "{err:?}");
    }

    #[test]
    fn dop_is_clamped() {
        let doc = parse(
            r#"{"flow": {"source": {"name": "s", "fields": ["a"], "est_rows": 1}},
                "options": {"dop": 100000}}"#,
        );
        assert_eq!(decode_query(&doc).unwrap().dop, MAX_DOP);
    }

    #[test]
    fn shape_errors_are_reported() {
        for (body, needle) in [
            (r#"[1]"#, "JSON object"),
            (r#"{}"#, "missing \"flow\""),
            (r#"{"flow": {"nope": 1}}"#, "\"source\" or \"op\""),
            (
                r#"{"flow": {"op": {"name": "m", "kind": "weird"}, "inputs": []}}"#,
                "unknown kind",
            ),
            (
                r#"{"flow": {"source": {"name": "s", "fields": ["a"], "est_rows": 1}},
                    "inputs": {"s": [[[1]]]}}"#,
                "scalars",
            ),
            (
                r#"{"flow": {"source": {"name": "s", "fields": ["a"], "est_rows": 1}},
                    "options": {"dop": 0}}"#,
                "dop",
            ),
        ] {
            let err = decode_query(&parse(body)).unwrap_err();
            assert!(err.0.contains(needle), "{body} → {err:?}");
        }
    }

    #[test]
    fn values_round_trip_through_json() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.5),
            Value::from("hi"),
        ];
        for v in vals {
            let j = value_to_json(&v);
            assert_eq!(json_to_value(&j).unwrap(), v);
        }
    }
}
