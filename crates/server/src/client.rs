//! A minimal blocking HTTP/1.1 client, enough to talk to the service:
//! fixed-length request bodies out, fixed-length or chunked bodies in.
//! Used by the integration tests and the `service` example; real clients
//! can use anything that speaks HTTP.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A decoded HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` against `addr`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body against `addr`.
pub fn post_json(addr: impl ToSocketAddrs, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

/// Performs one request on a fresh connection (the server speaks
/// `Connection: close`).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or(b"");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: strato\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut stream)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // "HTTP/1.1 200 OK"
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked(&mut reader)?
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        body
    } else {
        // Connection: close delimits the body.
        let mut body = Vec::new();
        reader.read_to_end(&mut body)?;
        body
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn read_chunked(reader: &mut BufReader<&mut TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let size_text = line.trim().split(';').next().unwrap_or("");
        let size = usize::from_str_radix(size_text, 16).map_err(|_| bad("malformed chunk size"))?;
        if size == 0 {
            // Trailer section (we send none) up to the blank line.
            loop {
                line.clear();
                reader.read_line(&mut line)?;
                if line.trim_end().is_empty() {
                    return Ok(body);
                }
            }
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        // Chunk data is followed by CRLF.
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("missing chunk terminator"));
        }
    }
}
