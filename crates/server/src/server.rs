//! The accept loop: a [`TcpListener`] feeding connection-per-thread
//! handlers.
//!
//! Concurrency control lives in the [`AdmissionGate`], not in the thread
//! model: every connection gets a handler thread (connections are
//! short-lived — one request each), but only `max_concurrent` of them can
//! hold an execution token at once; `/metrics` and `/healthz` never touch
//! the gate, so observability stays responsive under full query load.
//!
//! [`Server::spawn`] runs the loop on a background thread and returns a
//! [`ServerHandle`] with the bound address and a shutdown switch — the
//! shape integration tests need (bind port 0, query it, shut down).
//! Shutdown is **graceful**: after the accept loop stops, the handle
//! drains the admission gate for a bounded grace period, so in-flight
//! queries finish streaming their responses instead of being cut off
//! mid-body ([`ServerHandle::shutdown_within`] makes the grace explicit).
//!
//! Every query a server admits executes on one shared
//! [`EngineRuntime`] created at [`Server::bind`] — the
//! [`ServerConfig::workers`] pool and [`ServerConfig::mem_budget`] bytes
//! are machine-wide totals divided across concurrent queries, not
//! per-query multipliers.
//!
//! [`AdmissionGate`]: crate::admission::AdmissionGate

use crate::handlers::{handle_connection, AppState};
use crate::metrics::Metrics;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use strato_exec::{EngineRuntime, RuntimeOptions};

/// Grace period [`ServerHandle::shutdown`] gives in-flight queries to
/// finish before giving up on the drain.
const DEFAULT_SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Server configuration (the bin's flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8464`. Port `0` binds ephemerally.
    pub addr: String,
    /// Queries allowed to execute concurrently.
    pub max_concurrent: usize,
    /// Queries allowed to wait for an execution token before new arrivals
    /// are answered `429`.
    pub queue_depth: usize,
    /// Worker threads in the shared engine pool all queries execute on
    /// (`None` = the machine's available parallelism).
    pub workers: Option<usize>,
    /// Machine-wide memory budget in bytes shared by every concurrent
    /// query (`None` = the engine's default global budget).
    pub mem_budget: Option<u64>,
    /// Log a one-line plan+stats summary to stderr for queries slower
    /// than this many milliseconds (`None` disables the slow-query log).
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8464".to_string(),
            max_concurrent: 4,
            queue_depth: 16,
            workers: None,
            mem_budget: None,
            slow_query_ms: None,
        }
    }
}

/// A bound (but not yet serving) query service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: AppState,
}

impl Server {
    /// Binds the listen socket. The admission gate, metrics registry and
    /// shared engine runtime are created here, so [`Server::state`] is
    /// observable before (and during) serving.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let runtime = EngineRuntime::new(RuntimeOptions {
            workers: config.workers,
            mem_budget: config.mem_budget.or(RuntimeOptions::default().mem_budget),
            ..RuntimeOptions::default()
        });
        Ok(Server {
            listener: TcpListener::bind(&config.addr)?,
            state: AppState::with_runtime(
                config.max_concurrent,
                config.queue_depth,
                Arc::new(runtime),
            )
            .with_slow_query_log(config.slow_query_ms),
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared per-server state (gate + metrics registry).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Serves forever on the calling thread (the binary's main loop).
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => spawn_handler(stream, self.state.clone()),
                // Per-connection accept errors (peer reset mid-handshake)
                // must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Serves on a background thread; returns a handle that can query the
    /// bound address, scrape state, and shut the loop down.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = self.state.clone();
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in self.listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        spawn_handler(stream, self.state.clone());
                    }
                }
            })
        };
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
            state,
        })
    }
}

fn spawn_handler(stream: TcpStream, state: AppState) {
    std::thread::spawn(move || handle_connection(stream, &state));
}

/// Handle on a background server started by [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    state: AppState,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (for assertions without a scrape).
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// The shared per-server state (gate, metrics, engine runtime).
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// Stops the accept loop and **drains in-flight queries**: admitted
    /// and queued queries get a default 5-second grace to finish — and
    /// since execution permits are held until the response is flushed, a
    /// drained gate means every accepted query got its full answer.
    pub fn shutdown(self) {
        self.shutdown_within(DEFAULT_SHUTDOWN_GRACE);
    }

    /// [`ServerHandle::shutdown`] with an explicit grace period. Returns
    /// `true` when every in-flight query finished within `grace`, `false`
    /// when the drain timed out (handler threads then finish detached).
    pub fn shutdown_within(mut self, grace: Duration) -> bool {
        self.stop_accepting();
        self.state.gate.drain(grace)
    }

    /// Stops the accept loop and joins the server thread; no new
    /// connections are handled after this returns.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_accepting();
            self.state.gate.drain(DEFAULT_SHUTDOWN_GRACE);
        }
    }
}
