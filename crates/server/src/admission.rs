//! Admission control: a token-bucket gate bounding concurrent queries.
//!
//! The bucket holds `max_concurrent` execution tokens. A query that cannot
//! take a token immediately may **wait** in a bounded queue of
//! `queue_depth` slots; when both the bucket and the queue are full the
//! query is rejected up front (HTTP 429) instead of piling onto the
//! server — load shedding at the door is the first step toward the
//! ROADMAP's multi-query resource governance.
//!
//! The gate is intentionally tiny: a mutex-guarded pair of counters and a
//! condvar. Fairness between queued queries is whatever the condvar
//! provides (no strict FIFO) — acceptable at this queue depth.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    /// Tokens currently held by running queries.
    running: usize,
    /// Queries parked waiting for a token.
    queued: usize,
}

#[derive(Debug)]
struct GateInner {
    state: Mutex<GateState>,
    freed: Condvar,
    max_concurrent: usize,
    queue_depth: usize,
}

/// The admission gate. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

/// Outcome of an admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// A token was granted; holds the permit for the query's lifetime.
    Admitted(Permit),
    /// Bucket and queue both full — shed the query (429).
    Rejected,
}

/// An execution token. Returning it (on drop) wakes one queued query.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<GateInner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        // `notify_all`, not `notify_one`: besides queued queries, a
        // draining shutdown may be parked on the same condvar, and waking
        // only one waiter could hand the wakeup to the wrong party.
        self.inner.freed.notify_all();
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max_concurrent` running queries with at
    /// most `queue_depth` more waiting. `max_concurrent` is clamped to at
    /// least 1 (a server that can run nothing is a misconfiguration).
    pub fn new(max_concurrent: usize, queue_depth: usize) -> Self {
        AdmissionGate {
            inner: Arc::new(GateInner {
                state: Mutex::new(GateState::default()),
                freed: Condvar::new(),
                max_concurrent: max_concurrent.max(1),
                queue_depth,
            }),
        }
    }

    /// Requests admission, blocking in the queue when allowed. Returns
    /// [`Admission::Rejected`] without blocking when saturated.
    pub fn admit(&self) -> Admission {
        let mut st = self.inner.state.lock().unwrap();
        if st.running < self.inner.max_concurrent {
            st.running += 1;
            return Admission::Admitted(self.permit());
        }
        if st.queued >= self.inner.queue_depth {
            return Admission::Rejected;
        }
        st.queued += 1;
        while st.running >= self.inner.max_concurrent {
            st = self.inner.freed.wait(st).unwrap();
        }
        st.queued -= 1;
        st.running += 1;
        Admission::Admitted(self.permit())
    }

    /// `(running, queued)` — the saturation gauges `/metrics` exports.
    pub fn load(&self) -> (usize, usize) {
        let st = self.inner.state.lock().unwrap();
        (st.running, st.queued)
    }

    /// Seconds a shed client should wait before retrying (the `429`
    /// response's `Retry-After` header): one second of slack plus one per
    /// query already parked in the queue ahead of it.
    pub fn retry_after_secs(&self) -> u64 {
        let st = self.inner.state.lock().unwrap();
        1 + st.queued as u64
    }

    /// Blocks until every admitted **and** queued query has finished (the
    /// gate is fully idle) or `timeout` elapses. Returns `true` when the
    /// gate drained. Used by graceful shutdown: after the accept loop
    /// stops, no new queries can arrive, so an idle gate means every
    /// in-flight response has been written and flushed (permits are held
    /// through response streaming).
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        while st.running > 0 || st.queued > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, timed_out) = self.inner.freed.wait_timeout(st, deadline - now).unwrap();
            st = next;
            if timed_out.timed_out() && (st.running > 0 || st.queued > 0) {
                return false;
            }
        }
        true
    }

    fn permit(&self) -> Permit {
        Permit {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(2, 0);
        let p1 = match gate.admit() {
            Admission::Admitted(p) => p,
            Admission::Rejected => panic!("first admit"),
        };
        let p2 = match gate.admit() {
            Admission::Admitted(p) => p,
            Admission::Rejected => panic!("second admit"),
        };
        assert!(matches!(gate.admit(), Admission::Rejected));
        assert_eq!(gate.load(), (2, 0));
        drop(p1);
        assert!(matches!(gate.admit(), Admission::Admitted(_)));
        drop(p2);
    }

    #[test]
    fn queued_query_runs_when_a_token_frees() {
        let gate = AdmissionGate::new(1, 1);
        let p = match gate.admit() {
            Admission::Admitted(p) => p,
            Admission::Rejected => panic!("admit"),
        };
        let done = Arc::new(AtomicUsize::new(0));
        let t = {
            let gate = gate.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || match gate.admit() {
                Admission::Admitted(_p) => done.store(1, Ordering::SeqCst),
                Admission::Rejected => done.store(2, Ordering::SeqCst),
            })
        };
        // Wait until the second query is parked in the queue.
        while gate.load().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue full now: a third query is shed.
        assert!(matches!(gate.admit(), Admission::Rejected));
        drop(p); // frees the token → queued query runs
        t.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1, "queued query was admitted");
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn zero_concurrency_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert!(matches!(gate.admit(), Admission::Admitted(_)));
    }

    #[test]
    fn retry_after_grows_with_the_queue() {
        let gate = AdmissionGate::new(1, 2);
        assert_eq!(gate.retry_after_secs(), 1, "idle gate: minimal backoff");
        let _p = gate.admit();
        let _waiters: Vec<_> = (0..2)
            .map(|_| {
                let gate = gate.clone();
                std::thread::spawn(move || drop(gate.admit()))
            })
            .collect();
        while gate.load().1 < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(gate.retry_after_secs(), 3, "one second per queued query");
    }

    #[test]
    fn drain_waits_for_permits_and_times_out_while_held() {
        let gate = AdmissionGate::new(1, 0);
        assert!(gate.drain(Duration::ZERO), "idle gate drains instantly");
        let p = match gate.admit() {
            Admission::Admitted(p) => p,
            Admission::Rejected => panic!("admit"),
        };
        assert!(
            !gate.drain(Duration::from_millis(10)),
            "held permit blocks the drain"
        );
        let t = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.drain(Duration::from_secs(10)))
        };
        drop(p);
        assert!(t.join().unwrap(), "drain completes once the permit drops");
    }
}
