//! Request routing and the query handler: the glue between the HTTP
//! layer and the optimize→execute pipeline.
//!
//! `POST /v1/query` is the main entry point. Its life cycle:
//!
//! 1. **admission** — take a token from the [`AdmissionGate`] (or answer
//!    `429` immediately — with a queue-depth-derived `Retry-After`
//!    header — when bucket and queue are both full),
//! 2. **decode** — parse the JSON body (`400` on syntax errors), decode
//!    the flow/inputs/options (`422` on shape errors), compile the
//!    [`FlowSpec`](strato_dataflow::spec::FlowSpec) into a bound plan
//!    (`422` on structural errors),
//! 3. **optimize** — run the full enumerate-and-cost optimizer at the
//!    requested degree of parallelism,
//! 4. **execute** — run the chosen physical plan on the server's shared
//!    [`EngineRuntime`] (one worker pool and one memory budget across all
//!    concurrent queries) with the request's
//!    [`ExecOptions`](strato_exec::ExecOptions) overrides,
//! 5. **respond** — stream result rows back in canonical order as a
//!    chunked JSON body, closing with the execution statistics, and fold
//!    those statistics into the server's `/metrics` registry.
//!
//! `GET /metrics` renders the Prometheus registry; `GET /healthz` is a
//! liveness probe.

use crate::admission::{Admission, AdmissionGate};
use crate::decode::{decode_query, value_to_json};
use crate::http::{
    read_request, write_response, write_response_with, ChunkedWriter, HttpError, Request,
};
use crate::json::Json;
use crate::metrics::Metrics;
use std::net::TcpStream;
use std::sync::Arc;
use strato_core::Optimizer;
use strato_dataflow::PropertyMode;
use strato_exec::{EngineRuntime, ExecStats, RuntimeOptions};
use strato_record::DataSet;

/// Result rows per HTTP chunk of a query response.
const ROWS_PER_CHUNK: usize = 1024;

/// Shared per-server state handed to every connection handler.
#[derive(Debug, Clone)]
pub struct AppState {
    /// The admission gate bounding concurrent query execution.
    pub gate: AdmissionGate,
    /// The cumulative metrics registry behind `GET /metrics`.
    pub metrics: Arc<Metrics>,
    /// The shared engine runtime every admitted query executes on: one
    /// worker pool and one memory budget across all concurrent queries.
    pub runtime: Arc<EngineRuntime>,
}

impl AppState {
    /// State for a gate of `max_concurrent` tokens and `queue_depth`
    /// waiting slots, executing on a default-configured shared runtime.
    pub fn new(max_concurrent: usize, queue_depth: usize) -> Self {
        AppState::with_runtime(
            max_concurrent,
            queue_depth,
            Arc::new(EngineRuntime::new(RuntimeOptions::default())),
        )
    }

    /// State executing on a caller-provided shared runtime (how the
    /// server's `--workers`/`--mem-budget` flags reach the engine).
    pub fn with_runtime(
        max_concurrent: usize,
        queue_depth: usize,
        runtime: Arc<EngineRuntime>,
    ) -> Self {
        AppState {
            gate: AdmissionGate::new(max_concurrent, queue_depth),
            metrics: Arc::new(Metrics::new()),
            runtime,
        }
    }
}

/// Serves one connection: reads a request, dispatches it, writes the
/// response. Socket errors are swallowed — the peer is gone either way.
pub fn handle_connection(mut stream: TcpStream, state: &AppState) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge) => {
            let _ = error_response(&mut stream, 413, "request body too large");
            return;
        }
        Err(HttpError::Bad(msg)) => {
            let _ = error_response(&mut stream, 400, &msg);
            return;
        }
    };
    let _ = dispatch(&mut stream, &req, state);
}

/// Routes a parsed request to its handler.
fn dispatch(stream: &mut TcpStream, req: &Request, state: &AppState) -> std::io::Result<()> {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/v1/query") => handle_query(stream, req, state),
        ("GET", "/metrics") => {
            let (running, queued) = state.gate.load();
            let body = state
                .metrics
                .render(running, queued, &state.runtime.snapshot());
            write_response(stream, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("GET", "/healthz") => write_response(stream, 200, "text/plain", b"ok"),
        (_, "/v1/query") | (_, "/metrics") | (_, "/healthz") => {
            error_response(stream, 405, "method not allowed")
        }
        _ => error_response(stream, 404, "no such endpoint"),
    }
}

/// `POST /v1/query`.
fn handle_query(stream: &mut TcpStream, req: &Request, state: &AppState) -> std::io::Result<()> {
    // Admission first: saturated servers shed load before spending any
    // cycles on parsing.
    let _permit = match state.gate.admit() {
        Admission::Admitted(permit) => permit,
        Admission::Rejected => {
            state.metrics.record_rejected();
            // Tell the client when capacity is likely back: the deeper
            // the queue, the longer the suggested backoff.
            let retry_after = state.gate.retry_after_secs().to_string();
            let body = Json::Obj(vec![(
                "error".to_string(),
                Json::Str("server saturated, retry later".to_string()),
            )])
            .to_string();
            return write_response_with(
                stream,
                429,
                "application/json",
                body.as_bytes(),
                &[("retry-after", &retry_after)],
            );
        }
    };

    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            state.metrics.record_error();
            return error_response(stream, 400, "request body is not UTF-8");
        }
    };
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 400, &e.to_string());
        }
    };
    let query = match decode_query(&doc) {
        Ok(q) => q,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 422, &e.to_string());
        }
    };
    let plan = match query.flow.build() {
        Ok(p) => p,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 422, &e.to_string());
        }
    };

    let best = Optimizer::new(PropertyMode::Sca)
        .with_dop(query.dop)
        .best(&plan);
    let (out, stats) = match state.runtime.execute_with(
        &best.plan,
        &best.phys,
        &query.inputs,
        query.dop,
        &query.exec,
    ) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 500, &e.to_string());
        }
    };

    let op_names: Vec<String> = best.plan.ctx.ops.iter().map(|o| o.name.clone()).collect();
    state.metrics.record_query(&stats, &op_names);
    stream_result(stream, &out, &stats, &op_names)
}

/// Streams `{"rows": [...], "stats": {...}}` as a chunked body, one chunk
/// per [`ROWS_PER_CHUNK`] rows. Rows are emitted in canonical sorted
/// order so equal result bags serialize identically.
fn stream_result(
    stream: &mut TcpStream,
    out: &DataSet,
    stats: &ExecStats,
    op_names: &[String],
) -> std::io::Result<()> {
    let mut w = ChunkedWriter::begin(stream, 200, "application/json")?;
    w.chunk(b"{\"rows\":[")?;
    let rows = out.sorted();
    for (start, batch) in rows
        .chunks(ROWS_PER_CHUNK)
        .enumerate()
        .map(|(i, b)| (i * ROWS_PER_CHUNK, b))
    {
        let mut buf = String::new();
        for (i, r) in batch.iter().enumerate() {
            if start + i > 0 {
                buf.push(',');
            }
            let row = Json::Arr(r.fields().iter().map(value_to_json).collect());
            buf.push_str(&row.to_string());
        }
        w.chunk(buf.as_bytes())?;
    }
    let tail = format!("],\"stats\":{}}}", stats_json(stats, op_names));
    w.chunk(tail.as_bytes())?;
    w.finish()
}

/// The `"stats"` member of a query response.
fn stats_json(stats: &ExecStats, op_names: &[String]) -> Json {
    let t = stats.totals();
    let mut members = vec![
        ("udf_calls".to_string(), Json::Int(t.udf_calls as i64)),
        (
            "records_emitted".to_string(),
            Json::Int(t.records_emitted as i64),
        ),
        (
            "records_shipped".to_string(),
            Json::Int(t.records_shipped as i64),
        ),
        (
            "bytes_shipped".to_string(),
            Json::Int(t.bytes_shipped as i64),
        ),
        (
            "records_preagg_in".to_string(),
            Json::Int(t.records_preagg_in as i64),
        ),
        (
            "records_preagg_out".to_string(),
            Json::Int(t.records_preagg_out as i64),
        ),
        (
            "records_spilled".to_string(),
            Json::Int(t.records_spilled as i64),
        ),
        (
            "spilled_bytes".to_string(),
            Json::Int(t.spilled_bytes as i64),
        ),
        ("spill_runs".to_string(), Json::Int(t.spill_runs as i64)),
        ("interp_steps".to_string(), Json::Int(t.interp_steps as i64)),
    ];
    let ops: Vec<Json> = stats
        .op_snapshots()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::Obj(vec![
                (
                    "name".to_string(),
                    Json::Str(op_names.get(i).cloned().unwrap_or_else(|| format!("op{i}"))),
                ),
                ("calls".to_string(), Json::Int(s.calls as i64)),
                ("emits".to_string(), Json::Int(s.emits as i64)),
                ("nanos".to_string(), Json::Int(s.nanos as i64)),
            ])
        })
        .collect();
    members.push(("ops".to_string(), Json::Arr(ops)));
    Json::Obj(members)
}

/// Writes a fixed-length `{"error": ...}` response.
fn error_response(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let body = Json::Obj(vec![("error".to_string(), Json::Str(msg.to_string()))]).to_string();
    write_response(stream, status, "application/json", body.as_bytes())
}
