//! Request routing and the query handler: the glue between the HTTP
//! layer and the optimize→execute pipeline.
//!
//! `POST /v1/query` is the main entry point. Its life cycle:
//!
//! 1. **admission** — take a token from the [`AdmissionGate`] (or answer
//!    `429` immediately — with a queue-depth-derived `Retry-After`
//!    header — when bucket and queue are both full),
//! 2. **decode** — parse the JSON body (`400` on syntax errors), decode
//!    the flow/inputs/options (`422` on shape errors), compile the
//!    [`FlowSpec`](strato_dataflow::spec::FlowSpec) into a bound plan
//!    (`422` on structural errors),
//! 3. **optimize** — run the full enumerate-and-cost optimizer at the
//!    requested degree of parallelism,
//! 4. **execute** — run the chosen physical plan on the server's shared
//!    [`EngineRuntime`] (one worker pool and one memory budget across all
//!    concurrent queries) with the request's
//!    [`ExecOptions`](strato_exec::ExecOptions) overrides,
//! 5. **respond** — stream result rows back in canonical order as a
//!    chunked JSON body, closing with the execution statistics, and fold
//!    those statistics into the server's `/metrics` registry.
//!
//! With `"options": {"trace": true}` the handler threads a
//! [`TraceRecorder`] through every step — admission wait, plan compile,
//! optimize, and the engine's task/ship/spill/memory spans — and the
//! response gains `"query_id"`, a Chrome trace-event `"trace"` document
//! (load it in Perfetto) and an estimate-vs-actual `"explain"` report.
//! Traces of the last [`TRACE_HISTORY`] traced queries stay fetchable at
//! `GET /v1/queries/<id>/trace`.
//!
//! `GET /metrics` renders the Prometheus registry; `GET /healthz` is a
//! liveness probe.

use crate::admission::{Admission, AdmissionGate};
use crate::decode::{decode_query, value_to_json};
use crate::http::{
    read_request, write_response, write_response_with, ChunkedWriter, HttpError, Request,
};
use crate::json::Json;
use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use strato_core::Optimizer;
use strato_dataflow::PropertyMode;
use strato_exec::{explain_analyze, EngineRuntime, ExecStats, RuntimeOptions, TraceRecorder};
use strato_record::DataSet;

/// Result rows per HTTP chunk of a query response.
const ROWS_PER_CHUNK: usize = 1024;

/// How many completed traced queries keep their Chrome trace fetchable
/// at `GET /v1/queries/<id>/trace`.
pub const TRACE_HISTORY: usize = 8;

/// Query-id allocator plus a bounded ring of recently completed traced
/// queries' Chrome trace documents.
#[derive(Debug, Default)]
struct TraceStore {
    /// Last assigned query id; ids start at 1.
    next_id: AtomicU64,
    /// `(query_id, chrome_trace_json)`, oldest first, at most
    /// [`TRACE_HISTORY`] entries.
    recent: Mutex<VecDeque<(u64, String)>>,
}

impl TraceStore {
    /// Allocates the next query id (every query gets one, traced or not,
    /// so ids in logs and metrics line up with trace ids).
    fn assign_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records a completed traced query, evicting the oldest past the cap.
    fn push(&self, id: u64, chrome: String) {
        let mut recent = self.recent.lock().unwrap();
        if recent.len() >= TRACE_HISTORY {
            recent.pop_front();
        }
        recent.push_back((id, chrome));
    }

    /// Fetches a retained trace by query id.
    fn get(&self, id: u64) -> Option<String> {
        self.recent
            .lock()
            .unwrap()
            .iter()
            .find(|(q, _)| *q == id)
            .map(|(_, t)| t.clone())
    }
}

/// Shared per-server state handed to every connection handler.
#[derive(Debug, Clone)]
pub struct AppState {
    /// The admission gate bounding concurrent query execution.
    pub gate: AdmissionGate,
    /// The cumulative metrics registry behind `GET /metrics`.
    pub metrics: Arc<Metrics>,
    /// The shared engine runtime every admitted query executes on: one
    /// worker pool and one memory budget across all concurrent queries.
    pub runtime: Arc<EngineRuntime>,
    /// Log a one-line plan+stats summary to stderr for queries slower
    /// than this many milliseconds (`--slow-query-ms`); `None` disables.
    pub slow_query_ms: Option<u64>,
    /// Query-id allocator and recently-completed-trace history.
    traces: Arc<TraceStore>,
}

impl AppState {
    /// State for a gate of `max_concurrent` tokens and `queue_depth`
    /// waiting slots, executing on a default-configured shared runtime.
    pub fn new(max_concurrent: usize, queue_depth: usize) -> Self {
        AppState::with_runtime(
            max_concurrent,
            queue_depth,
            Arc::new(EngineRuntime::new(RuntimeOptions::default())),
        )
    }

    /// State executing on a caller-provided shared runtime (how the
    /// server's `--workers`/`--mem-budget` flags reach the engine).
    pub fn with_runtime(
        max_concurrent: usize,
        queue_depth: usize,
        runtime: Arc<EngineRuntime>,
    ) -> Self {
        AppState {
            gate: AdmissionGate::new(max_concurrent, queue_depth),
            metrics: Arc::new(Metrics::new()),
            runtime,
            slow_query_ms: None,
            traces: Arc::new(TraceStore::default()),
        }
    }

    /// Enables the slow-query log: queries slower than `threshold_ms`
    /// print a one-line plan+stats summary to stderr.
    pub fn with_slow_query_log(mut self, threshold_ms: Option<u64>) -> Self {
        self.slow_query_ms = threshold_ms;
        self
    }
}

/// Serves one connection: reads a request, dispatches it, writes the
/// response. Socket errors are swallowed — the peer is gone either way.
pub fn handle_connection(mut stream: TcpStream, state: &AppState) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge) => {
            let _ = error_response(&mut stream, 413, "request body too large");
            return;
        }
        Err(HttpError::Bad(msg)) => {
            let _ = error_response(&mut stream, 400, &msg);
            return;
        }
    };
    let _ = dispatch(&mut stream, &req, state);
}

/// Routes a parsed request to its handler.
fn dispatch(stream: &mut TcpStream, req: &Request, state: &AppState) -> std::io::Result<()> {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/v1/query") => handle_query(stream, req, state),
        ("GET", "/metrics") => {
            let (running, queued) = state.gate.load();
            let body = state
                .metrics
                .render(running, queued, &state.runtime.snapshot());
            write_response(stream, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("GET", "/healthz") => write_response(stream, 200, "text/plain", b"ok"),
        (method, p) if p.starts_with("/v1/queries/") && p.ends_with("/trace") => {
            if method != "GET" {
                return error_response(stream, 405, "method not allowed");
            }
            let id = &p["/v1/queries/".len()..p.len() - "/trace".len()];
            match id
                .strip_prefix('q')
                .unwrap_or(id)
                .parse::<u64>()
                .ok()
                .and_then(|id| state.traces.get(id))
            {
                Some(chrome) => write_response(stream, 200, "application/json", chrome.as_bytes()),
                None => error_response(stream, 404, "no retained trace for that query"),
            }
        }
        (_, "/v1/query") | (_, "/metrics") | (_, "/healthz") => {
            error_response(stream, 405, "method not allowed")
        }
        _ => error_response(stream, 404, "no such endpoint"),
    }
}

/// `POST /v1/query`.
fn handle_query(stream: &mut TcpStream, req: &Request, state: &AppState) -> std::io::Result<()> {
    // Arrival time is both the latency-histogram epoch and, for traced
    // queries, the timeline origin of the Chrome trace.
    let t_start = Instant::now();
    // Admission first: saturated servers shed load before spending any
    // cycles on parsing.
    let _permit = match state.gate.admit() {
        Admission::Admitted(permit) => permit,
        Admission::Rejected => {
            state.metrics.record_rejected();
            // Tell the client when capacity is likely back: the deeper
            // the queue, the longer the suggested backoff.
            let retry_after = state.gate.retry_after_secs().to_string();
            let body = Json::Obj(vec![(
                "error".to_string(),
                Json::Str("server saturated, retry later".to_string()),
            )])
            .to_string();
            return write_response_with(
                stream,
                429,
                "application/json",
                body.as_bytes(),
                &[("retry-after", &retry_after)],
            );
        }
    };
    let admission_wait = t_start.elapsed();
    state.metrics.observe_admission_wait(admission_wait);

    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            state.metrics.record_error();
            return error_response(stream, 400, "request body is not UTF-8");
        }
    };
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 400, &e.to_string());
        }
    };
    let query = match decode_query(&doc) {
        Ok(q) => q,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 422, &e.to_string());
        }
    };
    // Every query gets an id so slow-query log lines and per-query
    // metrics line up with trace ids; the recorder itself only exists
    // when the client opted in — untraced queries pay one `Option` check
    // per instrumentation point and nothing else.
    let query_id = state.traces.assign_id();
    let recorder = query
        .trace
        .then(|| TraceRecorder::with_epoch(query_id, t_start));
    if let Some(tr) = &recorder {
        tr.record_span(
            "admission-wait",
            "server",
            0,
            admission_wait.as_nanos() as u64,
            vec![],
        );
    }

    let t0 = recorder.as_ref().map(|tr| tr.now_ns());
    let plan = match query.flow.build() {
        Ok(p) => p,
        Err(e) => {
            state.metrics.record_error();
            return error_response(stream, 422, &e.to_string());
        }
    };
    if let (Some(t0), Some(tr)) = (t0, &recorder) {
        tr.record("plan-compile", "server", t0, vec![]);
    }

    let t0 = recorder.as_ref().map(|tr| tr.now_ns());
    let best = Optimizer::new(PropertyMode::Sca)
        .with_dop(query.dop)
        .best(&plan);
    if let (Some(t0), Some(tr)) = (t0, &recorder) {
        tr.record("optimize", "server", t0, vec![("dop", query.dop as u64)]);
    }

    let mut exec = query.exec.clone();
    exec.trace = recorder.clone();
    let (out, stats) =
        match state
            .runtime
            .execute_with(&best.plan, &best.phys, &query.inputs, query.dop, &exec)
        {
            Ok(r) => r,
            Err(e) => {
                state.metrics.record_error();
                return error_response(stream, 500, &e.to_string());
            }
        };

    let op_names: Vec<String> = best.plan.ctx.ops.iter().map(|o| o.name.clone()).collect();
    state.metrics.record_query(&stats, &op_names);
    let elapsed = t_start.elapsed();
    state.metrics.observe_query_latency(elapsed);

    let trace_payload = recorder.as_ref().map(|tr| {
        let chrome = tr.chrome_trace_json();
        state.traces.push(query_id, chrome.clone());
        (chrome, explain_analyze(&best.plan, &best.phys, &stats))
    });
    if let Some(threshold) = state.slow_query_ms {
        if elapsed.as_millis() as u64 >= threshold {
            let report = explain_analyze(&best.plan, &best.phys, &stats);
            let flat: Vec<&str> = report.lines().map(str::trim).collect();
            eprintln!(
                "[strato] slow query q{query_id}: {}ms | {}",
                elapsed.as_millis(),
                flat.join(" | ")
            );
        }
    }
    stream_result(
        stream,
        &out,
        &stats,
        &op_names,
        query_id,
        trace_payload.as_ref(),
    )
}

/// Streams `{"rows": [...], "stats": {...}, "query_id": N}` as a chunked
/// body, one chunk per [`ROWS_PER_CHUNK`] rows, appending `"trace"`
/// (Chrome trace-event document) and `"explain"` (estimate-vs-actual
/// report) members for traced queries. Rows are emitted in canonical
/// sorted order so equal result bags serialize identically.
fn stream_result(
    stream: &mut TcpStream,
    out: &DataSet,
    stats: &ExecStats,
    op_names: &[String],
    query_id: u64,
    trace: Option<&(String, String)>,
) -> std::io::Result<()> {
    let mut w = ChunkedWriter::begin(stream, 200, "application/json")?;
    w.chunk(b"{\"rows\":[")?;
    let rows = out.sorted();
    for (start, batch) in rows
        .chunks(ROWS_PER_CHUNK)
        .enumerate()
        .map(|(i, b)| (i * ROWS_PER_CHUNK, b))
    {
        let mut buf = String::new();
        for (i, r) in batch.iter().enumerate() {
            if start + i > 0 {
                buf.push(',');
            }
            let row = Json::Arr(r.fields().iter().map(value_to_json).collect());
            buf.push_str(&row.to_string());
        }
        w.chunk(buf.as_bytes())?;
    }
    let mut tail = format!(
        "],\"stats\":{},\"query_id\":{query_id}",
        stats_json(stats, op_names)
    );
    if let Some((chrome, explain)) = trace {
        tail.push_str(",\"trace\":");
        tail.push_str(chrome);
        tail.push_str(",\"explain\":");
        tail.push_str(&Json::Str(explain.clone()).to_string());
    }
    tail.push('}');
    w.chunk(tail.as_bytes())?;
    w.finish()
}

/// The `"stats"` member of a query response.
fn stats_json(stats: &ExecStats, op_names: &[String]) -> Json {
    let t = stats.totals();
    let mut members = vec![
        ("udf_calls".to_string(), Json::Int(t.udf_calls as i64)),
        (
            "records_emitted".to_string(),
            Json::Int(t.records_emitted as i64),
        ),
        (
            "records_shipped".to_string(),
            Json::Int(t.records_shipped as i64),
        ),
        (
            "bytes_shipped".to_string(),
            Json::Int(t.bytes_shipped as i64),
        ),
        (
            "records_preagg_in".to_string(),
            Json::Int(t.records_preagg_in as i64),
        ),
        (
            "records_preagg_out".to_string(),
            Json::Int(t.records_preagg_out as i64),
        ),
        (
            "records_spilled".to_string(),
            Json::Int(t.records_spilled as i64),
        ),
        (
            "spilled_bytes".to_string(),
            Json::Int(t.spilled_bytes as i64),
        ),
        ("spill_runs".to_string(), Json::Int(t.spill_runs as i64)),
        ("interp_steps".to_string(), Json::Int(t.interp_steps as i64)),
    ];
    let ops: Vec<Json> = stats
        .op_snapshots()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::Obj(vec![
                (
                    "name".to_string(),
                    Json::Str(op_names.get(i).cloned().unwrap_or_else(|| format!("op{i}"))),
                ),
                ("calls".to_string(), Json::Int(s.calls as i64)),
                ("emits".to_string(), Json::Int(s.emits as i64)),
                ("nanos".to_string(), Json::Int(s.nanos as i64)),
            ])
        })
        .collect();
    members.push(("ops".to_string(), Json::Arr(ops)));
    Json::Obj(members)
}

/// Writes a fixed-length `{"error": ...}` response.
fn error_response(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let body = Json::Obj(vec![("error".to_string(), Json::Str(msg.to_string()))]).to_string();
    write_response(stream, status, "application/json", body.as_bytes())
}
