//! A small hand-rolled HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The environment is offline, so there is no hyper/axum; like the
//! vendored dependency shims under `crates/shims/`, this module implements
//! exactly the protocol subset the query service needs:
//!
//! * request parsing — request line, headers, `Content-Length` bodies
//!   (bounded; `Transfer-Encoding` request bodies and HTTP/0.9 are
//!   rejected cleanly),
//! * fixed-length responses,
//! * **chunked** responses via [`ChunkedWriter`], which is how query
//!   results stream back batch by batch.
//!
//! Every connection is handled as `Connection: close` — one request per
//! connection keeps the protocol state machine trivial and is what the
//! admission gate (per-query, not per-connection) expects.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (64 MiB). Inline datasets are
/// expected to be modest; a storage layer is the ROADMAP's answer for big
/// inputs.
pub const MAX_BODY_BYTES: u64 = 64 << 20;

/// Upper bound on the total header section (64 KiB).
const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query string).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Protocol-level errors while reading a request. Each maps to a status
/// code for the error response.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    Bad(String),
    /// Body larger than [`MAX_BODY_BYTES`] → 413.
    TooLarge,
    /// Socket error or client hang-up mid-request (no response possible).
    Io(io::Error),
    /// Clean EOF before any bytes: the client opened and closed without
    /// sending a request (load-balancer health probes do this).
    Closed,
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Closed => write!(f, "connection closed before a request"),
        }
    }
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut header_bytes = 0usize;

    let n = read_line(&mut reader, &mut line, &mut header_bytes)?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    loop {
        line.clear();
        read_line(&mut reader, &mut line, &mut header_bytes)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header {trimmed:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req_no_body = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if req_no_body
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Bad("chunked request bodies unsupported".into()));
    }
    let len = match req_no_body.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| HttpError::Bad(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Ok(Request {
        body,
        ..req_no_body
    })
}

fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    total: &mut usize,
) -> Result<usize, HttpError> {
    let n = reader.read_line(line)?;
    *total += n;
    if *total > MAX_HEADER_BYTES {
        return Err(HttpError::Bad("header section too large".into()));
    }
    if n > 0 && !line.ends_with('\n') {
        return Err(HttpError::Bad("truncated request".into()));
    }
    Ok(n)
}

/// The reason phrase for the status codes the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, &[])
}

/// Writes a complete fixed-length response with extra headers (name,
/// value) appended after the standard set — how the 429 path attaches
/// `Retry-After`.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response body in progress.
///
/// [`ChunkedWriter::begin`] sends the header section; each [`chunk`]
/// becomes one HTTP chunk on the wire (so a consumer observes result
/// batches as they are produced); [`finish`] sends the terminating
/// zero-length chunk.
///
/// [`chunk`]: ChunkedWriter::chunk
/// [`finish`]: ChunkedWriter::finish
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the status line and headers of a chunked response.
    pub fn begin(stream: &'a mut TcpStream, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        )?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk (empty slices are skipped: an empty chunk would
    /// terminate the body).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")
    }

    /// Terminates the body and flushes.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `client` against a one-connection server calling `server`.
    fn pair<F, G>(server: F, client: G)
    where
        F: FnOnce(&mut TcpStream) + Send + 'static,
        G: FnOnce(&mut TcpStream),
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            server(&mut s);
        });
        let mut c = TcpStream::connect(addr).unwrap();
        client(&mut c);
        t.join().unwrap();
    }

    #[test]
    fn parses_post_with_body() {
        pair(
            |s| {
                let req = read_request(s).unwrap();
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/query");
                assert_eq!(req.header("content-type"), Some("application/json"));
                assert_eq!(req.body, b"{\"x\":1}");
                write_response(s, 200, "text/plain", b"ok").unwrap();
            },
            |c| {
                c.write_all(
                    b"POST /v1/query HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"x\":1}",
                )
                .unwrap();
                let mut out = String::new();
                c.read_to_string(&mut out).unwrap();
                assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
                assert!(out.ends_with("\r\n\r\nok"), "{out}");
            },
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (raw, expect) in [
            (&b"BOGUS\r\n\r\n"[..], "missing request target"),
            (&b"GET / SPDY/3\r\n\r\n"[..], "unsupported version"),
            (
                &b"GET / HTTP/1.1\r\nno-colon\r\n\r\n"[..],
                "malformed header",
            ),
            (
                &b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..],
                "bad content-length",
            ),
            (
                &b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"[..],
                "chunked request",
            ),
        ] {
            let raw = raw.to_vec();
            pair(
                move |s| {
                    let err = read_request(s).unwrap_err();
                    match err {
                        HttpError::Bad(m) => assert!(m.contains(expect), "{m} vs {expect}"),
                        other => panic!("expected Bad, got {other}"),
                    }
                },
                move |c| {
                    c.write_all(&raw).unwrap();
                    c.shutdown(std::net::Shutdown::Write).unwrap();
                    let mut out = Vec::new();
                    let _ = c.read_to_end(&mut out);
                },
            );
        }
    }

    #[test]
    fn oversized_body_is_rejected_cheaply() {
        pair(
            |s| {
                let err = read_request(s).unwrap_err();
                assert!(matches!(err, HttpError::TooLarge));
            },
            |c| {
                // Claim a giant body without sending it — the server must
                // reject from the header alone.
                write!(c, "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", u64::MAX).unwrap();
                c.shutdown(std::net::Shutdown::Write).unwrap();
                let mut out = Vec::new();
                let _ = c.read_to_end(&mut out);
            },
        );
    }

    #[test]
    fn empty_connection_reports_closed() {
        pair(
            |s| {
                assert!(matches!(read_request(s).unwrap_err(), HttpError::Closed));
            },
            |c| {
                c.shutdown(std::net::Shutdown::Write).unwrap();
            },
        );
    }

    #[test]
    fn extra_headers_ride_along() {
        pair(
            |s| {
                let _ = read_request(s).unwrap();
                write_response_with(s, 429, "application/json", b"{}", &[("retry-after", "3")])
                    .unwrap();
            },
            |c| {
                c.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
                let mut out = String::new();
                c.read_to_string(&mut out).unwrap();
                assert!(
                    out.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
                    "{out}"
                );
                assert!(out.contains("\r\nretry-after: 3\r\n"), "{out}");
                assert!(out.ends_with("\r\n\r\n{}"), "{out}");
            },
        );
    }

    #[test]
    fn chunked_response_round_trips() {
        pair(
            |s| {
                let _ = read_request(s).unwrap();
                let mut w = ChunkedWriter::begin(s, 200, "application/json").unwrap();
                w.chunk(b"[1,").unwrap();
                w.chunk(b"").unwrap(); // skipped, not a terminator
                w.chunk(b"2]").unwrap();
                w.finish().unwrap();
            },
            |c| {
                c.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
                let mut out = String::new();
                c.read_to_string(&mut out).unwrap();
                assert!(out.contains("transfer-encoding: chunked"), "{out}");
                assert!(out.ends_with("3\r\n[1,\r\n2\r\n2]\r\n0\r\n\r\n"), "{out}");
            },
        );
    }
}
