//! A minimal, dependency-free JSON codec.
//!
//! The build environment is offline (no serde), so the server carries its
//! own JSON layer, in the spirit of the vendored shims under
//! `crates/shims/`: exactly the subset the wire protocol needs —
//! recursive-descent parsing with a depth limit, and serialization that
//! distinguishes integers from floats (record [`strato_record::Value`]s must round-trip
//! without `1` silently becoming `1.0`).
//!
//! ```
//! use strato_server::json::Json;
//! let v = Json::parse(r#"{"rows": [[1, null, "x"], [2.5, true, ""]]}"#).unwrap();
//! let rows = v.get("rows").unwrap().as_array().unwrap();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(v.to_string(), r#"{"rows":[[1,null,"x"],[2.5,true,""]]}"#);
//! ```

use std::fmt;

/// Maximum nesting depth accepted by the parser (defense against
/// stack-exhausting inputs from the network).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
///
/// Numbers keep their syntactic class: digits-only (with optional sign)
/// parse as [`Json::Int`], anything with a fraction or exponent as
/// [`Json::Float`]. Object members preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer-syntax number.
    Int(i64),
    /// Fraction/exponent-syntax number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload; floats are **not** silently truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    /// Compact (no-whitespace) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a syntactic float marker so the value round-trips
                    // as a float (e.g. `2.0`, not `2`).
                    let s = format!("{x}");
                    if s.contains(['.', 'e', 'E']) {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the least-bad image.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine a high surrogate with
                            // the immediately following \uXXXX low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 leaves pos past the digits; continue
                            // without the shared += 1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() < self.pos + 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Integer overflow falls back to the float domain rather
                // than rejecting (JSON numbers are unbounded).
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("2.5", Json::Float(2.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(Json::parse("1").unwrap(), Json::Int(1));
        assert_eq!(Json::parse("1.0").unwrap(), Json::Float(1.0));
        assert_eq!(Json::parse("1e0").unwrap(), Json::Float(1.0));
        // Serialization keeps the marker.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Int(2).to_string(), "2");
        // i64 overflow widens to float instead of erroring.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#" {"a": [1, {"b": null}], "c": "x" } "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert!(a[1].get("b").unwrap().is_null());
        // Round trip.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair (🂡 U+1F0A1).
        let v = Json::parse(r#""\ud83c\udca1""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F0A1}"));
        // Escaping on the way out.
        let s = Json::Str("a\"b\\\n\u{1}".into()).to_string();
        assert_eq!(s, r#""a\"b\\\n\u0001""#);
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\"b\\\n\u{1}".into()));
    }

    #[test]
    fn errors_are_located() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "\"\\q\"",
            "\"\\ud83c\"",
            "nul",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let bomb = "[".repeat(500) + &"]".repeat(500);
        let e = Json::parse(&bomb).unwrap_err();
        assert!(e.msg.contains("deep"));
        // But MAX_DEPTH-ish documents are fine.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}
