//! The server's metrics registry and its Prometheus text rendering.
//!
//! Two layers of counters accumulate across the server's lifetime:
//!
//! * **server counters** — queries in flight / queued (gauges, read from
//!   the admission gate) and completed / errored / rejected totals,
//! * **execution counters** — every global [`ExecStats`] counter summed
//!   over completed queries, plus per-operator series (UDF calls, emitted
//!   records, task nanoseconds, spill activity) labelled by operator name.
//!
//! A scrape additionally renders the shared [`EngineRuntime`]'s
//! point-in-time gauges (`strato_pool_*`, `strato_mem_*`, and per-query
//! `strato_query_queued_tasks`) from the [`RuntimeSnapshot`] the handler
//! takes at scrape time — these live in the runtime, not the registry.
//!
//! [`EngineRuntime`]: strato_exec::EngineRuntime
//!
//! Rendering follows the Prometheus text exposition format, version
//! `0.0.4`: `# HELP`/`# TYPE` preambles, `_total` suffixes on counters,
//! escaped label values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};
use strato_exec::trace::LATENCY_BUCKETS_NS;
use strato_exec::{ExecStats, HistoSnapshot, LatencyHisto, OpSnapshot, RuntimeSnapshot};

/// Per-operator accumulation across queries, keyed by operator name.
#[derive(Debug, Default, Clone, Copy)]
struct OpAgg {
    calls: u64,
    emits: u64,
    nanos: u64,
    records_spilled: u64,
    spilled_bytes: u64,
    spill_runs: u64,
}

/// Cumulative server metrics. One instance per server; handlers record
/// into it concurrently.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries that completed successfully.
    completed: AtomicU64,
    /// Queries that failed (bad request, spec error, execution error).
    errored: AtomicU64,
    /// Queries shed by the admission gate (429s).
    rejected: AtomicU64,
    /// Σ `ExecStats` totals over completed queries.
    udf_calls: AtomicU64,
    records_emitted: AtomicU64,
    records_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    records_preagg_in: AtomicU64,
    records_preagg_out: AtomicU64,
    records_spilled: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_runs: AtomicU64,
    interp_steps: AtomicU64,
    rows_scattered: AtomicU64,
    null_cells: AtomicU64,
    total_cells: AtomicU64,
    /// Per-operator aggregates by operator name.
    per_op: Mutex<BTreeMap<String, OpAgg>>,
    /// End-to-end latency of completed queries (admission to response).
    query_latency: LatencyHisto,
    /// Time queries spent waiting for an admission-gate token.
    admission_wait: LatencyHisto,
    /// When the registry was created ([`Metrics::new`]) — the epoch of
    /// `strato_uptime_seconds`. Lazily set so `Default` stays derivable;
    /// a registry that skips `new()` starts the clock at first scrape.
    started: OnceLock<Instant>,
}

impl Metrics {
    /// Fresh zeroed registry; starts the uptime clock.
    pub fn new() -> Self {
        let m = Metrics::default();
        let _ = m.started.set(Instant::now());
        m
    }

    /// Observes one completed query's end-to-end latency (admission wait
    /// through response streaming).
    pub fn observe_query_latency(&self, elapsed: Duration) {
        self.query_latency.observe_ns(elapsed.as_nanos() as u64);
    }

    /// Observes one query's admission-gate wait.
    pub fn observe_admission_wait(&self, elapsed: Duration) {
        self.admission_wait.observe_ns(elapsed.as_nanos() as u64);
    }

    /// Folds one completed query's statistics into the registry.
    /// `op_names[i]` labels operator id `i` of the executed plan.
    pub fn record_query(&self, stats: &ExecStats, op_names: &[String]) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let t = stats.totals();
        self.udf_calls.fetch_add(t.udf_calls, Ordering::Relaxed);
        self.records_emitted
            .fetch_add(t.records_emitted, Ordering::Relaxed);
        self.records_shipped
            .fetch_add(t.records_shipped, Ordering::Relaxed);
        self.bytes_shipped
            .fetch_add(t.bytes_shipped, Ordering::Relaxed);
        self.records_preagg_in
            .fetch_add(t.records_preagg_in, Ordering::Relaxed);
        self.records_preagg_out
            .fetch_add(t.records_preagg_out, Ordering::Relaxed);
        self.records_spilled
            .fetch_add(t.records_spilled, Ordering::Relaxed);
        self.spilled_bytes
            .fetch_add(t.spilled_bytes, Ordering::Relaxed);
        self.spill_runs.fetch_add(t.spill_runs, Ordering::Relaxed);
        self.interp_steps
            .fetch_add(t.interp_steps, Ordering::Relaxed);
        self.rows_scattered
            .fetch_add(t.rows_scattered, Ordering::Relaxed);
        self.null_cells.fetch_add(t.null_cells, Ordering::Relaxed);
        self.total_cells.fetch_add(t.total_cells, Ordering::Relaxed);

        let snaps: Vec<OpSnapshot> = stats.op_snapshots();
        let named: Vec<(String, OpSnapshot)> = snaps
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let name = op_names.get(i).cloned().unwrap_or_else(|| format!("op{i}"));
                (name, s)
            })
            .collect();
        self.fold_named_ops(&named);
    }

    /// Folds named per-operator snapshots into the cumulative aggregates.
    fn fold_named_ops(&self, named: &[(String, OpSnapshot)]) {
        if named.is_empty() {
            return;
        }
        let mut per_op = self.per_op.lock().unwrap();
        for (name, s) in named {
            let agg = per_op.entry(name.clone()).or_default();
            agg.calls += s.calls;
            agg.emits += s.emits;
            agg.nanos += s.nanos;
            agg.records_spilled += s.records_spilled;
            agg.spilled_bytes += s.spilled_bytes;
            agg.spill_runs += s.spill_runs;
        }
    }

    /// Counts one failed query.
    pub fn record_error(&self) {
        self.errored.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query shed by the admission gate.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed-query count (test/introspection hook).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Renders the registry in Prometheus text exposition format.
    /// `in_flight`/`queued` come from the admission gate and `rt` from the
    /// shared runtime, both read at scrape time.
    pub fn render(&self, in_flight: usize, queued: usize, rt: &RuntimeSnapshot) -> String {
        let mut out = String::with_capacity(4096);
        let mut gauge = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "strato_queries_in_flight",
            "Queries currently holding an execution token.",
            in_flight as u64,
        );
        gauge(
            "strato_queries_queued",
            "Queries parked in the admission queue.",
            queued as u64,
        );
        gauge(
            "strato_pool_workers",
            "Worker threads in the shared engine pool.",
            rt.workers as u64,
        );
        gauge(
            "strato_pool_busy_workers",
            "Pool workers currently executing a task step.",
            rt.busy_workers as u64,
        );
        gauge(
            "strato_pool_active_queries",
            "Queries currently registered with the shared pool.",
            rt.active_queries as u64,
        );
        gauge(
            "strato_pool_queued_tasks",
            "Ready task steps across all registered queries.",
            rt.queued_tasks as u64,
        );
        gauge(
            "strato_mem_budget_bytes",
            "Machine-wide memory budget of the shared pool (0 = unbounded).",
            rt.mem_budget.unwrap_or(0),
        );
        gauge(
            "strato_mem_granted_bytes",
            "Bytes promised to in-flight queries' memory grants.",
            rt.mem_granted,
        );
        gauge(
            "strato_mem_resident_bytes",
            "Bytes currently buffered across all queries.",
            rt.mem_resident,
        );
        gauge(
            "strato_mem_peak_resident_bytes",
            "High-water mark of resident bytes across all queries.",
            rt.mem_peak_resident,
        );
        // Per-query series: in-flight queries at their live value, plus a
        // bounded recently-completed window pinned at 0 so scrapers observe
        // the series settle instead of vanish. Queries older than the window
        // are pruned entirely — the per-query label set cannot grow without
        // bound (it is capped at in-flight + `RECENT_QUERIES`).
        let recent_done: Vec<u64> = rt
            .recent_queries
            .iter()
            .copied()
            .filter(|id| !rt.per_query_queued.iter().any(|(q, _)| q == id))
            .collect();
        if !rt.per_query_queued.is_empty() || !recent_done.is_empty() {
            out.push_str(
                "# HELP strato_query_queued_tasks Ready task steps per registered query.\n\
                 # TYPE strato_query_queued_tasks gauge\n",
            );
            for (id, ready) in &rt.per_query_queued {
                out.push_str(&format!(
                    "strato_query_queued_tasks{{query=\"q{id}\"}} {ready}\n"
                ));
            }
            for id in recent_done {
                out.push_str(&format!("strato_query_queued_tasks{{query=\"q{id}\"}} 0\n"));
            }
        }
        out.push_str(&format!(
            "# HELP strato_pool_tasks_total Task steps executed by the shared pool.\n\
             # TYPE strato_pool_tasks_total counter\nstrato_pool_tasks_total {}\n",
            rt.tasks_executed
        ));

        let counters: [(&str, &str, u64); 16] = [
            (
                "strato_queries_completed_total",
                "Queries that completed successfully.",
                self.completed.load(Ordering::Relaxed),
            ),
            (
                "strato_queries_errored_total",
                "Queries that failed (bad request or execution error).",
                self.errored.load(Ordering::Relaxed),
            ),
            (
                "strato_queries_rejected_total",
                "Queries shed by the admission gate with HTTP 429.",
                self.rejected.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_udf_calls_total",
                "UDF invocations across completed queries.",
                self.udf_calls.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_records_emitted_total",
                "Records emitted by UDFs.",
                self.records_emitted.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_records_shipped_total",
                "Records moved by Partition/Broadcast shipping.",
                self.records_shipped.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_bytes_shipped_total",
                "Serialized bytes moved by Partition/Broadcast shipping.",
                self.bytes_shipped.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_records_preagg_in_total",
                "Records absorbed by streaming pre-aggregation tables.",
                self.records_preagg_in.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_records_preagg_out_total",
                "Partial records produced by streaming pre-aggregation.",
                self.records_preagg_out.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_records_spilled_total",
                "Records written to sorted on-disk runs under memory pressure.",
                self.records_spilled.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_spilled_bytes_total",
                "On-disk bytes of first-generation sorted runs.",
                self.spilled_bytes.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_spill_runs_total",
                "Sorted runs written under memory pressure.",
                self.spill_runs.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_interp_steps_total",
                "IR interpreter steps executed.",
                self.interp_steps.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_rows_scattered_total",
                "Records routed by the vectorized columnar Partition scatter.",
                self.rows_scattered.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_null_cells_total",
                "Null cells observed while building columnar batches.",
                self.null_cells.load(Ordering::Relaxed),
            ),
            (
                "strato_exec_total_cells_total",
                "Total cells observed while building columnar batches.",
                self.total_cells.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, v) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        }

        type OpSeries = (&'static str, &'static str, fn(&OpAgg) -> u64);
        let per_op = self.per_op.lock().unwrap();
        let series: [OpSeries; 6] = [
            (
                "strato_op_udf_calls_total",
                "UDF invocations per operator.",
                |a| a.calls,
            ),
            (
                "strato_op_records_emitted_total",
                "Records emitted per operator.",
                |a| a.emits,
            ),
            (
                "strato_op_task_nanos_total",
                "Scheduler step nanoseconds attributed per operator.",
                |a| a.nanos,
            ),
            (
                "strato_op_records_spilled_total",
                "Records spilled to disk per operator.",
                |a| a.records_spilled,
            ),
            (
                "strato_op_spilled_bytes_total",
                "On-disk spill bytes per operator.",
                |a| a.spilled_bytes,
            ),
            (
                "strato_op_spill_runs_total",
                "Sorted spill runs written per operator.",
                |a| a.spill_runs,
            ),
        ];
        for (name, help, get) in series {
            if per_op.is_empty() {
                continue;
            }
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (op, agg) in per_op.iter() {
                out.push_str(&format!(
                    "{name}{{op=\"{}\"}} {}\n",
                    escape_label(op),
                    get(agg)
                ));
            }
        }
        drop(per_op);

        render_histo(
            &mut out,
            "strato_query_latency_seconds",
            "End-to-end latency of completed queries (admission to response).",
            &self.query_latency.snapshot(),
        );
        render_histo(
            &mut out,
            "strato_admission_wait_seconds",
            "Time queries waited for an admission-gate token.",
            &self.admission_wait.snapshot(),
        );
        render_histo(
            &mut out,
            "strato_grant_wait_seconds",
            "Time queries waited to carve a memory grant from the shared budget.",
            &rt.grant_wait,
        );

        out.push_str(&format!(
            "# HELP strato_build_info Build metadata; the value is always 1.\n\
             # TYPE strato_build_info gauge\n\
             strato_build_info{{version=\"{}\"}} 1\n",
            escape_label(env!("CARGO_PKG_VERSION"))
        ));
        out.push_str(&format!(
            "# HELP strato_uptime_seconds Seconds since this server started.\n\
             # TYPE strato_uptime_seconds gauge\nstrato_uptime_seconds {}\n",
            self.started.get_or_init(Instant::now).elapsed().as_secs()
        ));
        out
    }
}

/// Renders one [`HistoSnapshot`] as a Prometheus histogram: cumulative
/// `_bucket{le="..."}` lines over [`LATENCY_BUCKETS_NS`] (bounds in
/// seconds), the implicit `+Inf` bucket, `_sum` and `_count`.
fn render_histo(out: &mut String, name: &str, help: &str, snap: &HistoSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, bound_ns) in LATENCY_BUCKETS_NS.iter().enumerate() {
        cumulative += snap.counts.get(i).copied().unwrap_or(0);
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            *bound_ns as f64 / 1e9
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
    out.push_str(&format!("{name}_sum {}\n", snap.sum_ns as f64 / 1e9));
    out.push_str(&format!("{name}_count {}\n", snap.count));
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let m = Metrics::new();
        m.record_rejected();
        m.record_error();
        let stats = ExecStats::with_ops(2);
        // Simulate a query: 3 calls on op 0, ship, spill on op 1.
        for _ in 0..3 {
            stats.udf_calls.fetch_add(1, Ordering::Relaxed);
        }
        stats.records_shipped.fetch_add(10, Ordering::Relaxed);
        stats.rows_scattered.fetch_add(10, Ordering::Relaxed);
        stats.null_cells.fetch_add(2, Ordering::Relaxed);
        stats.total_cells.fetch_add(40, Ordering::Relaxed);
        m.record_query(&stats, &["scan\"s".into(), "sum".into()]);

        let rt = RuntimeSnapshot {
            workers: 4,
            busy_workers: 1,
            active_queries: 2,
            queued_tasks: 7,
            tasks_executed: 99,
            mem_budget: Some(1024),
            mem_granted: 256,
            mem_resident: 128,
            mem_peak_resident: 512,
            per_query_queued: vec![(3, 5), (4, 2)],
            ..RuntimeSnapshot::default()
        };
        let text = m.render(1, 2, &rt);
        assert!(text.contains("strato_queries_in_flight 1\n"), "{text}");
        assert!(text.contains("strato_queries_queued 2\n"), "{text}");
        assert!(text.contains("strato_pool_workers 4\n"), "{text}");
        assert!(text.contains("strato_pool_busy_workers 1\n"), "{text}");
        assert!(text.contains("strato_pool_active_queries 2\n"), "{text}");
        assert!(text.contains("strato_pool_queued_tasks 7\n"), "{text}");
        assert!(text.contains("strato_pool_tasks_total 99\n"), "{text}");
        assert!(text.contains("strato_mem_budget_bytes 1024\n"), "{text}");
        assert!(text.contains("strato_mem_granted_bytes 256\n"), "{text}");
        assert!(text.contains("strato_mem_resident_bytes 128\n"), "{text}");
        assert!(
            text.contains("strato_mem_peak_resident_bytes 512\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_queued_tasks{query=\"q3\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_queued_tasks{query=\"q4\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("strato_queries_completed_total 1\n"));
        assert!(text.contains("strato_queries_errored_total 1\n"));
        assert!(text.contains("strato_queries_rejected_total 1\n"));
        assert!(text.contains("strato_exec_udf_calls_total 3\n"));
        assert!(text.contains("strato_exec_records_shipped_total 10\n"));
        assert!(text.contains("strato_exec_rows_scattered_total 10\n"));
        assert!(text.contains("strato_exec_null_cells_total 2\n"));
        assert!(text.contains("strato_exec_total_cells_total 40\n"));
        // Label escaping.
        assert!(
            text.contains("strato_op_udf_calls_total{op=\"scan\\\"s\"}"),
            "{text}"
        );
        assert!(text.contains("strato_op_udf_calls_total{op=\"sum\"} 0\n"));
        // Every series has HELP/TYPE preambles.
        assert!(text.contains("# TYPE strato_queries_in_flight gauge"));
        assert!(text.contains("# TYPE strato_exec_udf_calls_total counter"));
    }

    #[test]
    fn per_op_aggregates_accumulate_across_queries() {
        let m = Metrics::new();
        let snap = OpSnapshot {
            nanos: 5,
            ..OpSnapshot::default()
        };
        m.record_query(&ExecStats::with_ops(1), &["sum".into()]);
        m.record_query(&ExecStats::with_ops(1), &["sum".into()]);
        m.fold_named_ops(&[("sum".into(), snap), ("sum".into(), snap)]);
        assert_eq!(m.completed(), 2);
        let text = m.render(0, 0, &RuntimeSnapshot::default());
        assert!(
            text.contains("strato_op_task_nanos_total{op=\"sum\"} 10\n"),
            "{text}"
        );
    }

    #[test]
    fn no_per_op_series_without_slots() {
        let m = Metrics::new();
        m.record_query(&ExecStats::new(), &[]);
        let text = m.render(0, 0, &RuntimeSnapshot::default());
        assert!(!text.contains("strato_op_"), "{text}");
        assert!(
            !text.contains("strato_query_queued_tasks"),
            "no per-query series without registered queries: {text}"
        );
    }

    #[test]
    fn recently_completed_queries_render_at_zero_then_age_out() {
        let m = Metrics::new();
        let rt = RuntimeSnapshot {
            per_query_queued: vec![(7, 3)],
            recent_queries: vec![5, 7],
            ..RuntimeSnapshot::default()
        };
        let text = m.render(0, 0, &rt);
        // In-flight query keeps its live value; the completed one settles
        // to 0 instead of vanishing mid-scrape.
        assert!(
            text.contains("strato_query_queued_tasks{query=\"q7\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_queued_tasks{query=\"q5\"} 0\n"),
            "{text}"
        );
        // Once a query ages out of the recent window its series is pruned.
        let aged = m.render(0, 0, &RuntimeSnapshot::default());
        assert!(!aged.contains("query=\"q5\""), "{aged}");
    }

    #[test]
    fn histograms_render_cumulative_buckets_and_build_info() {
        let m = Metrics::new();
        // One fast query (2µs) and one slow (100ms).
        m.observe_query_latency(Duration::from_micros(2));
        m.observe_query_latency(Duration::from_millis(100));
        m.observe_admission_wait(Duration::from_nanos(500));
        let text = m.render(0, 0, &RuntimeSnapshot::default());

        // 2µs lands in the 4µs bucket; cumulative counts climb to 2.
        assert!(
            text.contains("strato_query_latency_seconds_bucket{le=\"0.000001\"} 0\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_latency_seconds_bucket{le=\"0.000004\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_latency_seconds_bucket{le=\"4.194304\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("strato_query_latency_seconds_count 2\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE strato_query_latency_seconds histogram\n"),
            "{text}"
        );
        // 500ns lands in the very first (1µs) bucket.
        assert!(
            text.contains("strato_admission_wait_seconds_bucket{le=\"0.000001\"} 1\n"),
            "{text}"
        );
        // Grant-wait histogram comes from the runtime snapshot (empty here).
        assert!(
            text.contains("strato_grant_wait_seconds_count 0\n"),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "strato_build_info{{version=\"{}\"}} 1\n",
                env!("CARGO_PKG_VERSION")
            )),
            "{text}"
        );
        assert!(text.contains("strato_uptime_seconds "), "{text}");
    }
}
