//! Reusable UDF builders shared by the workloads.
//!
//! These are ordinary black-box UDFs: nothing here communicates semantics
//! to the optimizer — every property it uses is rediscovered by SCA (or
//! supplied as a manual annotation in the workload definitions).

use strato_ir::{BinOp, FuncBuilder, Function, Intrinsic, UdfKind};

/// Map: emit records whose integer `field` lies in `[lo, hi]`.
pub fn filter_range(width: usize, field: usize, lo: i64, hi: i64) -> Function {
    let mut b = FuncBuilder::new(format!("range_{field}"), UdfKind::Map, vec![width]);
    let v = b.get_input(0, field);
    let lo_c = b.konst(lo);
    let hi_c = b.konst(hi);
    let ge = b.bin(BinOp::Ge, v, lo_c);
    let le = b.bin(BinOp::Le, v, hi_c);
    let keep = b.bin(BinOp::And, ge, le);
    let end = b.new_label();
    b.branch_not(keep, end);
    let or = b.copy_input(0);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("filter_range")
}

/// Pair UDF: concatenate both input records (the standard equi-join body).
pub fn join_concat(left_width: usize, right_width: usize) -> Function {
    let mut b = FuncBuilder::new("concat", UdfKind::Pair, vec![left_width, right_width]);
    let or = b.concat_inputs();
    b.emit(or);
    b.ret();
    b.finish().expect("join_concat")
}

/// Reduce UDF: copy the canonical first record of the group and append
/// `Σ field` as a new output field (index `width`).
pub fn sum_group(width: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new(format!("sum_{field}"), UdfKind::Group, vec![width]);
    let sum = b.konst(0i64);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let v = b.get(r, field);
    b.bin_into(sum, BinOp::Add, sum, v);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, width, sum);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().expect("sum_group")
}

/// Reduce UDF: fold `Σ field` **in place** — the canonical *combinable*
/// (decomposable) aggregate. Unlike [`sum_group`], the total overwrites
/// the very field it was read from, so re-reducing partial results yields
/// the same answer; SCA's combine analysis proves this shape and the
/// engine may then pre-aggregate before the shuffle and stream the final
/// aggregation.
pub fn sum_group_inplace(width: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new(format!("sum_ip_{field}"), UdfKind::Group, vec![width]);
    let sum = b.konst(0i64);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let v = b.get(r, field);
    b.bin_into(sum, BinOp::Add, sum, v);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, field, sum);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().expect("sum_group_inplace")
}

/// Reduce UDF: fold `min(field)` in place — combinable like
/// [`sum_group_inplace`], with an arbitrary constant init (sound for
/// idempotent folds and, because combiner partials are init-free pure
/// folds, for any constant).
pub fn min_group_inplace(width: usize, field: usize) -> Function {
    let mut b = FuncBuilder::new(format!("min_ip_{field}"), UdfKind::Group, vec![width]);
    let lo = b.konst(i64::MAX);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let v = b.get(r, field);
    b.bin_into(lo, BinOp::Min, lo, v);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, field, lo);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().expect("min_group_inplace")
}

/// Reduce UDF: sum of `price_field × (100 − disc_field) / 100` over the
/// group, appended as a new field (revenue aggregation with integer cents).
pub fn revenue_sum_group(width: usize, price_field: usize, disc_field: usize) -> Function {
    let mut b = FuncBuilder::new("revenue_sum", UdfKind::Group, vec![width]);
    let sum = b.konst(0i64);
    let hundred = b.konst(100i64);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let price = b.get(r, price_field);
    let disc = b.get(r, disc_field);
    let rem = b.bin(BinOp::Sub, hundred, disc);
    let vol = b.bin(BinOp::Mul, price, rem);
    let scaled = b.bin(BinOp::Div, vol, hundred);
    b.bin_into(sum, BinOp::Add, sum, scaled);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, width, sum);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().expect("revenue_sum_group")
}

/// Map: burn `cpu_units` of work seeded by `seed_field`, keep records whose
/// string `text_field` contains `needle`, and set the new output field
/// (index `width`) to 1 on the kept records.
///
/// This is the shape of the text-mining extractor components: an expensive
/// opaque computation followed by a selective filter that tags the record.
pub fn tag_if_contains(
    name: &str,
    width: usize,
    text_field: usize,
    needle: &str,
    cpu_units: i64,
) -> Function {
    let mut b = FuncBuilder::new(name, UdfKind::Map, vec![width]);
    let text = b.get_input(0, text_field);
    let seed = b.call(Intrinsic::Hash, vec![text]);
    let cost = b.konst(cpu_units);
    // The "ML component": deterministic busy work whose result feeds the
    // tag so it cannot be considered dead.
    let checksum = b.call(Intrinsic::Burn, vec![cost, seed]);
    let needle_c = b.konst(needle);
    let found = b.call(Intrinsic::StrContains, vec![text, needle_c]);
    let end = b.new_label();
    b.branch_not(found, end);
    let or = b.copy_input(0);
    let one = b.konst(1i64);
    // Fold the checksum into the tag (mod 1 = 0) so the burn result is
    // data-flow-live without perturbing the tag value.
    let zero = b.bin(BinOp::Rem, checksum, one);
    let tag = b.bin(BinOp::Add, one, zero);
    b.set(or, width, tag);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("tag_if_contains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_ir::interp::{Interp, Invocation, Layout};
    use strato_record::{Record, Value};
    use strato_sca::analyze;

    fn run_map(f: &Function, rec: Record) -> Vec<Record> {
        let layout = Layout::local(f);
        let mut out = Vec::new();
        Interp::default()
            .run(f, Invocation::Record(&rec), &layout, &mut out)
            .unwrap();
        out
    }

    #[test]
    fn filter_range_behaviour_and_props() {
        let f = filter_range(2, 0, 10, 20);
        assert_eq!(
            run_map(&f, Record::from_values([15i64.into(), 1i64.into()])).len(),
            1
        );
        assert_eq!(
            run_map(&f, Record::from_values([9i64.into(), 1i64.into()])).len(),
            0
        );
        assert_eq!(
            run_map(&f, Record::from_values([21i64.into(), 1i64.into()])).len(),
            0
        );
        let p = analyze(&f);
        assert_eq!(p.reads.len(), 1);
        assert!(p.written_base.is_empty());
        assert!(p.emits.at_most_one());
    }

    #[test]
    fn sum_group_aggregates() {
        let f = sum_group(2, 1);
        let layout = Layout::local(&f);
        let g = vec![
            Record::from_values([Value::Int(1), Value::Int(4), Value::Null]),
            Record::from_values([Value::Int(1), Value::Int(6), Value::Null]),
        ];
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap();
        assert_eq!(out[0].field(2), &Value::Int(10));
        let p = analyze(&f);
        assert!(p.copies_input(0));
        assert!(p.written_base.is_empty());
    }

    #[test]
    fn inplace_aggregates_are_combinable_and_appended_sum_is_not() {
        use strato_ir::BinOp;
        let cs = strato_sca::combinable(&sum_group_inplace(2, 1)).expect("sum combinable");
        assert_eq!(cs.folds.get(&1), Some(&BinOp::Add));
        assert!(cs.passthrough.contains(&0));
        let cs = strato_sca::combinable(&min_group_inplace(2, 1)).expect("min combinable");
        assert_eq!(cs.folds.get(&1), Some(&BinOp::Min));
        // The classic appended sum is NOT self-decomposable.
        assert!(strato_sca::combinable(&sum_group(2, 1)).is_none());
    }

    #[test]
    fn sum_group_inplace_aggregates_in_place() {
        let f = sum_group_inplace(2, 1);
        let layout = Layout::local(&f);
        let g = vec![
            Record::from_values([Value::Int(1), Value::Int(4)]),
            Record::from_values([Value::Int(1), Value::Int(6)]),
        ];
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].field(0), &Value::Int(1));
        assert_eq!(out[0].field(1), &Value::Int(10));
    }

    #[test]
    fn revenue_sum_uses_integer_cents() {
        let f = revenue_sum_group(3, 1, 2);
        let layout = Layout::local(&f);
        // price 1000 cents, 10% discount → 900; price 500, 0% → 500.
        let g = vec![
            Record::from_values([Value::Int(1), Value::Int(1000), Value::Int(10), Value::Null]),
            Record::from_values([Value::Int(1), Value::Int(500), Value::Int(0), Value::Null]),
        ];
        let mut out = Vec::new();
        Interp::default()
            .run(&f, Invocation::Group(&g), &layout, &mut out)
            .unwrap();
        assert_eq!(out[0].field(3), &Value::Int(1400));
    }

    #[test]
    fn tag_if_contains_filters_and_tags() {
        let f = tag_if_contains("gene", 2, 0, "GENE_", 1);
        let hit = run_map(
            &f,
            Record::from_values([Value::str("x GENE_abc y"), Value::Int(1)]),
        );
        assert_eq!(hit.len(), 1);
        assert!(hit[0].field(2).as_int().is_some());
        let miss = run_map(
            &f,
            Record::from_values([Value::str("nothing"), Value::Int(1)]),
        );
        assert!(miss.is_empty());
        let p = analyze(&f);
        // Reads and filters on the text field.
        assert!(p.reads.contains(&(0, 0)));
        assert!(p.control_reads.contains(&(0, 0)));
        assert_eq!(p.added.len(), 1);
    }

    #[test]
    fn join_concat_props() {
        let f = join_concat(2, 3);
        let p = analyze(&f);
        assert_eq!(p.copied_inputs, 0b11);
        assert!(p.written_base.is_empty());
        assert!(p.emits.exactly_one());
    }
}
