//! Biomedical text mining (Section 7.2, Figure 6 of the paper).
//!
//! *"The data flow is a pipeline of Map operators which extract entities
//! and relationships by applying several natural language processing
//! algorithms… each entity or relation extraction component also works as a
//! filter… Most NLP components are very compute-intensive… Furthermore,
//! most components have dependencies on other components."*
//!
//! Our pipeline:
//!
//! ```text
//! docs → tokenize → pos_tag → {gene, drug, mesh, abbr extractors} → relate
//! ```
//!
//! `tokenize < pos_tag` and `pos_tag < every extractor < relate` are data
//! dependencies (each later stage reads the attribute an earlier stage
//! adds), discovered by SCA from the black-box code. The four extractors
//! are mutually independent, so the valid order space is exactly
//! `4! = 24` — the number in the paper's Table 1. Optimization potential
//! comes from their *very* different CPU costs and selectivities; the NLP
//! components are modelled by the deterministic [`strato_ir::Intrinsic::Burn`]
//! busy-work intrinsic, so plan runtimes really differ.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
use strato_ir::{BinOp, FuncBuilder, Function, Intrinsic, UdfKind};
use strato_record::{DataSet, Record, Value};

/// One extractor component: marker string, per-call CPU units, match
/// probability in the corpus (= selectivity).
#[derive(Debug, Clone, Copy)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Text marker the extractor looks for.
    pub marker: &'static str,
    /// CPU cost per call, in burn units.
    pub cpu: i64,
    /// Fraction of documents containing the marker.
    pub selectivity: f64,
}

/// The four entity extractors (cost/selectivity spread drives Figure 6's
/// order-of-magnitude plan-runtime range).
pub const EXTRACTORS: [Component; 4] = [
    Component {
        name: "extract_gene",
        marker: "GENE_",
        cpu: 1_200,
        selectivity: 0.50,
    },
    Component {
        name: "extract_drug",
        marker: "DRUG_",
        cpu: 100,
        selectivity: 0.25,
    },
    Component {
        name: "extract_mesh",
        marker: "MESH_",
        cpu: 5_000,
        selectivity: 0.90,
    },
    Component {
        name: "extract_abbr",
        marker: "ABBR_",
        cpu: 30,
        selectivity: 0.55,
    },
];

/// CPU units of the tokenizer stage.
pub const CPU_TOKENIZE: i64 = 15;
/// CPU units of the POS-tagger stage.
pub const CPU_POS_TAG: i64 = 60;
/// CPU units of the relation extractor.
pub const CPU_RELATE: i64 = 200;
/// Fraction of documents whose text suggests a relation.
pub const SEL_RELATE: f64 = 0.30;

/// Scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct TextScale {
    /// Number of documents in the corpus.
    pub docs: usize,
}

impl TextScale {
    /// Test scale.
    pub fn tiny() -> Self {
        TextScale { docs: 200 }
    }

    /// Benchmark scale.
    pub fn small() -> Self {
        TextScale { docs: 4_000 }
    }
}

const WORDS: [&str; 12] = [
    "protein",
    "binding",
    "expression",
    "cell",
    "pathway",
    "receptor",
    "tumor",
    "assay",
    "inhibitor",
    "clinical",
    "dose",
    "response",
];

/// Generates a synthetic corpus: each abstract is a bag of filler words
/// plus entity markers planted with the [`EXTRACTORS`]' probabilities.
pub fn generate(scale: TextScale, seed: u64) -> HashMap<String, DataSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let docs: DataSet = (0..scale.docs)
        .map(|id| {
            let mut text = String::new();
            for _ in 0..10 {
                text.push_str(WORDS.choose(&mut rng).unwrap());
                text.push(' ');
            }
            for c in EXTRACTORS {
                if rng.gen_bool(c.selectivity) {
                    text.push_str(c.marker);
                    text.push_str(&format!("{:04} ", rng.gen_range(0..10_000)));
                }
            }
            if rng.gen_bool(SEL_RELATE) {
                text.push_str("interacts ");
            }
            let len = text.len() as i64;
            Record::from_values([Value::Int(id as i64), Value::str(text), Value::Int(len)])
        })
        .collect();
    let mut m = HashMap::new();
    m.insert("docs".to_string(), docs);
    m
}

/// Tokenizer: adds a token count derived from the text.
fn tokenize(width: usize) -> Function {
    let mut b = FuncBuilder::new("tokenize", UdfKind::Map, vec![width]);
    let text = b.get_input(0, 1);
    let seed = b.call(Intrinsic::Hash, vec![text]);
    let cost = b.konst(CPU_TOKENIZE);
    let chk = b.call(Intrinsic::Burn, vec![cost, seed]);
    let len = b.call(Intrinsic::StrLen, vec![text]);
    let five = b.konst(5i64);
    let toks = b.bin(BinOp::Div, len, five);
    let or = b.copy_input(0);
    // Keep the burn checksum live without changing the token count.
    let one = b.konst(1i64);
    let zero = b.bin(BinOp::Rem, chk, one);
    let toks2 = b.bin(BinOp::Add, toks, zero);
    b.set(or, width, toks2);
    b.emit(or);
    b.ret();
    b.finish().expect("tokenize")
}

/// POS tagger: expensive; depends on the tokenizer's output.
fn pos_tag(width: usize, tok_field: usize) -> Function {
    let mut b = FuncBuilder::new("pos_tag", UdfKind::Map, vec![width]);
    let text = b.get_input(0, 1);
    let toks = b.get_input(0, tok_field);
    let h = b.call(Intrinsic::Hash, vec![text]);
    let seed = b.bin(BinOp::Add, h, toks);
    let cost = b.konst(CPU_POS_TAG);
    let sig = b.call(Intrinsic::Burn, vec![cost, seed]);
    let or = b.copy_input(0);
    b.set(or, width, sig);
    b.emit(or);
    b.ret();
    b.finish().expect("pos_tag")
}

/// Entity extractor: burns its CPU budget, filters on its marker, tags the
/// record. Depends on the POS signature.
fn extractor(c: Component, width: usize, pos_field: usize) -> Function {
    let mut b = FuncBuilder::new(c.name, UdfKind::Map, vec![width]);
    let text = b.get_input(0, 1);
    let psig = b.get_input(0, pos_field);
    let h = b.call(Intrinsic::Hash, vec![text]);
    let seed = b.bin(BinOp::Add, h, psig);
    let cost = b.konst(c.cpu);
    let chk = b.call(Intrinsic::Burn, vec![cost, seed]);
    let marker = b.konst(c.marker);
    let found = b.call(Intrinsic::StrContains, vec![text, marker]);
    let end = b.new_label();
    b.branch_not(found, end);
    let or = b.copy_input(0);
    let one = b.konst(1i64);
    let zero = b.bin(BinOp::Rem, chk, one);
    let tag = b.bin(BinOp::Add, one, zero);
    b.set(or, width, tag);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("extractor")
}

/// Relation extractor: needs all four entity tags plus a textual cue.
fn relate(width: usize, tag_fields: [usize; 4]) -> Function {
    let mut b = FuncBuilder::new("relate", UdfKind::Map, vec![width]);
    let text = b.get_input(0, 1);
    let all = b.konst(true);
    for f in tag_fields {
        let tag = b.get_input(0, f);
        b.bin_into(all, BinOp::And, all, tag);
    }
    let cue = b.konst("interacts");
    let found = b.call(Intrinsic::StrContains, vec![text, cue]);
    b.bin_into(all, BinOp::And, all, found);
    let end = b.new_label();
    b.branch_not(all, end);
    let h = b.call(Intrinsic::Hash, vec![text]);
    let cost = b.konst(CPU_RELATE);
    let rel = b.call(Intrinsic::Burn, vec![cost, h]);
    let or = b.copy_input(0);
    b.set(or, width, rel);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("relate")
}

/// Builds the text-mining pipeline as implemented (tokenize, POS, the four
/// extractors in [`EXTRACTORS`] order, relate).
pub fn plan(scale: TextScale) -> Plan {
    let mut p = ProgramBuilder::new();
    let docs = p.source(
        SourceDef::new("docs", &["doc_id", "text", "length"], scale.docs as u64)
            .with_unique_key(&[0])
            .with_bytes_per_row(140),
    );
    let mut node = p.map(
        "tokenize",
        tokenize(3),
        CostHints::selectivity(1.0).with_cpu(CPU_TOKENIZE as f64),
        docs,
    );
    node = p.map(
        "pos_tag",
        pos_tag(4, 3),
        CostHints::selectivity(1.0).with_cpu(CPU_POS_TAG as f64),
        node,
    );
    for (i, c) in EXTRACTORS.into_iter().enumerate() {
        // The i-th extractor's input schema has grown by i tag fields.
        node = p.map(
            c.name,
            extractor(c, 5 + i, 4),
            CostHints::selectivity(c.selectivity).with_cpu(c.cpu as f64),
            node,
        );
    }
    // Tag fields of the four extractors sit at positions 5..9.
    node = p.map(
        "relate",
        relate(9, [5, 6, 7, 8]),
        CostHints::selectivity(SEL_RELATE).with_cpu(CPU_RELATE as f64),
        node,
    );
    p.finish(node)
        .expect("textmining program")
        .bind()
        .expect("textmining bind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_core::{enumerate_algorithm1, enumerate_all, PropTable};
    use strato_dataflow::PropertyMode;
    use strato_exec::{execute_logical, Inputs};

    fn as_inputs(m: HashMap<String, DataSet>) -> Inputs {
        m.into_iter().collect()
    }

    #[test]
    fn corpus_selectivities_are_near_nominal() {
        let scale = TextScale { docs: 4000 };
        let data = generate(scale, 5);
        for c in EXTRACTORS {
            let hits = data["docs"]
                .iter()
                .filter(|r| r.field(1).as_str().unwrap().contains(c.marker))
                .count() as f64;
            let observed = hits / scale.docs as f64;
            assert!(
                (observed - c.selectivity).abs() < 0.05,
                "{}: observed {observed}, nominal {}",
                c.name,
                c.selectivity
            );
        }
    }

    #[test]
    fn table1_textmining_count_is_24() {
        let plan = plan(TextScale::tiny());
        for mode in [PropertyMode::Sca, PropertyMode::Manual] {
            let props = PropTable::build(&plan, mode);
            let alts = enumerate_all(&plan, &props, 1000);
            assert_eq!(alts.len(), 24, "mode {mode:?}");
        }
    }

    #[test]
    fn algorithm1_agrees_with_closure_on_the_pipeline() {
        // The text-mining flow is linear, so the paper's Algorithm 1
        // applies directly and must agree with the closure enumerator.
        let plan = plan(TextScale::tiny());
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let a1: std::collections::BTreeSet<String> = enumerate_algorithm1(&plan, &props)
            .expect("linear flow")
            .iter()
            .map(|p| p.canonical())
            .collect();
        let cl: std::collections::BTreeSet<String> = enumerate_all(&plan, &props, 1000)
            .iter()
            .map(|p| p.canonical())
            .collect();
        assert_eq!(a1.len(), 24);
        assert_eq!(a1, cl);
    }

    #[test]
    fn all_24_orders_equivalent() {
        let scale = TextScale { docs: 60 };
        let plan = plan(scale);
        let inputs = as_inputs(generate(scale, 9));
        let (reference, _) = execute_logical(&plan, &inputs).unwrap();
        let props = PropTable::build(&plan, PropertyMode::Sca);
        for alt in enumerate_all(&plan, &props, 100) {
            let (out, _) = execute_logical(&alt, &inputs).unwrap();
            if let Err(d) = reference.bag_diff(&out) {
                panic!("text-mining order diverged:\n{}\n{d}", alt.render());
            }
        }
    }

    #[test]
    fn pipeline_filters_compose() {
        let scale = TextScale { docs: 400 };
        let plan = plan(scale);
        let inputs = as_inputs(generate(scale, 21));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        // Survivors carry all four tags and the relation attribute.
        let g = &plan.ctx.global;
        for c in EXTRACTORS {
            let tag = g.by_name(&format!("{}.$0", c.name)).unwrap();
            for r in out.iter() {
                assert!(!r.field(tag.index()).is_null());
            }
        }
        // Rough cardinality check: product of selectivities.
        let expect = scale.docs as f64
            * EXTRACTORS.iter().map(|c| c.selectivity).product::<f64>()
            * SEL_RELATE;
        assert!(
            (out.len() as f64) < expect * 3.0 + 10.0,
            "got {} expected ≈{expect}",
            out.len()
        );
    }

    #[test]
    fn optimizer_prefers_cheap_selective_extractors_first() {
        let plan = plan(TextScale::small());
        let report = strato_core::Optimizer::new(PropertyMode::Sca).optimize(&plan);
        assert_eq!(report.n_enumerated, 24);
        let best = report.best();
        let names: Vec<&str> = best
            .plan
            .op_order()
            .into_iter()
            .map(|o| best.plan.ctx.ops[o].name.as_str())
            .collect();
        // op_order is root-first; the LAST extractor in pre-order runs
        // first. The cheap, selective drug extractor must run before the
        // expensive weak mesh extractor.
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(
            pos("extract_mesh") < pos("extract_drug"),
            "mesh should run late (shallow), drug early (deep): {names:?}"
        );
    }
}
