//! Clickstream processing (Section 7.2, Figure 4 of the paper).
//!
//! *"The task extracts click sessions that lead to buy actions and augments
//! them with detailed user information."* The flow is
//!
//! ```text
//! click → Reduce "Filter Buy Sessions" → Reduce "Condense Sessions"
//!       → Match "Filter Logged-In Sessions" (⋈ login)
//!       → Match "Append User Info"          (⋈ userinfo)
//! ```
//!
//! Non-relational bits, exactly as the paper stresses:
//!
//! * **Filter Buy Sessions** is called with all click records of a session
//!   and forwards *all of them or none* depending on whether any click is a
//!   buy — a group-predicate no relational operator expresses;
//! * **Condense Sessions** collapses a session into one record, appending
//!   click count and duration;
//! * **Append User Info** copies the profile fields of the (non-unique)
//!   `userinfo` relation with a **dynamic index loop**. The paper's SCA
//!   prototype "is restricted to field accesses with literals"; ours
//!   inherits that restriction, so SCA conservatively assumes the UDF may
//!   read and write everything. That blocks exactly one valid order — the
//!   join re-association `login ⋈ userinfo` — reproducing Table 1's
//!   clickstream row (manual 4, SCA 3).

use crate::udfs::join_concat;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{BTreeSet, HashMap};
use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
use strato_ir::{BinOp, FuncBuilder, Function, UdfKind};
use strato_record::{DataSet, Record, Value};
use strato_sca::{EmitBounds, LocalProps};

/// Scale knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct ClickScale {
    /// Number of click sessions.
    pub sessions: usize,
    /// Average clicks per session (uniform 4..=2·avg−4).
    pub avg_clicks: usize,
    /// Fraction of sessions with a logged-in user.
    pub frac_logged: f64,
    /// Probability that a session contains a buy action.
    pub p_buy: f64,
    /// Number of distinct users.
    pub users: usize,
    /// Profile rows per user in `userinfo` (> 1 ⇒ non-unique user key).
    pub profiles_per_user: usize,
}

impl ClickScale {
    /// Test scale.
    pub fn tiny() -> Self {
        ClickScale {
            sessions: 120,
            avg_clicks: 6,
            frac_logged: 0.3,
            p_buy: 0.4,
            users: 30,
            profiles_per_user: 2,
        }
    }

    /// Benchmark scale.
    pub fn small() -> Self {
        ClickScale {
            sessions: 4_000,
            avg_clicks: 8,
            frac_logged: 0.25,
            p_buy: 0.35,
            users: 400,
            profiles_per_user: 2,
        }
    }

    fn est_clicks(&self) -> u64 {
        (self.sessions * self.avg_clicks) as u64
    }

    fn est_logins(&self) -> u64 {
        ((self.sessions as f64) * self.frac_logged) as u64
    }

    fn est_userinfo(&self) -> u64 {
        (self.users * self.profiles_per_user) as u64
    }
}

/// Generates the three relations. Deterministic per seed; distributions
/// match the hints attached by [`plan`].
pub fn generate(scale: ClickScale, seed: u64) -> HashMap<String, DataSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clicks = DataSet::new();
    for session in 0..scale.sessions as i64 {
        let n = rng.gen_range(4..=(2 * scale.avg_clicks).saturating_sub(4).max(5));
        let buys = rng.gen_bool(scale.p_buy);
        let buy_at = rng.gen_range(0..n);
        let t0 = rng.gen_range(0..1_000_000i64);
        for i in 0..n {
            let action = if buys && i == buy_at {
                1
            } else {
                *[0i64, 2, 3].choose(&mut rng).unwrap()
            };
            clicks.push(Record::from_values([
                Value::Int(rng.gen_range(0..1 << 24)), // ip
                Value::Int(t0 + i as i64 * 30),        // ts
                Value::Int(session),                   // session
                Value::Int(action),                    // action
            ]));
        }
    }

    // A random subset of sessions has a logged-in user.
    let mut logged: BTreeSet<i64> = BTreeSet::new();
    while (logged.len() as f64) < scale.sessions as f64 * scale.frac_logged {
        logged.insert(rng.gen_range(0..scale.sessions as i64));
    }
    let login: DataSet = logged
        .iter()
        .map(|&s| {
            Record::from_values([
                Value::Int(s),                                    // lsession
                Value::Int(rng.gen_range(0..scale.users as i64)), // luser
            ])
        })
        .collect();

    let mut userinfo = DataSet::new();
    for u in 0..scale.users as i64 {
        for k in 0..scale.profiles_per_user as i64 {
            userinfo.push(Record::from_values([
                Value::Int(u),                      // uuser
                Value::Int(k),                      // profile key
                Value::Int(rng.gen_range(0..1000)), // profile value
            ]));
        }
    }

    let mut m = HashMap::new();
    m.insert("click".to_string(), clicks);
    m.insert("login".to_string(), login);
    m.insert("userinfo".to_string(), userinfo);
    m
}

/// "Filter Buy Sessions": forwards all click records of the session iff
/// some click has `action == 1`.
fn filter_buy_sessions(width: usize, action_field: usize) -> Function {
    let mut b = FuncBuilder::new("filter_buy", UdfKind::Group, vec![width]);
    let found = b.konst(false);
    let one = b.konst(1i64);
    let it = b.iter_open(0);
    let scan_done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, scan_done);
    let a = b.get(r, action_field);
    let is_buy = b.bin(BinOp::Eq, a, one);
    b.bin_into(found, BinOp::Or, found, is_buy);
    b.jump(head);
    b.place(scan_done);
    let end = b.new_label();
    b.branch_not(found, end);
    let it2 = b.iter_open(0);
    let emit_done = b.new_label();
    let head2 = b.new_label();
    b.place(head2);
    let r2 = b.iter_next(it2, emit_done);
    let or = b.copy(r2);
    b.emit(or);
    b.jump(head2);
    b.place(emit_done);
    b.place(end);
    b.ret();
    b.finish().expect("filter_buy")
}

/// "Condense Sessions": one record per session — the canonical first click
/// plus click count and session duration as new fields.
fn condense_sessions(width: usize, ts_field: usize) -> Function {
    let mut b = FuncBuilder::new("condense", UdfKind::Group, vec![width]);
    let count = b.konst(0i64);
    let one = b.konst(1i64);
    let tmin = b.konst(i64::MAX);
    let tmax = b.konst(i64::MIN);
    let it = b.iter_open(0);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let r = b.iter_next(it, done);
    let ts = b.get(r, ts_field);
    b.bin_into(count, BinOp::Add, count, one);
    b.bin_into(tmin, BinOp::Min, tmin, ts);
    b.bin_into(tmax, BinOp::Max, tmax, ts);
    b.jump(head);
    b.place(done);
    let it2 = b.iter_open(0);
    let nil = b.new_label();
    let first = b.iter_next(it2, nil);
    let or = b.copy(first);
    b.set(or, width, count);
    let dur = b.bin(BinOp::Sub, tmax, tmin);
    b.set(or, width + 1, dur);
    b.emit(or);
    b.place(nil);
    b.ret();
    b.finish().expect("condense")
}

/// "Append User Info": copy the session record and append the profile
/// fields of the matched `userinfo` record — with a **dynamic index loop**
/// (the `i`-th profile field goes to output position `base + i`).
fn append_user_info(left_width: usize, right_width: usize) -> Function {
    let mut b = FuncBuilder::new("append_info", UdfKind::Pair, vec![left_width, right_width]);
    let or = b.copy_input(0);
    let in1 = b.input(1);
    let i = b.konst(0i64);
    let one = b.konst(1i64);
    let n = b.konst(right_width as i64);
    let base = b.konst(left_width as i64);
    let done = b.new_label();
    let head = b.new_label();
    b.place(head);
    let at_end = b.bin(BinOp::Ge, i, n);
    b.branch(at_end, done);
    let v = b.get_dyn(in1, i);
    let oi = b.bin(BinOp::Add, i, base);
    b.set_dyn(or, oi, v);
    b.bin_into(i, BinOp::Add, i, one);
    b.jump(head);
    b.place(done);
    b.emit(or);
    b.ret();
    b.finish().expect("append_info")
}

/// The hand-written (truthful) annotation for "Append User Info" — what
/// the paper's "manually attached annotations" supply and SCA cannot see
/// through the dynamic loop: the UDF reads the profile fields, writes
/// nothing, preserves both inputs and emits exactly one record per pair.
fn append_user_info_manual(right_width: usize) -> LocalProps {
    LocalProps {
        reads: (0..right_width).map(|f| (1u8, f)).collect(),
        control_reads: BTreeSet::new(),
        dynamic_read_inputs: BTreeSet::new(),
        dynamic_control_inputs: BTreeSet::new(),
        written_base: BTreeSet::new(),
        copied_inputs: 0b11,
        dynamic_write: false,
        added: BTreeSet::new(),
        emits: EmitBounds {
            min: 1,
            max: Some(1),
        },
    }
}

/// Builds the clickstream flow as implemented (Figure 4(a)).
///
/// Local schemas: click⟨ip,ts,session,action⟩; condense adds
/// ⟨n_clicks,duration⟩; login⟨lsession,luser⟩; userinfo⟨uuser,pkey,pval⟩.
pub fn plan(scale: ClickScale) -> Plan {
    let mut p = ProgramBuilder::new();
    let click = p.source(
        SourceDef::new(
            "click",
            &["ip", "ts", "session", "action"],
            scale.est_clicks(),
        )
        .with_bytes_per_row(40),
    );
    let login = p.source(
        SourceDef::new("login", &["lsession", "luser"], scale.est_logins())
            .with_unique_key(&[0])
            .with_bytes_per_row(22),
    );
    let userinfo = p.source(
        SourceDef::new("userinfo", &["uuser", "pkey", "pval"], scale.est_userinfo())
            .with_bytes_per_row(31),
    );

    let buy = p.reduce(
        "filter_buy_sessions",
        &[2],
        filter_buy_sessions(4, 3),
        CostHints::selectivity(scale.p_buy * scale.avg_clicks as f64)
            .with_distinct_keys(scale.sessions as u64)
            .with_cpu(2.0),
        click,
    );
    let condensed = p.reduce(
        "condense_sessions",
        &[2],
        condense_sessions(4, 1),
        CostHints::selectivity(1.0)
            .with_distinct_keys(((scale.sessions as f64) * scale.p_buy) as u64)
            .with_cpu(2.0),
        buy,
    );
    let logged = p.match_(
        "filter_logged_in",
        &[2],
        &[0],
        join_concat(6, 2),
        CostHints::selectivity(1.0).with_distinct_keys(scale.sessions as u64),
        condensed,
        login,
    );
    // luser sits at position 6 + 1 = 7 of the joined record.
    let full = p.op(
        strato_dataflow::Operator::new(
            "append_user_info",
            strato_dataflow::Pact::Match {
                key_left: vec![7],
                key_right: vec![0],
            },
            append_user_info(8, 3),
            CostHints::selectivity(1.0).with_distinct_keys(scale.users as u64),
        )
        .with_manual_props(append_user_info_manual(3)),
        vec![logged, userinfo],
    );
    p.finish(full)
        .expect("clickstream program")
        .bind()
        .expect("clickstream bind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_core::{enumerate_all, PropTable};
    use strato_dataflow::PropertyMode;
    use strato_exec::{execute_logical, Inputs};

    fn as_inputs(m: HashMap<String, DataSet>) -> Inputs {
        m.into_iter().collect()
    }

    #[test]
    fn generator_matches_scale() {
        let scale = ClickScale::tiny();
        let data = generate(scale, 3);
        assert_eq!(
            data["userinfo"].len(),
            scale.users * scale.profiles_per_user
        );
        let sessions: BTreeSet<i64> = data["click"]
            .iter()
            .map(|r| r.field(2).as_int().unwrap())
            .collect();
        assert_eq!(sessions.len(), scale.sessions);
        // login unique per session.
        let logins: Vec<i64> = data["login"]
            .iter()
            .map(|r| r.field(0).as_int().unwrap())
            .collect();
        let uniq: BTreeSet<i64> = logins.iter().copied().collect();
        assert_eq!(logins.len(), uniq.len());
    }

    #[test]
    fn table1_clickstream_counts() {
        // The paper's Table 1 row: 4 orders with manual annotations,
        // 3 with SCA (75%).
        let plan = plan(ClickScale::tiny());
        let manual = PropTable::build(&plan, PropertyMode::Manual);
        let sca = PropTable::build(&plan, PropertyMode::Sca);
        let with_manual = enumerate_all(&plan, &manual, 1000);
        let with_sca = enumerate_all(&plan, &sca, 1000);
        assert_eq!(
            with_manual.len(),
            4,
            "manual annotations must yield 4 orders"
        );
        assert_eq!(
            with_sca.len(),
            3,
            "SCA must conservatively lose the re-association"
        );
        // The SCA set is a subset of the manual set.
        let man_set: BTreeSet<String> = with_manual.iter().map(|p| p.canonical()).collect();
        for p in &with_sca {
            assert!(man_set.contains(&p.canonical()));
        }
    }

    #[test]
    fn all_four_orders_equivalent() {
        let scale = ClickScale::tiny();
        let plan = plan(scale);
        let inputs = as_inputs(generate(scale, 17));
        let (reference, _) = execute_logical(&plan, &inputs).unwrap();
        assert!(!reference.is_empty());
        let props = PropTable::build(&plan, PropertyMode::Manual);
        for alt in enumerate_all(&plan, &props, 100) {
            let (out, _) = execute_logical(&alt, &inputs).unwrap();
            if let Err(d) = reference.bag_diff(&out) {
                panic!("clickstream order diverged:\n{}\n{d}", alt.render());
            }
        }
    }

    #[test]
    fn buy_filter_semantics() {
        let scale = ClickScale::tiny();
        let plan = plan(scale);
        let inputs = as_inputs(generate(scale, 23));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        // Every output record has n_clicks ≥ 1 and a profile value.
        let g = &plan.ctx.global;
        let cnt = g.by_name("condense_sessions.$0").unwrap();
        let pval = g.by_name("userinfo.pval").unwrap();
        for r in out.iter() {
            assert!(r.field(cnt.index()).as_int().unwrap() >= 1);
            assert!(!r.field(pval.index()).is_null());
        }
        // Each surviving session appears profiles_per_user times.
        assert_eq!(out.len() % scale.profiles_per_user, 0);
    }

    #[test]
    fn best_plan_pushes_logged_in_filter_down() {
        // Figure 4(b): the optimizer pushes the selective login join below
        // both reduces.
        let scale = ClickScale::small();
        let plan = plan(scale);
        let opt = strato_core::Optimizer::new(PropertyMode::Manual);
        let report = opt.optimize(&plan);
        assert_eq!(report.n_enumerated, 4);
        let best = report.best();
        // In the winning order, filter_logged_in must sit below filter_buy
        // (deeper in the tree = later in pre-order).
        let order = best.plan.op_order();
        let names: Vec<&str> = order
            .iter()
            .map(|&o| best.plan.ctx.ops[o].name.as_str())
            .collect();
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(
            pos("filter_logged_in") > pos("filter_buy_sessions"),
            "expected the login join pushed down, got order {names:?}"
        );
    }
}
