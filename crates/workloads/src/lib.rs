//! # strato-workloads — the paper's four evaluation workloads
//!
//! Section 7.2 of *"Opening the Black Boxes in Data Flow Optimization"*
//! evaluates on four PACT programs; this crate reproduces all of them with
//! seeded synthetic data generators whose distributions match the operators'
//! cost hints:
//!
//! * [`tpch`] — a TPC-H subset generator plus the paper's modified **Q7**
//!   (six-way circular join, shipdate filter, disjunctive nation filter,
//!   group-by-sum) and **Q15** (shipdate filter, PK–FK supplier join,
//!   per-supplier revenue aggregation),
//! * [`clickstream`] — web-shop session processing: two non-relational
//!   Reduce operators ("Filter Buy Sessions", "Condense Sessions") and two
//!   Matches ("Filter Logged-In Sessions", "Append User Info"); the last
//!   one copies profile fields with a *dynamic* index loop, which is what
//!   makes SCA conservatively lose one order (Table 1's 3/4),
//! * [`textmining`] — the biomedical pipeline: fixed preprocessing
//!   (tokenize, POS-tag), four reorderable entity extractors with very
//!   different CPU costs and selectivities, and a final relation extractor
//!   (4! = 24 valid orders).
//!
//! Every UDF is three-address code built with [`strato_ir::FuncBuilder`];
//! the optimizer sees nothing but the code.

#![warn(missing_docs)]

pub mod clickstream;
pub mod textmining;
pub mod tpch;
pub mod udfs;
