//! TPC-H subset: generator plus the paper's modified Q7 and Q15.
//!
//! Section 7.2: *"We implemented slightly modified variants of queries 7
//! (where we reduced the selectivity of the shipdate filter and removed the
//! final sorting) and 15 (where we removed the filter on total revenue)."*
//!
//! The generator is a seeded, laptop-scale stand-in for the paper's 400 GB
//! data set: same schema relationships (PK–FK chains lineitem→orders→
//! customer→nation and lineitem→supplier→nation), uniform value
//! distributions matched to the cost hints attached to the operators.

use crate::udfs::{join_concat, revenue_sum_group};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use strato_dataflow::{CostHints, Plan, ProgramBuilder, SourceDef};
use strato_ir::{BinOp, FuncBuilder, Function, Intrinsic, UdfKind};
use strato_record::{DataSet, Record, Value};

/// Scale knobs for the generator. All row counts derive from `orders`.
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    /// Number of orders. Lineitem ≈ 4×, customers = orders/10,
    /// suppliers = max(orders/100, 25).
    pub orders: usize,
}

impl TpchScale {
    /// A small scale suitable for tests.
    pub fn tiny() -> Self {
        TpchScale { orders: 300 }
    }

    /// The default benchmarking scale.
    pub fn small() -> Self {
        TpchScale { orders: 3_000 }
    }

    /// Lineitem row count.
    pub fn lineitems(&self) -> usize {
        self.orders * 4
    }

    /// Customer row count.
    pub fn customers(&self) -> usize {
        (self.orders / 10).max(5)
    }

    /// Supplier row count.
    pub fn suppliers(&self) -> usize {
        (self.orders / 100).max(25)
    }
}

/// Number of nations (as in TPC-H).
pub const N_NATIONS: usize = 25;
/// First nation of the Q7 disjunctive predicate.
pub const NATION_A: &str = "FRANCE";
/// Second nation of the Q7 disjunctive predicate.
pub const NATION_B: &str = "GERMANY";

/// Shipdates are integer `yyyymmdd` values uniform over this many years
/// starting 1992.
const YEARS: i64 = 7;

fn nation_name(k: usize) -> String {
    match k {
        6 => NATION_A.to_string(),
        7 => NATION_B.to_string(),
        _ => format!("NATION_{k:02}"),
    }
}

fn random_date(rng: &mut StdRng) -> i64 {
    let year = 1992 + rng.gen_range(0..YEARS);
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=28);
    year * 10_000 + month * 100 + day
}

/// Generates all TPC-H tables. The same `Inputs` serves Q7 and Q15
/// (`nation1`/`nation2` carry identical content for the tree-shaped flow).
pub fn generate(scale: TpchScale, seed: u64) -> HashMap<String, DataSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = HashMap::new();

    let lineitem: DataSet = (0..scale.lineitems())
        .map(|_| {
            Record::from_values([
                Value::Int(rng.gen_range(0..scale.orders as i64)), // l_orderkey
                Value::Int(rng.gen_range(0..scale.suppliers() as i64)), // l_suppkey
                Value::Int(rng.gen_range(100..100_000)),           // l_price (cents)
                Value::Int(rng.gen_range(0..=10)),                 // l_disc (%)
                Value::Int(random_date(&mut rng)),                 // l_shipdate
                Value::Int(rng.gen_range(1..=50)),                 // l_qty
            ])
        })
        .collect();
    inputs.insert("lineitem".to_string(), lineitem);

    let orders: DataSet = (0..scale.orders)
        .map(|k| {
            Record::from_values([
                Value::Int(k as i64),                                   // o_orderkey
                Value::Int(rng.gen_range(0..scale.customers() as i64)), // o_custkey
            ])
        })
        .collect();
    inputs.insert("orders".to_string(), orders);

    let customer: DataSet = (0..scale.customers())
        .map(|k| {
            Record::from_values([
                Value::Int(k as i64),                           // c_custkey
                Value::Int(rng.gen_range(0..N_NATIONS as i64)), // c_nationkey
            ])
        })
        .collect();
    inputs.insert("customer".to_string(), customer);

    let supplier: DataSet = (0..scale.suppliers())
        .map(|k| {
            Record::from_values([
                Value::Int(k as i64),                           // s_suppkey
                Value::Int(rng.gen_range(0..N_NATIONS as i64)), // s_nationkey
            ])
        })
        .collect();
    inputs.insert("supplier".to_string(), supplier);

    let nation: DataSet = (0..N_NATIONS)
        .map(|k| Record::from_values([Value::Int(k as i64), Value::str(nation_name(k))]))
        .collect();
    inputs.insert("nation1".to_string(), nation.clone());
    inputs.insert("nation2".to_string(), nation);

    inputs
}

/// Q7's year-derivation map: appends `year(l_shipdate)` as a new field —
/// the record enrichment that lets the final Reduce group on `year`
/// without knowing date semantics. Kept separate from the shipdate filter
/// (both are freely reorderable record-at-a-time maps, as in the paper's
/// implementation whose Q7 space holds ~2.5k orders).
fn derive_year(width: usize, date_field: usize) -> Function {
    let mut b = FuncBuilder::new("derive_year", UdfKind::Map, vec![width]);
    let d = b.get_input(0, date_field);
    let or = b.copy_input(0);
    let y = b.call(Intrinsic::Year, vec![d]);
    b.set(or, width, y);
    b.emit(or);
    b.ret();
    b.finish().expect("derive_year")
}

/// Q7's shipdate filter: the year 1995 out of the 1992–1998 domain (the
/// paper "reduced the selectivity of the shipdate filter").
fn shipdate_filter_q7(width: usize, date_field: usize) -> Function {
    crate::udfs::filter_range(width, date_field, 19_950_101, 19_951_231)
}

/// Q15's plain shipdate filter (first quarter of 1996).
fn shipdate_filter_q15(width: usize, date_field: usize) -> Function {
    crate::udfs::filter_range(width, date_field, 19_960_101, 19_960_331)
}

/// The disjunctive nation predicate of Q7:
/// `(n1 = FRANCE ∧ n2 = GERMANY) ∨ (n1 = GERMANY ∧ n2 = FRANCE)`.
fn disjunctive_nation_filter(width: usize, n1_field: usize, n2_field: usize) -> Function {
    let mut b = FuncBuilder::new("disj_nations", UdfKind::Map, vec![width]);
    let n1 = b.get_input(0, n1_field);
    let n2 = b.get_input(0, n2_field);
    let fr = b.konst(NATION_A);
    let ge = b.konst(NATION_B);
    let a1 = b.bin(BinOp::Eq, n1, fr);
    let a2 = b.bin(BinOp::Eq, n2, ge);
    let a = b.bin(BinOp::And, a1, a2);
    let b1 = b.bin(BinOp::Eq, n1, ge);
    let b2 = b.bin(BinOp::Eq, n2, fr);
    let bb = b.bin(BinOp::And, b1, b2);
    let keep = b.bin(BinOp::Or, a, bb);
    let end = b.new_label();
    b.branch_not(keep, end);
    let or = b.copy_input(0);
    b.emit(or);
    b.place(end);
    b.ret();
    b.finish().expect("disj_nations")
}

/// Builds the Q7 data flow exactly as implemented in Figure 2(a):
///
/// ```text
/// lineitem → Map(year) → Mapσ(date) → ⋈s → ⋈o → ⋈c → ⋈n1 → ⋈n2
///          → Mapσ(disj) → Reduce γ
/// ```
///
/// Schemas (local field indices):
/// lineitem⟨okey,skey,price,disc,date,qty⟩+year, orders⟨okey,ckey⟩,
/// customer⟨ckey,nkey⟩, supplier⟨skey,nkey⟩, nation⟨nkey,name⟩.
pub fn q7_plan(scale: TpchScale) -> Plan {
    let mut p = ProgramBuilder::new();
    let li = p.source(
        SourceDef::new(
            "lineitem",
            &[
                "l_orderkey",
                "l_suppkey",
                "l_price",
                "l_disc",
                "l_shipdate",
                "l_qty",
            ],
            scale.lineitems() as u64,
        )
        .with_bytes_per_row(58),
    );
    let su = p.source(
        SourceDef::new(
            "supplier",
            &["s_suppkey", "s_nationkey"],
            scale.suppliers() as u64,
        )
        .with_unique_key(&[0])
        .with_bytes_per_row(22),
    );
    let ord = p.source(
        SourceDef::new("orders", &["o_orderkey", "o_custkey"], scale.orders as u64)
            .with_unique_key(&[0])
            .with_bytes_per_row(22),
    );
    let cu = p.source(
        SourceDef::new(
            "customer",
            &["c_custkey", "c_nationkey"],
            scale.customers() as u64,
        )
        .with_unique_key(&[0])
        .with_bytes_per_row(22),
    );
    let n1 = p.source(
        SourceDef::new("nation1", &["n1_nationkey", "n1_name"], N_NATIONS as u64)
            .with_unique_key(&[0])
            .with_bytes_per_row(24),
    );
    let n2 = p.source(
        SourceDef::new("nation2", &["n2_nationkey", "n2_name"], N_NATIONS as u64)
            .with_unique_key(&[0])
            .with_bytes_per_row(24),
    );

    // Map year enrichment (selectivity 1) and Map σ shipdate (2 years / 7).
    let f_year = p.map(
        "derive_year",
        derive_year(6, 4),
        CostHints::selectivity(1.0).with_cpu(1.0),
        li,
    );
    let f_date = p.map(
        "filter_shipdate",
        shipdate_filter_q7(7, 4),
        CostHints::selectivity(1.0 / 7.0).with_cpu(1.0),
        f_year,
    );
    // ⋈ supplier on l_suppkey (li-side width 7 after the year column).
    let j_ls = p.match_(
        "join_l_s",
        &[1],
        &[0],
        join_concat(7, 2),
        CostHints::selectivity(1.0).with_distinct_keys(scale.suppliers() as u64),
        f_date,
        su,
    );
    // ⋈ orders on l_orderkey (width 9).
    let j_lo = p.match_(
        "join_l_o",
        &[0],
        &[0],
        join_concat(9, 2),
        CostHints::selectivity(1.0).with_distinct_keys(scale.orders as u64),
        j_ls,
        ord,
    );
    // ⋈ customer on o_custkey (position 9+1 = 10; width 11).
    let j_oc = p.match_(
        "join_o_c",
        &[10],
        &[0],
        join_concat(11, 2),
        CostHints::selectivity(1.0).with_distinct_keys(scale.customers() as u64),
        j_lo,
        cu,
    );
    // ⋈ nation1 on c_nationkey (position 11+1 = 12; width 13).
    let j_cn1 = p.match_(
        "join_c_n1",
        &[12],
        &[0],
        join_concat(13, 2),
        CostHints::selectivity(1.0).with_distinct_keys(N_NATIONS as u64),
        j_oc,
        n1,
    );
    // ⋈ nation2 on s_nationkey (position 7+1 = 8; width 15).
    let j_sn2 = p.match_(
        "join_s_n2",
        &[8],
        &[0],
        join_concat(15, 2),
        CostHints::selectivity(1.0).with_distinct_keys(N_NATIONS as u64),
        j_cn1,
        n2,
    );
    // Map σ disjunctive nation predicate: 2 / 25² of nation pairs survive.
    let f_disj = p.map(
        "filter_nations",
        disjunctive_nation_filter(17, 14, 16),
        CostHints::selectivity(2.0 / (N_NATIONS * N_NATIONS) as f64).with_cpu(1.0),
        j_sn2,
    );
    // Reduce γ (n1_name, n2_name, year) with the revenue volume sum.
    let agg = p.reduce(
        "agg_volume",
        &[14, 16, 6],
        revenue_sum_group(17, 2, 3),
        CostHints::selectivity(1.0).with_distinct_keys(2),
        f_disj,
    );
    p.finish(agg).expect("q7 program").bind().expect("q7 bind")
}

/// Builds the Q15 data flow as implemented in Figure 3(a):
///
/// ```text
/// Match(s ⋈ l) over ( supplier , Reduce γ s_key(Σ revenue) over
///                                  Mapσ(date) over lineitem )
/// ```
pub fn q15_plan(scale: TpchScale) -> Plan {
    let mut p = ProgramBuilder::new();
    let su = p.source(
        SourceDef::new(
            "supplier",
            &["s_suppkey", "s_nationkey"],
            scale.suppliers() as u64,
        )
        .with_unique_key(&[0])
        .with_bytes_per_row(22),
    );
    let li = p.source(
        SourceDef::new(
            "lineitem",
            &[
                "l_orderkey",
                "l_suppkey",
                "l_price",
                "l_disc",
                "l_shipdate",
                "l_qty",
            ],
            scale.lineitems() as u64,
        )
        .with_bytes_per_row(58),
    );
    // Map σ shipdate: one quarter out of the seven-year domain.
    let f_date = p.map(
        "filter_shipdate",
        shipdate_filter_q15(6, 4),
        CostHints::selectivity(0.25 / 7.0).with_cpu(1.0),
        li,
    );
    // Reduce γ l_suppkey: per-supplier revenue.
    let agg = p.reduce(
        "agg_revenue",
        &[1],
        revenue_sum_group(6, 2, 3),
        CostHints::selectivity(1.0).with_distinct_keys(scale.suppliers() as u64),
        f_date,
    );
    // Match supplier ⋈ aggregated lineitem on the supplier key.
    let j = p.match_(
        "join_s_l",
        &[0],
        &[1],
        join_concat(2, 7),
        CostHints::selectivity(1.0).with_distinct_keys(scale.suppliers() as u64),
        su,
        agg,
    );
    p.finish(j).expect("q15 program").bind().expect("q15 bind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strato_core::{enumerate_all, PropTable};
    use strato_dataflow::PropertyMode;
    use strato_exec::{execute_logical, Inputs};

    fn as_inputs(m: HashMap<String, DataSet>) -> Inputs {
        m.into_iter().collect()
    }

    #[test]
    fn generator_is_deterministic_and_scaled() {
        let a = generate(TpchScale::tiny(), 1);
        let b = generate(TpchScale::tiny(), 1);
        assert_eq!(a["lineitem"], b["lineitem"]);
        assert_eq!(a["lineitem"].len(), TpchScale::tiny().lineitems());
        assert_eq!(a["nation1"], a["nation2"]);
        assert_eq!(a["nation1"].len(), N_NATIONS);
    }

    #[test]
    fn q7_binds_and_executes() {
        let scale = TpchScale::tiny();
        let plan = q7_plan(scale);
        assert_eq!(plan.root.n_ops(), 9);
        let inputs = as_inputs(generate(scale, 7));
        let (out, stats) = execute_logical(&plan, &inputs).unwrap();
        // Group keys: 2 nation-pair orders × 2 years = at most 4 rows.
        assert!(out.len() <= 4, "got {}", out.len());
        let (calls, ..) = stats.snapshot();
        assert!(calls > 0);
    }

    #[test]
    fn q7_output_volume_is_positive_when_rows_survive() {
        let scale = TpchScale::small();
        let plan = q7_plan(scale);
        let inputs = as_inputs(generate(scale, 11));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        assert!(!out.is_empty(), "SF small should produce FR/DE pairs");
        let sum_attr = plan.ctx.global.by_name("agg_volume.$0").unwrap();
        for r in out.iter() {
            assert!(r.field(sum_attr.index()).as_int().unwrap() > 0);
        }
    }

    #[test]
    fn q15_binds_and_executes() {
        let scale = TpchScale::tiny();
        let plan = q15_plan(scale);
        assert_eq!(plan.root.n_ops(), 3);
        let inputs = as_inputs(generate(scale, 3));
        let (out, _) = execute_logical(&plan, &inputs).unwrap();
        // At most one row per supplier.
        assert!(out.len() <= scale.suppliers());
    }

    #[test]
    fn q15_enumerates_the_expected_space() {
        let plan = q15_plan(TpchScale::tiny());
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let alts = enumerate_all(&plan, &props, 100);
        // Map < Reduce fixed; the Match floats: original, aggregation
        // pushed above the join, and filter pulled above the join.
        assert_eq!(
            alts.len(),
            3,
            "{:#?}",
            alts.iter().map(|a| a.render()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn q15_all_orders_equivalent() {
        let scale = TpchScale::tiny();
        let plan = q15_plan(scale);
        let inputs = as_inputs(generate(scale, 5));
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let (reference, _) = execute_logical(&plan, &inputs).unwrap();
        for alt in enumerate_all(&plan, &props, 100) {
            let (out, _) = execute_logical(&alt, &inputs).unwrap();
            assert_eq!(reference, out, "plan:\n{}", alt.render());
        }
    }

    #[test]
    fn q7_enumeration_space_is_large() {
        let plan = q7_plan(TpchScale::tiny());
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let alts = enumerate_all(&plan, &props, 50_000);
        assert!(
            alts.len() >= 100,
            "Q7 must have a large bushy space, got {}",
            alts.len()
        );
    }

    #[test]
    fn q7_small_sample_of_orders_equivalent() {
        // The full space is exercised by the integration suite; here we
        // spot-check a slice to keep unit-test time low.
        let scale = TpchScale::tiny();
        let plan = q7_plan(scale);
        let inputs = as_inputs(generate(scale, 13));
        let props = PropTable::build(&plan, PropertyMode::Sca);
        let (reference, _) = execute_logical(&plan, &inputs).unwrap();
        let alts = enumerate_all(&plan, &props, 50_000);
        let step = (alts.len() / 12).max(1);
        for alt in alts.iter().step_by(step) {
            let (out, _) = execute_logical(alt, &inputs).unwrap();
            assert_eq!(reference, out, "plan:\n{}", alt.render());
        }
    }

    #[test]
    fn sca_and_manual_agree_on_tpch() {
        // Table 1: Q7 and Q15 reach 100% with SCA.
        for plan in [q15_plan(TpchScale::tiny()), q7_plan(TpchScale::tiny())] {
            let sca = PropTable::build(&plan, PropertyMode::Sca);
            let man = PropTable::build(&plan, PropertyMode::Manual);
            let a = enumerate_all(&plan, &sca, 50_000).len();
            let b = enumerate_all(&plan, &man, 50_000).len();
            assert_eq!(a, b);
        }
    }
}
